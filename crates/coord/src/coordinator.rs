//! Statement execution over a fleet of shard backends.
//!
//! The coordinator parses MET/MER/MEC statements with `affinity_ql`,
//! fans the shard-local pieces out over [`ShardBackend`]s, and merges
//! with the *same* splice/merge helpers [`affinity_shard::ShardedModel`]
//! uses in process — so a distributed answer is bit-identical to the
//! single-box sharded answer, which PR 9's oracle already proved
//! bit-identical to the monolithic model.
//!
//! Failure semantics (the headline):
//!
//! * a statement that lost shards but is still meaningfully answerable
//!   (MET/MER miss that shard's pairs; MEC location misses that shard's
//!   rows) comes back with [`CoordAnswer::missing`] non-empty — the
//!   front-end renders it `DEGRADED <shards>`, never a silent subset;
//! * a statement that *cannot* be partially answered (a MEC pairwise
//!   matrix with holes is wrong, not partial; an answer with every
//!   shard down is a guess) fails typed `UNAVAILABLE`;
//! * `strict` mode converts every would-be degraded answer into
//!   `UNAVAILABLE` — for clients that prefer failure over partiality.

use crate::backend::{BackendError, ShardBackend};
use crate::proto::{ShardRequest, ShardResponse, MAX_LIST};
use crate::stats::CoordStats;
use affinity_core::measures::{LocationMeasure, Measure, PairwiseMeasure};
use affinity_data::{SequencePair, SeriesId};
use affinity_linalg::Matrix;
use affinity_ql::{parse, QlError, QueryOutput, Statement};
use affinity_scape::ThresholdOp;
use affinity_shard::{merge_keyed_series, splice_chunks, ShardPlan};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Fleet-wide model facts, agreed by every shard at construction time.
pub struct CoordMeta {
    /// Total series across shards.
    pub series: usize,
    /// Samples per series.
    pub samples: usize,
    /// Measures the shard indexes answer (effective support).
    pub indexed: Vec<Measure>,
    /// The series → shard ownership plan.
    pub plan: ShardPlan,
    /// The fleet's replay tick count at coordinator construction (the
    /// window warm-up counts, so a fresh fleet starts at the window
    /// size). Seeds the coordinator's tick ledger — failover re-heal
    /// drives a respawned shard back to `baseline + fanned-out ticks`.
    pub ticks: u64,
}

/// A typed statement failure. `code` is from the serve wire-code set
/// plus `UNAVAILABLE`.
#[derive(Debug)]
pub struct CoordError {
    /// Stable one-token wire code.
    pub code: &'static str,
    /// Human-readable message.
    pub message: String,
}

impl CoordError {
    fn new(code: &'static str, message: String) -> CoordError {
        CoordError { code, message }
    }

    fn from_ql(e: &QlError) -> CoordError {
        CoordError::new(e.wire_code(), e.to_string())
    }
}

impl fmt::Display for CoordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.code, self.message)
    }
}

impl std::error::Error for CoordError {}

/// Map a shard-reported code onto the closed static set (unknown codes
/// collapse to `INTERNAL` rather than leaking arbitrary bytes).
fn intern_code(code: &str) -> &'static str {
    match code {
        "PARSE" => "PARSE",
        "UNKNOWN" => "UNKNOWN",
        "RANGE" => "RANGE",
        "CANCELLED" => "CANCELLED",
        "DEADLINE" => "DEADLINE",
        "OVERLOADED" => "OVERLOADED",
        "PROTO" => "PROTO",
        _ => "INTERNAL",
    }
}

/// A successful (possibly degraded) statement answer.
#[derive(Debug)]
pub struct CoordAnswer {
    /// The merged output.
    pub output: QueryOutput,
    /// Shards whose contribution is absent (sorted, deduplicated).
    /// Empty means the answer is complete.
    pub missing: Vec<usize>,
}

/// Per-statement accounting of calls that finally failed; settled into
/// the `degraded`/`failed` ledger buckets once the statement outcome is
/// known.
#[derive(Default)]
struct Acct {
    failed_calls: u64,
}

/// The routing + merge layer over a fleet of shard backends.
pub struct Coordinator {
    backends: Vec<Arc<dyn ShardBackend>>,
    labels: Vec<String>,
    meta: CoordMeta,
    strict: bool,
    stats: Arc<CoordStats>,
}

impl Coordinator {
    /// Build a coordinator by fetching and cross-checking `!meta` from
    /// every backend. Startup requires the *full* fleet: a coordinator
    /// that cannot see shard `i` cannot know what it will be missing.
    ///
    /// `labels` may be empty to auto-generate `S0..S{n-1}`.
    ///
    /// # Errors
    /// `UNAVAILABLE` when a shard cannot be reached, `INTERNAL` when
    /// the shards disagree about the model.
    pub fn new(
        backends: Vec<Arc<dyn ShardBackend>>,
        labels: Vec<String>,
        strict: bool,
        stats: Arc<CoordStats>,
    ) -> Result<Coordinator, CoordError> {
        if backends.is_empty() {
            return Err(CoordError::new(
                "INTERNAL",
                "a coordinator needs at least one shard backend".to_string(),
            ));
        }
        let mut meta: Option<CoordMeta> = None;
        for (i, backend) in backends.iter().enumerate() {
            if backend.shard() != i {
                return Err(CoordError::new(
                    "INTERNAL",
                    format!("backend {i} routes to shard {}", backend.shard()),
                ));
            }
            let m = match backend.call(&ShardRequest::Meta) {
                Ok(ShardResponse::Meta(m)) => m,
                Ok(_) => {
                    return Err(CoordError::new(
                        "INTERNAL",
                        format!("shard {i} answered the wrong shape for !meta"),
                    ))
                }
                Err(e) => {
                    return Err(CoordError::new("UNAVAILABLE", e.to_string()));
                }
            };
            if m.shard != i || m.shards != backends.len() {
                return Err(CoordError::new(
                    "INTERNAL",
                    format!(
                        "shard {i} claims to be shard {} of {} (fleet has {})",
                        m.shard,
                        m.shards,
                        backends.len()
                    ),
                ));
            }
            match &meta {
                None => {
                    let plan = ShardPlan::from_assignments(m.assignments.clone(), m.shards)
                        .map_err(|e| CoordError::new("INTERNAL", e.to_string()))?;
                    meta = Some(CoordMeta {
                        series: m.series,
                        samples: m.samples,
                        indexed: m.indexed.clone(),
                        plan,
                        ticks: m.ticks,
                    });
                }
                Some(agreed) => {
                    if m.series != agreed.series
                        || m.samples != agreed.samples
                        || m.indexed != agreed.indexed
                        || m.assignments != agreed.plan.assignments()
                        || m.ticks != agreed.ticks
                    {
                        return Err(CoordError::new(
                            "INTERNAL",
                            format!("shard {i} disagrees with shard 0 about the model"),
                        ));
                    }
                }
            }
        }
        let meta = match meta {
            Some(m) => m,
            None => {
                return Err(CoordError::new(
                    "INTERNAL",
                    "no shard meta collected".to_string(),
                ))
            }
        };
        let n = meta.series;
        let labels = if labels.is_empty() {
            (0..n).map(|v| format!("S{v}")).collect()
        } else if labels.len() == n {
            labels
        } else {
            return Err(CoordError::new(
                "INTERNAL",
                format!("{} labels for {n} series", labels.len()),
            ));
        };
        Ok(Coordinator {
            backends,
            labels,
            meta,
            strict,
            stats,
        })
    }

    /// The agreed fleet meta.
    pub fn meta(&self) -> &CoordMeta {
        &self.meta
    }

    /// Whether strict mode (degradation → `UNAVAILABLE`) is on.
    pub fn strict(&self) -> bool {
        self.strict
    }

    /// The shared conservation ledger.
    pub fn stats(&self) -> &Arc<CoordStats> {
        &self.stats
    }

    /// Parse and execute one statement, with ledger accounting.
    ///
    /// # Errors
    /// [`CoordError`] with a stable wire code; a partial answer is
    /// *never* an error in non-strict mode — it is a [`CoordAnswer`]
    /// with `missing` non-empty.
    pub fn execute(&self, query: &str) -> Result<CoordAnswer, CoordError> {
        CoordStats::bump(&self.stats.stmts);
        let statement = match parse(query) {
            Ok(s) => s,
            Err(e) => {
                CoordStats::bump(&self.stats.errors);
                return Err(CoordError::from_ql(&QlError::Parse(e)));
            }
        };
        let mut acct = Acct::default();
        let settled = match self.run(&statement, &mut acct) {
            Ok((output, missing)) if missing.is_empty() => {
                CoordStats::bump(&self.stats.ok);
                Ok((output, missing, true))
            }
            Ok((output, missing)) => {
                if self.strict {
                    CoordStats::bump(&self.stats.unavailable);
                    let list = missing
                        .iter()
                        .map(|s| s.to_string())
                        .collect::<Vec<_>>()
                        .join(",");
                    Err((
                        CoordError::new(
                            "UNAVAILABLE",
                            format!("strict mode refuses a partial answer; shards {list} down"),
                        ),
                        false,
                    ))
                } else {
                    CoordStats::bump(&self.stats.degraded_answers);
                    Ok((output, missing, true))
                }
            }
            Err(e) => {
                CoordStats::bump(if e.code == "UNAVAILABLE" {
                    &self.stats.unavailable
                } else {
                    &self.stats.errors
                });
                Err((e, false))
            }
        };
        // Settle this statement's finally-failed calls: the statement
        // was answered around them (degraded) or was lost with them
        // (failed).
        match settled {
            Ok((output, missing, answered)) => {
                self.settle(&acct, answered);
                Ok(CoordAnswer { output, missing })
            }
            Err((e, answered)) => {
                self.settle(&acct, answered);
                Err(e)
            }
        }
    }

    fn settle(&self, acct: &Acct, answered: bool) {
        if acct.failed_calls > 0 {
            let bucket = if answered {
                &self.stats.degraded
            } else {
                &self.stats.failed
            };
            CoordStats::add(bucket, acct.failed_calls);
        }
    }

    // --- label resolution (mirrors affinity_ql::Session) -----------

    fn resolve(&self, reference: &str) -> Result<SeriesId, CoordError> {
        for (v, label) in self.labels.iter().enumerate() {
            if label == reference {
                return Ok(v);
            }
        }
        if let Ok(id) = reference.parse::<usize>() {
            if id < self.labels.len() {
                return Ok(id);
            }
        }
        Err(CoordError::from_ql(&QlError::UnknownSeries(
            reference.to_string(),
        )))
    }

    fn label(&self, v: SeriesId) -> String {
        self.labels
            .get(v)
            .cloned()
            .unwrap_or_else(|| format!("series-{v}"))
    }

    fn pair_labels(&self, pairs: Vec<SequencePair>) -> Vec<(String, String)> {
        pairs
            .into_iter()
            .map(|p| (self.label(p.u), self.label(p.v)))
            .collect()
    }

    fn indexed(&self, measure: Measure) -> bool {
        self.meta.indexed.contains(&measure)
    }

    // --- fan-out ---------------------------------------------------

    /// Send `req` to every target shard concurrently. Returns the
    /// healthy answers and the sorted list of unreachable shards;
    /// a shard-reported typed error fails the whole statement (the
    /// shard is *healthy* — the statement is what is wrong).
    #[allow(clippy::type_complexity)]
    fn fan_out(
        &self,
        targets: &[usize],
        req: &ShardRequest,
        acct: &mut Acct,
    ) -> Result<(Vec<(usize, ShardResponse)>, Vec<usize>), CoordError> {
        let mut results: Vec<(usize, Result<ShardResponse, BackendError>)> =
            Vec::with_capacity(targets.len());
        if let [one] = targets {
            let r = match self.backends.get(*one) {
                Some(b) => b.call(req),
                None => Err(BackendError::Unavailable {
                    shard: *one,
                    reason: "no backend".to_string(),
                }),
            };
            results.push((*one, r));
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = targets
                    .iter()
                    .map(|&t| {
                        let backend = self.backends.get(t).cloned();
                        let handle = scope.spawn(move || match backend {
                            Some(b) => b.call(req),
                            None => Err(BackendError::Unavailable {
                                shard: t,
                                reason: "no backend".to_string(),
                            }),
                        });
                        (t, handle)
                    })
                    .collect();
                for (t, handle) in handles {
                    // A panicking backend must degrade, not poison the
                    // coordinator.
                    let r = handle.join().unwrap_or_else(|_| {
                        Err(BackendError::Unavailable {
                            shard: t,
                            reason: "backend panicked".to_string(),
                        })
                    });
                    results.push((t, r));
                }
            });
        }
        let mut ok = Vec::new();
        let mut down = Vec::new();
        let mut remote: Option<CoordError> = None;
        for (t, r) in results {
            match r {
                Ok(resp) => ok.push((t, resp)),
                Err(BackendError::Unavailable { .. }) => {
                    acct.failed_calls = acct.failed_calls.saturating_add(1);
                    down.push(t);
                }
                Err(BackendError::Remote {
                    shard,
                    code,
                    message,
                }) => {
                    if remote.is_none() {
                        remote = Some(CoordError::new(
                            intern_code(&code),
                            format!("shard {shard}: {message}"),
                        ));
                    }
                }
            }
        }
        if let Some(e) = remote {
            return Err(e);
        }
        down.sort_unstable();
        Ok((ok, down))
    }

    /// Ask shards in order until one answers `req` (used for answers
    /// any shard can give, like normalizer diagonals).
    fn first_healthy(
        &self,
        req: &ShardRequest,
        acct: &mut Acct,
    ) -> Result<ShardResponse, CoordError> {
        for backend in &self.backends {
            match backend.call(req) {
                Ok(resp) => return Ok(resp),
                Err(BackendError::Unavailable { .. }) => {
                    acct.failed_calls = acct.failed_calls.saturating_add(1);
                }
                Err(BackendError::Remote {
                    shard,
                    code,
                    message,
                }) => {
                    return Err(CoordError::new(
                        intern_code(&code),
                        format!("shard {shard}: {message}"),
                    ));
                }
            }
        }
        Err(CoordError::new(
            "UNAVAILABLE",
            "no shard reachable".to_string(),
        ))
    }

    fn all_shards(&self) -> Vec<usize> {
        (0..self.backends.len()).collect()
    }

    // --- execution -------------------------------------------------

    #[allow(clippy::type_complexity)]
    fn run(
        &self,
        statement: &Statement,
        acct: &mut Acct,
    ) -> Result<(QueryOutput, Vec<usize>), CoordError> {
        match statement {
            Statement::Explain(inner) => Ok((QueryOutput::Plan(self.plan(inner)), Vec::new())),
            Statement::Mec { measure, series } => {
                let ids = series
                    .iter()
                    .map(|s| self.resolve(s))
                    .collect::<Result<Vec<_>, _>>()?;
                match measure {
                    Measure::Location(l) => self.mec_location(*l, &ids, acct),
                    Measure::Pairwise(p) => self.mec_pairwise(*p, &ids, acct),
                }
            }
            Statement::Met {
                measure,
                greater,
                tau,
            } => {
                let op = if *greater {
                    ThresholdOp::Greater
                } else {
                    ThresholdOp::Less
                };
                let tau = *tau;
                match measure {
                    Measure::Pairwise(p) => {
                        if self.indexed(*measure) {
                            let req = ShardRequest::ThresholdPairs {
                                measure: *p,
                                op,
                                tau,
                            };
                            self.merge_pairs(&req, acct)
                        } else {
                            self.scan_pairs(
                                *p,
                                move |v| match op {
                                    ThresholdOp::Greater => v > tau,
                                    ThresholdOp::Less => v < tau,
                                },
                                acct,
                            )
                        }
                    }
                    Measure::Location(l) => {
                        if self.indexed(*measure) {
                            let req = ShardRequest::ThresholdSeries {
                                measure: *l,
                                op,
                                tau,
                            };
                            self.merge_series(&req, acct)
                        } else {
                            self.scan_series(
                                *l,
                                move |v| match op {
                                    ThresholdOp::Greater => v > tau,
                                    ThresholdOp::Less => v < tau,
                                },
                                acct,
                            )
                        }
                    }
                }
            }
            Statement::Mer { measure, lo, hi } => {
                let (lo, hi) = (*lo, *hi);
                if lo > hi {
                    return Err(CoordError::from_ql(&QlError::EmptyRange { lo, hi }));
                }
                match measure {
                    Measure::Pairwise(p) => {
                        if self.indexed(*measure) {
                            let req = ShardRequest::RangePairs {
                                measure: *p,
                                lo,
                                hi,
                            };
                            self.merge_pairs(&req, acct)
                        } else {
                            self.scan_pairs(*p, move |v| lo < v && v < hi, acct)
                        }
                    }
                    Measure::Location(l) => {
                        if self.indexed(*measure) {
                            let req = ShardRequest::RangeSeries {
                                measure: *l,
                                lo,
                                hi,
                            };
                            self.merge_series(&req, acct)
                        } else {
                            self.scan_series(*l, move |v| lo < v && v < hi, acct)
                        }
                    }
                }
            }
        }
    }

    /// Indexed MET/MER over a pairwise measure: fan to every shard,
    /// splice chunks by global pivot ordinal — the exact in-process
    /// merge ([`splice_chunks`]).
    #[allow(clippy::type_complexity)]
    fn merge_pairs(
        &self,
        req: &ShardRequest,
        acct: &mut Acct,
    ) -> Result<(QueryOutput, Vec<usize>), CoordError> {
        let (ok, down) = self.fan_out(&self.all_shards(), req, acct)?;
        if ok.is_empty() {
            return Err(CoordError::new(
                "UNAVAILABLE",
                "no shard reachable".to_string(),
            ));
        }
        let mut chunks: Vec<(u32, Vec<SequencePair>)> = Vec::new();
        for (shard, resp) in ok {
            let ShardResponse::PairChunks(cs) = resp else {
                return Err(wrong_shape(shard));
            };
            for (ord, pairs) in cs {
                chunks.push((
                    ord,
                    pairs
                        .iter()
                        // Safe literal: the wire decoder rejects u >= v.
                        .map(|&(u, v)| SequencePair {
                            u: u as usize,
                            v: v as usize,
                        })
                        .collect(),
                ));
            }
        }
        let pairs = splice_chunks(chunks);
        Ok((QueryOutput::Pairs(self.pair_labels(pairs)), down))
    }

    /// Indexed MET/MER over a location measure: fan to every shard,
    /// merge per-cluster keyed entries — the exact in-process merge
    /// ([`merge_keyed_series`]).
    #[allow(clippy::type_complexity)]
    fn merge_series(
        &self,
        req: &ShardRequest,
        acct: &mut Acct,
    ) -> Result<(QueryOutput, Vec<usize>), CoordError> {
        let (ok, down) = self.fan_out(&self.all_shards(), req, acct)?;
        if ok.is_empty() {
            return Err(CoordError::new(
                "UNAVAILABLE",
                "no shard reachable".to_string(),
            ));
        }
        let mut per_shard: Vec<Vec<Vec<(f64, SeriesId)>>> = Vec::with_capacity(ok.len());
        for (shard, resp) in ok {
            let ShardResponse::KeyedSeries(clusters) = resp else {
                return Err(wrong_shape(shard));
            };
            per_shard.push(
                clusters
                    .into_iter()
                    .map(|entries| {
                        entries
                            .into_iter()
                            .map(|(xi, v)| (xi, v as usize))
                            .collect()
                    })
                    .collect(),
            );
        }
        let series = merge_keyed_series(per_shard);
        Ok((
            QueryOutput::Series(series.into_iter().map(|v| self.label(v)).collect()),
            down,
        ))
    }

    /// Fallback MET/MER over a pairwise measure: every shard scans its
    /// own relationship partition; the coordinator filters and sorts
    /// into the monolithic scan's `(u, v)` iteration order.
    #[allow(clippy::type_complexity)]
    fn scan_pairs(
        &self,
        measure: PairwiseMeasure,
        keep: impl Fn(f64) -> bool,
        acct: &mut Acct,
    ) -> Result<(QueryOutput, Vec<usize>), CoordError> {
        let req = ShardRequest::ScanPairs { measure };
        let (ok, down) = self.fan_out(&self.all_shards(), &req, acct)?;
        if ok.is_empty() {
            return Err(CoordError::new(
                "UNAVAILABLE",
                "no shard reachable".to_string(),
            ));
        }
        let mut hits: Vec<(u32, u32)> = Vec::new();
        for (shard, resp) in ok {
            let ShardResponse::ScanPairs(entries) = resp else {
                return Err(wrong_shape(shard));
            };
            for (u, v, x) in entries {
                if keep(x) {
                    hits.push((u, v));
                }
            }
        }
        // The shards' pair sets are disjoint, so sorting recovers the
        // u-ascending / v-ascending global scan order exactly.
        hits.sort_unstable();
        let pairs = hits
            .into_iter()
            .map(|(u, v)| SequencePair {
                u: u as usize,
                v: v as usize,
            })
            .collect();
        Ok((QueryOutput::Pairs(self.pair_labels(pairs)), down))
    }

    /// Fallback MET/MER over a location measure: every shard scans the
    /// series it owns; filter + sort recovers the global `0..n` order.
    #[allow(clippy::type_complexity)]
    fn scan_series(
        &self,
        measure: LocationMeasure,
        keep: impl Fn(f64) -> bool,
        acct: &mut Acct,
    ) -> Result<(QueryOutput, Vec<usize>), CoordError> {
        let req = ShardRequest::ScanSeries { measure };
        let (ok, down) = self.fan_out(&self.all_shards(), &req, acct)?;
        if ok.is_empty() {
            return Err(CoordError::new(
                "UNAVAILABLE",
                "no shard reachable".to_string(),
            ));
        }
        let mut hits: Vec<u32> = Vec::new();
        for (shard, resp) in ok {
            let ShardResponse::ScanSeries(entries) = resp else {
                return Err(wrong_shape(shard));
            };
            for (v, x) in entries {
                if keep(x) {
                    hits.push(v);
                }
            }
        }
        hits.sort_unstable();
        Ok((
            QueryOutput::Series(hits.into_iter().map(|v| self.label(v as usize)).collect()),
            down,
        ))
    }

    /// MEC over a location measure: route each id to its owning shard.
    /// A down owner drops its rows (degraded); every owner down is
    /// `UNAVAILABLE`.
    #[allow(clippy::type_complexity)]
    fn mec_location(
        &self,
        measure: LocationMeasure,
        ids: &[SeriesId],
        acct: &mut Acct,
    ) -> Result<(QueryOutput, Vec<usize>), CoordError> {
        // Group requested positions by owning shard, preserving request
        // order within each group.
        let mut by_owner: BTreeMap<usize, Vec<(usize, SeriesId)>> = BTreeMap::new();
        for (pos, &v) in ids.iter().enumerate() {
            let owner = self.meta.plan.shard_of(v).unwrap_or(0);
            by_owner.entry(owner).or_default().push((pos, v));
        }
        let mut rows: Vec<Option<(String, f64)>> = vec![None; ids.len()];
        let mut down: Vec<usize> = Vec::new();
        let mut answered_any = by_owner.is_empty();
        for (owner, group) in &by_owner {
            let mut owner_down = false;
            for chunk in group.chunks(MAX_LIST) {
                let req = ShardRequest::LocationValues {
                    measure,
                    ids: chunk.iter().map(|&(_, v)| v as u32).collect(),
                };
                let (ok, fan_down) = self.fan_out(&[*owner], &req, acct)?;
                if !fan_down.is_empty() {
                    owner_down = true;
                    break;
                }
                let Some((shard, resp)) = ok.into_iter().next() else {
                    owner_down = true;
                    break;
                };
                let ShardResponse::Values(values) = resp else {
                    return Err(wrong_shape(shard));
                };
                if values.len() != chunk.len() {
                    return Err(wrong_shape(*owner));
                }
                for (&(pos, v), x) in chunk.iter().zip(values) {
                    if let Some(slot) = rows.get_mut(pos) {
                        *slot = Some((self.label(v), x));
                    }
                }
            }
            if owner_down {
                down.push(*owner);
            } else {
                answered_any = true;
            }
        }
        if !answered_any {
            return Err(CoordError::new(
                "UNAVAILABLE",
                "every owning shard is unreachable".to_string(),
            ));
        }
        Ok((
            QueryOutput::Values(rows.into_iter().flatten().collect()),
            down,
        ))
    }

    /// MEC over a pairwise measure: all-or-nothing — a matrix with
    /// holes is a *wrong* answer, not a partial one, so any needed
    /// shard being down fails the statement `UNAVAILABLE`.
    #[allow(clippy::type_complexity)]
    fn mec_pairwise(
        &self,
        measure: PairwiseMeasure,
        ids: &[SeriesId],
        acct: &mut Acct,
    ) -> Result<(QueryOutput, Vec<usize>), CoordError> {
        // The in-process model panics on duplicate ids (SequencePair
        // needs distinct members); over the wire that must be a typed
        // error instead.
        let mut seen = ids.to_vec();
        seen.sort_unstable();
        seen.dedup();
        if seen.len() != ids.len() {
            return Err(CoordError::new(
                "INTERNAL",
                "engine error: MEC pairwise requires distinct series".to_string(),
            ));
        }
        let q = ids.len();
        let mut matrix = Matrix::zeros(q, q);
        // Diagonal: global normalizer tables, identical on every shard —
        // any healthy shard answers.
        for (offset, chunk) in ids.chunks(MAX_LIST).enumerate() {
            let req = ShardRequest::DiagValues {
                measure,
                ids: chunk.iter().map(|&v| v as u32).collect(),
            };
            let resp = self.first_healthy(&req, acct)?;
            let ShardResponse::Values(values) = resp else {
                return Err(wrong_shape(0));
            };
            if values.len() != chunk.len() {
                return Err(CoordError::new(
                    "INTERNAL",
                    "diagonal answer shape mismatch".to_string(),
                ));
            }
            for (k, x) in values.into_iter().enumerate() {
                let i = offset.saturating_mul(MAX_LIST).saturating_add(k);
                matrix.set(i, i, x);
            }
        }
        // Off-diagonals: each pair lives in exactly one shard's affine
        // partition, unknowable from the plan — ask everyone, take the
        // unique `Some`.
        let mut flat: Vec<(usize, usize)> = Vec::with_capacity(q.saturating_mul(q) / 2);
        for i in 0..q {
            for j in i + 1..q {
                flat.push((i, j));
            }
        }
        for chunk in flat.chunks(MAX_LIST) {
            let wire_pairs: Vec<(u32, u32)> = chunk
                .iter()
                .map(|&(i, j)| {
                    let (a, b) = (ids[i], ids[j]);
                    // Canonicalize: resolve order need not be id order.
                    if a < b {
                        (a as u32, b as u32)
                    } else {
                        (b as u32, a as u32)
                    }
                })
                .collect();
            let req = ShardRequest::PairValues {
                measure,
                pairs: wire_pairs,
            };
            let (ok, down) = self.fan_out(&self.all_shards(), &req, acct)?;
            if !down.is_empty() {
                let list = down
                    .iter()
                    .map(|s| s.to_string())
                    .collect::<Vec<_>>()
                    .join(",");
                return Err(CoordError::new(
                    "UNAVAILABLE",
                    format!("MEC pairwise needs every shard; shards {list} down"),
                ));
            }
            let mut merged: Vec<Option<f64>> = vec![None; chunk.len()];
            for (shard, resp) in ok {
                let ShardResponse::MaybeValues(values) = resp else {
                    return Err(wrong_shape(shard));
                };
                if values.len() != chunk.len() {
                    return Err(wrong_shape(shard));
                }
                for (slot, value) in merged.iter_mut().zip(values) {
                    if let Some(x) = value {
                        *slot = Some(x);
                    }
                }
            }
            for (&(i, j), value) in chunk.iter().zip(merged) {
                let Some(x) = value else {
                    let (a, b) = (ids[i].min(ids[j]), ids[i].max(ids[j]));
                    return Err(CoordError::from_ql(&QlError::Engine(format!(
                        "no affine relationship stored for pair ({a}, {b})"
                    ))));
                };
                matrix.set(i, j, x);
                matrix.set(j, i, x);
            }
        }
        Ok((
            QueryOutput::PairMatrix {
                labels: ids.iter().map(|&v| self.label(v)).collect(),
                matrix,
            },
            Vec::new(),
        ))
    }

    /// `EXPLAIN` rendering; mirrors the sharded
    /// [`affinity_ql::Session`] plan strings with `k = plan.shards()`.
    fn plan(&self, statement: &Statement) -> String {
        let k = self.meta.plan.shards();
        let sharded = format!("; merged across {k} shards");
        match statement {
            Statement::Explain(inner) => self.plan(inner),
            Statement::Mec { measure, series } => format!(
                "MEC {}: MecEngine (W_A) over {} series; pivot statistics from hash map, O(1) per value{}",
                measure.name(),
                series.len(),
                "; routed to owning shard"
            ),
            Statement::Met { measure, .. } | Statement::Mer { measure, .. } => {
                let kind = if matches!(statement, Statement::Met { .. }) {
                    "MET"
                } else {
                    "MER"
                };
                if self.indexed(*measure) {
                    format!(
                        "{kind} {}: SCAPE index search with modified thresholds (tau' = tau/||alpha||){}{sharded}",
                        measure.name(),
                        if matches!(
                            measure,
                            Measure::Pairwise(p) if p.is_derived()
                        ) {
                            " + normalizer-bound pruning"
                        } else {
                            ""
                        }
                    )
                } else {
                    format!(
                        "{kind} {}: full scan of W_A values (measure not indexed){sharded}",
                        measure.name()
                    )
                }
            }
        }
    }
}

fn wrong_shape(shard: usize) -> CoordError {
    CoordError::new(
        "INTERNAL",
        format!("shard {shard} answered the wrong shape"),
    )
}

//! Distributed shard serving for the AFFINITY pipeline.
//!
//! PR 9's [`affinity_shard::ShardedModel`] proved the exact cross-shard
//! merge on one box; this crate moves the shards onto separate shard
//! *server* processes and keeps the same bit-identity contract while
//! surviving the failures distribution introduces — dead shard servers,
//! stalled sockets, and torn snapshots.
//!
//! Layers:
//!
//! * [`proto`] — the coordinator ↔ shard-server wire protocol: typed
//!   request/response frames over the serve line protocol, `f64`s as
//!   bit-exact hex so merged answers round-trip unchanged. Decode paths
//!   are panic-free (afflint R1/R5 gated).
//! * [`backend`] — the [`backend::ShardBackend`] trait the merge layer
//!   routes through, with an in-process implementation
//!   ([`backend::InProcBackend`]) and the shared [`backend::answer`]
//!   function shard servers call for remote peers — one query
//!   implementation behind both transports.
//! * [`remote`] — [`remote::RemoteShard`]: the TCP backend with
//!   per-request deadlines, jittered exponential-backoff retries, and a
//!   closed/open/half-open circuit breaker per shard.
//! * [`coordinator`] — statement execution: parse with `affinity_ql`,
//!   fan out to owner shards, merge with the *same* splice/merge
//!   helpers the single-box model uses, and degrade gracefully — a
//!   partial answer is always typed `DEGRADED <missing>`, never a
//!   silent subset.
//! * [`supervisor`] — spawns shard-server children, detects death,
//!   respawns with `--resume`, re-heals (catch-up ticks + plan check)
//!   and only then readmits the shard's breaker.
//! * [`server`] — the client-facing line protocol front-end and the
//!   conservation ledger (`routed == merged + retried + degraded +
//!   failed`) exposed via `.stats`.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod backend;
pub mod coordinator;
pub mod proto;
pub mod remote;
pub mod server;
pub mod stats;
pub mod supervisor;

pub use backend::{answer, AnswerError, BackendError, InProcBackend, ShardBackend};
pub use coordinator::{CoordAnswer, CoordError, CoordMeta, Coordinator};
pub use proto::{ProtoError, ShardMeta, ShardRequest, ShardResponse};
pub use remote::{BreakerPolicy, CircuitBreaker, RemoteShard, RetryPolicy};
pub use server::{CoordServer, MAX_LINE};
pub use stats::CoordStats;
pub use supervisor::{launch, spawn_fleet, ShardSpec, Supervisor};

//! The coordinator's client-facing line protocol.
//!
//! Same framing as the serve crate — `<id> <statement>` lines answered
//! `OK <id> <n>` + body or `ERR <id> <CODE> <msg>` — plus one new
//! response form that only a distributed front-end needs:
//!
//! ```text
//! DEGRADED <id> <missing-shards-csv> <n>
//! ```
//!
//! followed by `n` body lines: the statement's answer *without* the
//! named shards' contribution. A partial answer is always typed; a
//! client that never checks for `DEGRADED` can run `--strict`, which
//! turns every partial answer into `ERR ... UNAVAILABLE`.
//!
//! Control commands:
//!
//! ```text
//! .ping          liveness probe
//! .stats         the conservation ledger (key=value pairs)
//! .health        per-shard breaker state + resync flags + tick count
//! .tick <k>      fan k replay ticks to every attached shard server
//! .shutdown      graceful shutdown
//! ```
//!
//! The reader is hardened against byte soup: lines over [`MAX_LINE`]
//! are answered with a typed `PROTO` error and their tail swallowed,
//! and an unterminated line at EOF is a typed error, not a silent drop.

use crate::backend::ShardBackend;
use crate::coordinator::Coordinator;
use crate::remote::RemoteShard;
use crate::stats::CoordStats;
use parking_lot::{Mutex, RwLock};
use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Longest accepted request line (matches the serve transport).
pub const MAX_LINE: u64 = 64 * 1024;

/// Poll interval for the accept loop and reader timeouts.
const POLL: Duration = Duration::from_millis(50);

/// Timeout for `.tick` fan-out control calls to shard servers (a tick
/// recomputes models, so it is far slower than a query).
const TICK_TIMEOUT: Duration = Duration::from_secs(30);

/// The coordinator front-end: accepts client connections, executes
/// statements through the [`Coordinator`], and exposes fleet health.
pub struct CoordServer {
    coordinator: Coordinator,
    /// TCP backends, when serving a remote fleet (empty for a pure
    /// in-process coordinator). Used by `.tick`/`.health` and shared
    /// with the supervisor.
    remotes: Vec<Arc<RemoteShard>>,
    /// Logical tick target of the fleet. Writers (`.tick`) hold the
    /// write lock across the fan-out so the supervisor's re-heal
    /// (which reads it under the same lock) can never readmit a shard
    /// against a moving target.
    ticks: Arc<RwLock<u64>>,
    shutdown: AtomicBool,
}

impl CoordServer {
    /// Wrap a constructed coordinator. `remotes` lists the TCP
    /// backends in shard order when serving a remote fleet; pass an
    /// empty vector for in-process backends.
    pub fn new(coordinator: Coordinator, remotes: Vec<Arc<RemoteShard>>) -> Arc<CoordServer> {
        // Seed the tick ledger with the fleet's baseline (window
        // warm-up counts as ticks), so re-heal parity targets match
        // what `.epoch` reports on the shard servers.
        let baseline = coordinator.meta().ticks;
        Arc::new(CoordServer {
            coordinator,
            remotes,
            ticks: Arc::new(RwLock::new(baseline)),
            shutdown: AtomicBool::new(false),
        })
    }

    /// The routing layer (tests drive it directly).
    pub fn coordinator(&self) -> &Coordinator {
        &self.coordinator
    }

    /// The fleet tick target, shared with the supervisor's re-heal.
    pub fn ticks(&self) -> &Arc<RwLock<u64>> {
        &self.ticks
    }

    /// The TCP backends, in shard order (empty when in-process).
    pub fn remotes(&self) -> &[Arc<RemoteShard>] {
        &self.remotes
    }

    /// The conservation ledger.
    pub fn stats(&self) -> &Arc<CoordStats> {
        self.coordinator.stats()
    }

    /// Request shutdown; idempotent, callable from any thread.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
    }

    /// Whether shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Run the accept loop until shutdown. Returns the final ledger.
    ///
    /// # Errors
    /// Listener failures.
    pub fn serve(self: &Arc<Self>, listener: TcpListener) -> std::io::Result<String> {
        listener.set_nonblocking(true)?;
        let mut readers = Vec::new();
        while !self.is_shutting_down() {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    let srv = Arc::clone(self);
                    let spawned = std::thread::Builder::new()
                        .name("affinity-coord-conn".into())
                        .spawn(move || srv.reader_loop(stream));
                    if let Ok(handle) = spawned {
                        readers.push(handle);
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(POLL),
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => {
                    self.request_shutdown();
                    return Err(e);
                }
            }
        }
        for r in readers {
            let _ = r.join();
        }
        Ok(self.stats().render())
    }

    /// One connection: bounded line reads, typed `PROTO` rejection of
    /// oversized or unterminated input, inline statement execution.
    fn reader_loop(self: &Arc<Self>, stream: TcpStream) {
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(POLL));
        let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
        let writer = match stream.try_clone() {
            Ok(w) => w,
            Err(_) => return,
        };
        let conn = Conn {
            writer: Mutex::new(writer),
            alive: AtomicBool::new(true),
        };
        let mut reader = BufReader::new(stream);
        let mut buf = String::new();
        // True while discarding the tail of an already-rejected
        // oversized line.
        let mut swallowing = false;
        while !self.is_shutting_down() && conn.alive.load(Ordering::Acquire) {
            match (&mut reader).take(MAX_LINE).read_line(&mut buf) {
                Ok(0) => {
                    if !buf.is_empty() && !swallowing {
                        let id = line_id_prefix(&buf);
                        self.reject_proto(&conn, &id, "unterminated line at EOF");
                    }
                    break;
                }
                Ok(_) => {
                    if buf.ends_with('\n') {
                        let line = std::mem::take(&mut buf);
                        if swallowing {
                            swallowing = false;
                        } else {
                            self.handle_line(line.trim(), &conn);
                        }
                    } else if buf.len() as u64 >= MAX_LINE {
                        let id = line_id_prefix(&buf);
                        self.reject_proto(&conn, &id, &format!("line exceeds {MAX_LINE} bytes"));
                        buf.clear();
                        swallowing = true;
                    }
                    // else: partial line, keep accumulating.
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => break,
            }
        }
    }

    /// A transport-level rejection still counts in the statement
    /// ledger (`stmts == ok + degraded_answers + unavailable + errors`
    /// must cover every request a client framed, however badly).
    fn reject_proto(&self, conn: &Conn, id: &str, msg: &str) {
        let stats = self.stats();
        CoordStats::bump(&stats.stmts);
        CoordStats::bump(&stats.errors);
        conn.send(&format!("ERR {id} PROTO {msg}\n"));
    }

    fn handle_line(self: &Arc<Self>, line: &str, conn: &Conn) {
        if line.is_empty() {
            return;
        }
        if let Some(cmd) = line.strip_prefix('.') {
            self.control(cmd, conn);
            return;
        }
        let Some((id, statement)) = line.split_once(' ') else {
            self.reject_proto(conn, &bounded(line), "expected '<id> <statement>'");
            return;
        };
        // Hold the tick read lock across execution: `.tick` fan-outs
        // (write lock) are serialized against in-flight statements, so
        // no statement ever merges shards at different tick counts.
        let ticks = self.ticks.read();
        let result = catch_unwind(AssertUnwindSafe(|| self.coordinator.execute(statement)));
        drop(ticks);
        let response = match result {
            Ok(Ok(answer)) => {
                let text = answer.output.to_string();
                let n = text.lines().count();
                if answer.missing.is_empty() {
                    format!("OK {id} {n}\n{text}")
                } else {
                    let missing = answer
                        .missing
                        .iter()
                        .map(|s| s.to_string())
                        .collect::<Vec<_>>()
                        .join(",");
                    format!("DEGRADED {id} {missing} {n}\n{text}")
                }
            }
            Ok(Err(e)) => format!("ERR {id} {} {}\n", e.code, one_line(&e.message)),
            Err(_) => {
                // The coordinator must survive anything a shard feeds
                // it; a panic is contained to the statement and typed.
                let stats = self.stats();
                CoordStats::bump(&stats.errors);
                format!("ERR {id} INTERNAL statement execution panicked\n")
            }
        };
        conn.send(&response);
    }

    fn control(self: &Arc<Self>, cmd: &str, conn: &Conn) {
        let parts: Vec<&str> = cmd.split_whitespace().collect();
        let reply = match parts.first().copied() {
            Some("ping") => "+pong\n".to_string(),
            Some("stats") => format!("+stats {}\n", self.stats().render()),
            Some("health") => {
                let mut out = String::from("+health");
                for remote in &self.remotes {
                    out.push_str(&format!(
                        " s{}={}{}",
                        remote.shard(),
                        remote.state_name(),
                        if remote.resyncing() { ":resync" } else { "" }
                    ));
                }
                out.push_str(&format!(" ticks={}\n", *self.ticks.read()));
                out
            }
            Some("tick") => {
                let count = parts
                    .get(1)
                    .and_then(|s| s.parse::<u64>().ok())
                    .filter(|k| (1..=1_000_000).contains(k));
                match count {
                    Some(k) if self.remotes.is_empty() => {
                        let _ = k;
                        "-err tick requires attached shard servers\n".to_string()
                    }
                    Some(k) => self.fan_ticks(k),
                    None => "-err usage: .tick <1..=1000000>\n".to_string(),
                }
            }
            Some("shutdown") => {
                conn.send("+bye\n");
                self.request_shutdown();
                return;
            }
            Some(other) => format!("-err unknown command '.{}'\n", bounded(other)),
            None => "-err empty command\n".to_string(),
        };
        conn.send(&reply);
    }

    /// Advance the fleet tick target by `k`, fanning `.tick k` to every
    /// shard server — including ones whose breaker is open but whose
    /// process may be alive (a stalled shard that misses ticks would
    /// otherwise serve *stale* answers after an organic breaker
    /// re-close; shards that miss the fan-out are quarantined until the
    /// supervisor proves tick-parity).
    fn fan_ticks(self: &Arc<Self>, k: u64) -> String {
        let mut ticks = self.ticks.write();
        let mut sent = 0usize;
        let mut quarantined = 0usize;
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .remotes
                .iter()
                .filter(|r| !r.resyncing())
                .map(|remote| {
                    scope.spawn(move || {
                        let reply = RemoteShard::control_once(
                            &remote.addr(),
                            &format!(".tick {k}"),
                            TICK_TIMEOUT,
                        );
                        match reply {
                            Ok(line) if line.starts_with('+') => true,
                            _ => {
                                remote.mark_resync();
                                false
                            }
                        }
                    })
                })
                .collect();
            for handle in handles {
                match handle.join() {
                    Ok(true) => sent += 1,
                    _ => quarantined += 1,
                }
            }
        });
        *ticks += k;
        let total = *ticks;
        drop(ticks);
        format!("+ticks total={total} shards={sent} quarantined={quarantined}\n")
    }
}

/// One connection's serialized writer.
struct Conn {
    writer: Mutex<TcpStream>,
    alive: AtomicBool,
}

impl Conn {
    fn send(&self, text: &str) {
        if !self.alive.load(Ordering::Acquire) {
            return;
        }
        let mut stream = self.writer.lock();
        // afflint: allow(lock-io) -- the writer mutex exists precisely to serialize one complete write per response; nothing else is held
        if stream.write_all(text.as_bytes()).is_err() {
            self.alive.store(false, Ordering::Release);
        }
    }
}

/// Collapse a message to a single protocol-safe line.
fn one_line(s: &str) -> String {
    s.replace(['\n', '\r'], " ")
}

/// Clip untrusted echoed input to a short printable token.
fn bounded(s: &str) -> String {
    let clipped: String = s.chars().take(32).collect();
    one_line(&clipped)
}

/// Best-effort response id for a line we refuse to parse fully: its
/// first whitespace token, clipped; `?` when there is none.
fn line_id_prefix(buf: &str) -> String {
    match buf.split_whitespace().next() {
        Some(tok) if !tok.is_empty() => bounded(tok),
        _ => "?".to_string(),
    }
}

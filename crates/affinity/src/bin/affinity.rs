//! `affinity` — command-line front end to the framework.
//!
//! ```text
//! affinity generate <sensor|stock> <path.afn> [n] [m]        seeded synthetic dataset
//! affinity info     <path.afn>                               shape + labels
//! affinity csv      <path.afn> <out.csv>                     export to CSV
//! affinity query    [--ooc[=MB]] [--prefetch[=K]] [--shards[=K]] <path.afn> "<stmt>" [...]
//! affinity query    [--quiet] --snapshot <dir> "<stmt>" [...]  query a persisted model
//! affinity snapshot <path.afn> <dir>                         build + persist a model
//! affinity quality  <path.afn>                               LSFD quality report
//! affinity serve    [flags]                                  concurrent query service
//! affinity coord    [flags]                                  distributed shard coordinator
//! ```
//!
//! Query statements use the `affinity-ql` grammar, e.g.
//! `"MET correlation > 0.9"`, `"MEC mean OF STK0, STK1"`,
//! `"MER covariance BETWEEN 0 AND 1"`.
//!
//! With `--ooc` the model (AFCLST + SYMEX + MEC engine + SCAPE index)
//! is built by *streaming* columns through a bounded-memory
//! [`CachedStore`] — the matrix is never materialized, so stores far
//! larger than RAM work; the answers are bit-for-bit identical to the
//! resident path. The optional `=MB` sets the column-cache budget
//! (default 64 MB). Adding `--prefetch` spawns the cache's background
//! readahead worker (depth `K`, default 8): the build passes announce
//! their column sequences and the worker pulls them from disk — region
//! reads for contiguous runs — while the current column computes.
//! Purely a wall-clock knob; the model is identical at every depth.
//!
//! With `--shards[=K]` (default K = 4) the model is partitioned into
//! `K` shards along AFCLST cluster cuts and statements are answered
//! through the cross-shard merge layer (`affinity_shard`). Answers are
//! **bit-identical** to the unsharded path — sharding is a scale-out
//! knob, not an approximation — and the flag composes with `--ooc` /
//! `--prefetch` (each shard streams columns through the same bounded
//! cache).
//!
//! `affinity snapshot` builds the full model once (AFCLST + SYMEX +
//! SCAPE index over the store's trailing window) and commits it to a
//! crash-safe snapshot directory (atomic-rename snapshot + delta
//! journal — see `affinity_stream::persist`). `affinity query
//! --snapshot <dir>` then answers statements by *opening* that model in
//! O(model bytes) — no clustering, fitting, or index build — replaying
//! any journaled refreshes and reporting what recovery did on stderr
//! (`--quiet` suppresses the report; the *exit code* still tells
//! scripts what happened: 0 = clean open, 3 = recovery had to heal
//! damage — torn journal bytes dropped, stale journal discarded,
//! journal reset, or a staged temp file removed). Snapshots store no
//! labels, so statements address series as `S<id>` or by bare numeric
//! id.
//!
//! `affinity serve` runs the long-lived concurrent query service of
//! `affinity_serve`: epoch-swapped model snapshots, a bounded admission
//! queue, deadline propagation, graceful drain on SIGINT/SIGTERM or
//! `.shutdown`, and warm resume from a snapshot directory. See
//! `serve_usage` below (or run `affinity serve --help`) for flags, and
//! `affinity_serve::server` for the wire protocol. With
//! `--shard I --shards K` the server holds shard `I` of a `K`-shard
//! fleet and additionally answers the coordinator's `!`-prefixed shard
//! requests.
//!
//! `affinity coord` runs the distributed front end of `affinity_coord`:
//! it spawns (or `--attach`es to) `K` shard servers, routes statements
//! to owner shards with retries/timeouts/circuit breakers, merges
//! exactly, supervises failover (kill a shard server and it is
//! respawned, re-healed from its snapshot + catch-up ticks, and only
//! then readmitted), and degrades gracefully — answers computed while a
//! shard is down come back `DEGRADED <missing-shards>` (or typed
//! `UNAVAILABLE` with `--strict`), never as a silent subset.
//!
//! SIGINT/SIGTERM are trapped by the long-running paths (`snapshot`
//! builds and `serve`): the current commit-protocol stage finishes, the
//! process exits cleanly, and on-disk state is never torn mid-write.

use affinity::core::prelude::*;
use affinity::core::quality::quality_report;
use affinity::data::generator::{sensor_dataset, stock_dataset, SensorConfig, StockConfig};
use affinity::ql::Session;
use affinity::serve::{ServeConfig, Server, ShedPolicy};
use affinity::shard::ShardedModel;
use affinity::storage::{CachedStore, MatrixStore};
use affinity::stream::{RecoveryReport, StreamingConfig, StreamingEngine};
use std::process::ExitCode;
use std::time::Duration;

/// Cooperative SIGINT/SIGTERM trapping for the long-running paths: the
/// handler only flips a flag; commit-protocol stages run to completion
/// and the main thread exits cleanly at the next stage boundary.
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    static REQUESTED: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_signum: i32) {
        // Async-signal-safe: a single atomic store.
        REQUESTED.store(true, Ordering::SeqCst);
    }

    #[cfg(unix)]
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    /// Install the flag-setting handler for SIGINT (2) and SIGTERM (15).
    pub fn install() {
        #[cfg(unix)]
        // SAFETY: installing an async-signal-safe handler function with
        // the default flags; no state beyond the atomic is touched.
        unsafe {
            signal(2, on_signal as *const () as usize);
            signal(15, on_signal as *const () as usize);
        }
    }

    /// Whether a trapped signal has been received.
    pub fn requested() -> bool {
        REQUESTED.load(Ordering::SeqCst)
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  affinity generate <sensor|stock> <path.afn> [n] [m]\n  affinity info <path.afn>\n  affinity csv <path.afn> <out.csv>\n  affinity query [--ooc[=MB]] [--prefetch[=K]] [--shards[=K]] <path.afn> \"<statement>\" [more statements...]\n  affinity query [--quiet] --snapshot <snapshot-dir> \"<statement>\" [more statements...]\n  affinity snapshot <path.afn> <snapshot-dir>\n  affinity quality <path.afn>\n  affinity serve [--gen <sensor|stock>] [--series N] [--samples M] [--window W] [--resume DIR | --persist DIR]\n                 [--port P] [--workers N] [--queue CAP] [--deadline-ms D] [--shed-oldest] [--churn-ms MS] [--chaos] [--quiet]\n                 [--shard I --shards K]\n  affinity coord [--shards K] [--gen <sensor|stock>] [--series N] [--samples M] [--window W] [--workers N]\n                 [--port P] [--strict] [--timeout-ms D] [--retries R] [--persist-root DIR] [--chaos] [--quiet]\n  affinity coord --attach <addr,addr,...> [--port P] [--strict] [--timeout-ms D] [--retries R] [--quiet]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let result = match cmd.as_str() {
        "generate" => generate(&args[1..]).map(|()| ExitCode::SUCCESS),
        "info" => info(&args[1..]).map(|()| ExitCode::SUCCESS),
        "csv" => csv(&args[1..]).map(|()| ExitCode::SUCCESS),
        "query" => query(&args[1..]),
        "snapshot" => snapshot(&args[1..]).map(|()| ExitCode::SUCCESS),
        "quality" => quality(&args[1..]).map(|()| ExitCode::SUCCESS),
        "serve" => serve(&args[1..]).map(|()| ExitCode::SUCCESS),
        "coord" => coord(&args[1..]).map(|()| ExitCode::SUCCESS),
        _ => return usage(),
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn generate(args: &[String]) -> Result<(), String> {
    let [kind, path, rest @ ..] = args else {
        return Err("generate needs <sensor|stock> <path.afn>".into());
    };
    let n: Option<usize> = rest
        .first()
        .map(|s| s.parse())
        .transpose()
        .map_err(|_| "bad n")?;
    let m: Option<usize> = rest
        .get(1)
        .map(|s| s.parse())
        .transpose()
        .map_err(|_| "bad m")?;
    let data = match kind.as_str() {
        "sensor" => {
            let mut cfg = SensorConfig::default();
            if let Some(n) = n {
                cfg.series = n;
            }
            if let Some(m) = m {
                cfg.samples = m;
            }
            sensor_dataset(&cfg)
        }
        "stock" => {
            let mut cfg = StockConfig::default();
            if let Some(n) = n {
                cfg.series = n;
            }
            if let Some(m) = m {
                cfg.samples = m;
            }
            stock_dataset(&cfg)
        }
        other => return Err(format!("unknown dataset kind '{other}'")),
    };
    MatrixStore::create(path, &data).map_err(|e| e.to_string())?;
    println!(
        "wrote {} series x {} samples to {path}",
        data.series_count(),
        data.samples()
    );
    Ok(())
}

fn open(path: &str) -> Result<affinity::data::DataMatrix, String> {
    MatrixStore::open(path)
        .and_then(|s| s.read_all())
        .map_err(|e| e.to_string())
}

fn info(args: &[String]) -> Result<(), String> {
    let [path] = args else {
        return Err("info needs <path.afn>".into());
    };
    let data = open(path)?;
    println!("series:  {}", data.series_count());
    println!("samples: {}", data.samples());
    println!("pairs:   {}", data.pair_count());
    let shown = data.series_count().min(8);
    let labels: Vec<&str> = (0..shown).map(|v| data.label(v)).collect();
    println!(
        "labels:  {}{}",
        labels.join(", "),
        if data.series_count() > shown {
            ", …"
        } else {
            ""
        }
    );
    Ok(())
}

fn csv(args: &[String]) -> Result<(), String> {
    let [path, out] = args else {
        return Err("csv needs <path.afn> <out.csv>".into());
    };
    let data = open(path)?;
    affinity::data::csv::save_csv(&data, out).map_err(|e| e.to_string())?;
    println!("exported to {out}");
    Ok(())
}

/// Did recovery have to *heal* damage (as opposed to a routine journal
/// replay)? This is what distinguishes exit code 3 from 0.
fn recovery_healed(report: &RecoveryReport) -> bool {
    report.torn_bytes_dropped > 0
        || report.stale_journal_discarded
        || report.journal_reset
        || report.staged_file_removed
}

/// Print the full recovery report to stderr, one field per aspect, so
/// operators see exactly what opening the snapshot found and did.
fn print_recovery(report: &RecoveryReport, series: usize) {
    eprintln!(
        "snapshot: generation {} (id {:#018x}), {} series, {} journaled refresh(es) replayed",
        report.generation, report.snapshot_id, series, report.replayed_records
    );
    if report.torn_bytes_dropped > 0 {
        eprintln!(
            "snapshot: {} torn journal byte(s) dropped from the tail",
            report.torn_bytes_dropped
        );
    }
    if report.stale_journal_discarded {
        eprintln!("snapshot: stale journal (older snapshot generation) discarded");
    }
    if report.journal_reset {
        eprintln!("snapshot: journal missing or unusable; started fresh");
    }
    if report.staged_file_removed {
        eprintln!("snapshot: leftover staged temp file from an interrupted commit removed");
    }
}

fn query(args: &[String]) -> Result<ExitCode, String> {
    // Optional leading flags (any order): `--ooc[=MB]` streams the
    // build through a bounded-memory column cache instead of
    // materializing the matrix; `--prefetch[=K]` adds the cache's
    // background readahead worker; `--shards[=K]` partitions the model
    // along cluster cuts and answers through the cross-shard merge
    // layer (bit-identical answers, so purely a scale-out knob).
    let mut ooc_budget: Option<usize> = None;
    let mut prefetch_depth: Option<usize> = None;
    let mut shards: Option<usize> = None;
    let mut from_snapshot = false;
    let mut quiet = false;
    let mut rest: &[String] = args;
    while let Some(flag) = rest.first().map(String::as_str) {
        if flag == "--snapshot" {
            from_snapshot = true;
        } else if flag == "--quiet" {
            quiet = true;
        } else if flag == "--ooc" {
            ooc_budget = Some(64usize << 20);
        } else if let Some(mb) = flag.strip_prefix("--ooc=") {
            let mb: usize = mb.parse().map_err(|_| "bad --ooc=<MB> value")?;
            ooc_budget = Some(mb << 20);
        } else if flag == "--prefetch" {
            prefetch_depth = Some(8);
        } else if let Some(k) = flag.strip_prefix("--prefetch=") {
            prefetch_depth = Some(k.parse().map_err(|_| "bad --prefetch=<K> value")?);
        } else if flag == "--shards" {
            shards = Some(4);
        } else if let Some(k) = flag.strip_prefix("--shards=") {
            let k: usize = k.parse().map_err(|_| "bad --shards=<K> value")?;
            if k == 0 {
                return Err("--shards needs K >= 1".into());
            }
            shards = Some(k);
        } else {
            break;
        }
        rest = &rest[1..];
    }
    if prefetch_depth.is_some() && ooc_budget.is_none() {
        return Err("--prefetch only applies to the --ooc streamed build".into());
    }
    if from_snapshot && ooc_budget.is_some() {
        return Err("--snapshot opens a persisted model; --ooc does not apply".into());
    }
    if from_snapshot && shards.is_some() {
        return Err("--snapshot opens a persisted model; --shards does not apply".into());
    }
    if quiet && !from_snapshot {
        return Err("--quiet only applies to --snapshot (it silences the recovery report)".into());
    }
    let [path, statements @ ..] = rest else {
        return Err("query needs <path.afn> and at least one statement".into());
    };
    if statements.is_empty() {
        return Err("query needs at least one statement".into());
    }
    let run_statements = |session: &Session| {
        for stmt in statements {
            println!("> {stmt}");
            match session.execute(stmt) {
                Ok(out) => print!("{out}"),
                Err(e) => eprintln!("error: {e}"),
            }
        }
    };
    if from_snapshot {
        let (model, report) = affinity::stream::open_model(path).map_err(|e| e.to_string())?;
        if !quiet {
            print_recovery(&report, model.affine.series_count());
        }
        let session = Session::open_snapshot(&model, Vec::new()).map_err(|e| e.to_string())?;
        run_statements(&session);
        // Scripts watch the exit code even with `--quiet`: 3 means
        // recovery healed damage, 0 means a clean open.
        return Ok(if recovery_healed(&report) {
            ExitCode::from(3)
        } else {
            ExitCode::SUCCESS
        });
    }
    if let Some(budget) = ooc_budget {
        let store = MatrixStore::open(path).map_err(|e| e.to_string())?;
        let labels = store.labels().to_vec();
        let source =
            CachedStore::with_budget_bytes(store, budget).prefetching(prefetch_depth.unwrap_or(0));
        eprintln!(
            "out-of-core: caching up to {} of {} columns ({} MB budget{})",
            source.capacity().min(source.store().series_count()),
            source.store().series_count(),
            budget >> 20,
            match source.prefetch_depth() {
                0 => String::new(),
                k => format!(", prefetch depth {k}"),
            }
        );
        if let Some(k) = shards {
            let model =
                ShardedModel::build(&source, &SymexParams::default(), k, &Measure::EXTENDED)
                    .map_err(|e| e.to_string())?;
            eprintln!(
                "sharded: {} shards cut along cluster boundaries over {} series",
                model.plan().shards(),
                model.series_count()
            );
            let session = Session::from_sharded(&model, labels).map_err(|e| e.to_string())?;
            run_statements(&session);
        } else {
            let affine = Symex::new(SymexParams::default())
                .run(&source)
                .map_err(|e| e.to_string())?;
            let session = Session::from_source(&source, labels, &affine, &Measure::EXTENDED)
                .map_err(|e| e.to_string())?;
            run_statements(&session);
        }
    } else {
        let data = open(path)?;
        if let Some(k) = shards {
            let model = ShardedModel::build(&data, &SymexParams::default(), k, &Measure::EXTENDED)
                .map_err(|e| e.to_string())?;
            eprintln!(
                "sharded: {} shards cut along cluster boundaries over {} series",
                model.plan().shards(),
                model.series_count()
            );
            let session =
                Session::from_sharded(&model, data.labels().to_vec()).map_err(|e| e.to_string())?;
            run_statements(&session);
        } else {
            let affine = Symex::new(SymexParams::default())
                .run(&data)
                .map_err(|e| e.to_string())?;
            let session =
                Session::new(&data, &affine, &Measure::EXTENDED).map_err(|e| e.to_string())?;
            run_statements(&session);
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn snapshot(args: &[String]) -> Result<(), String> {
    let [path, dir] = args else {
        return Err("snapshot needs <path.afn> <snapshot-dir>".into());
    };
    // Long-running path: trap SIGINT/SIGTERM and bail out cleanly at
    // stage boundaries — never mid-commit, so the directory is either
    // absent/old or fully committed.
    sig::install();
    let store = MatrixStore::open(path).map_err(|e| e.to_string())?;
    let (n, m) = (store.series_count(), store.samples());
    // The model window is the store's full history; the extended measure
    // set matches what `affinity query` indexes, so `query --snapshot`
    // answers the same statements the same way.
    let mut cfg = StreamingConfig::new(m);
    cfg.indexed = Measure::EXTENDED.to_vec();
    let t0 = std::time::Instant::now();
    let mut engine = StreamingEngine::from_source(cfg, &store).map_err(|e| e.to_string())?;
    let built = t0.elapsed();
    if sig::requested() {
        return Err("interrupted by signal after build; nothing was written".into());
    }
    let t1 = std::time::Instant::now();
    let id = engine.persist_to(dir).map_err(|e| e.to_string())?;
    println!(
        "persisted model over {n} series x {m} samples to {dir} \
         (snapshot id {id:#018x}; built in {:.2?}, committed in {:.2?})",
        built,
        t1.elapsed()
    );
    if sig::requested() {
        // The commit above ran to completion; just acknowledge.
        eprintln!("signal received; snapshot committed cleanly before exit");
    }
    Ok(())
}

fn serve(args: &[String]) -> Result<(), String> {
    let mut gen = "sensor".to_string();
    let mut series = 24usize;
    let mut samples = 512usize;
    let mut window = 64usize;
    let mut resume_dir: Option<String> = None;
    let mut persist_dir: Option<String> = None;
    let mut port: u16 = 4243;
    let mut cfg = ServeConfig::default();
    let mut quiet = false;
    let mut shard: Option<usize> = None;
    let mut shards: Option<usize> = None;

    fn take<'a>(it: &mut std::slice::Iter<'a, String>, name: &str) -> Result<&'a String, String> {
        it.next().ok_or_else(|| format!("{name} needs a value"))
    }
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--gen" => gen = take(&mut it, "--gen")?.clone(),
            "--series" => {
                series = take(&mut it, "--series")?
                    .parse()
                    .map_err(|_| "bad --series")?;
            }
            "--samples" => {
                samples = take(&mut it, "--samples")?
                    .parse()
                    .map_err(|_| "bad --samples")?;
            }
            "--window" => {
                window = take(&mut it, "--window")?
                    .parse()
                    .map_err(|_| "bad --window")?;
            }
            "--resume" => resume_dir = Some(take(&mut it, "--resume")?.clone()),
            "--persist" => persist_dir = Some(take(&mut it, "--persist")?.clone()),
            "--port" => {
                port = take(&mut it, "--port")?.parse().map_err(|_| "bad --port")?;
            }
            "--workers" => {
                cfg.workers = take(&mut it, "--workers")?
                    .parse()
                    .map_err(|_| "bad --workers")?;
                if cfg.workers == 0 {
                    return Err("--workers must be >= 1".into());
                }
            }
            "--queue" => {
                cfg.queue.capacity = take(&mut it, "--queue")?
                    .parse()
                    .map_err(|_| "bad --queue")?;
                if cfg.queue.capacity == 0 {
                    return Err("--queue must be >= 1".into());
                }
            }
            "--deadline-ms" => {
                let ms: u64 = take(&mut it, "--deadline-ms")?
                    .parse()
                    .map_err(|_| "bad --deadline-ms")?;
                cfg.queue.deadline = (ms > 0).then(|| Duration::from_millis(ms));
            }
            "--shed-oldest" => cfg.queue.shed = ShedPolicy::ShedOldest,
            "--churn-ms" => {
                let ms: u64 = take(&mut it, "--churn-ms")?
                    .parse()
                    .map_err(|_| "bad --churn-ms")?;
                cfg.churn_every = (ms > 0).then(|| Duration::from_millis(ms));
            }
            "--chaos" => cfg.chaos = true,
            "--quiet" => quiet = true,
            "--shard" => {
                shard = Some(
                    take(&mut it, "--shard")?
                        .parse()
                        .map_err(|_| "bad --shard")?,
                );
            }
            "--shards" => {
                shards = Some(
                    take(&mut it, "--shards")?
                        .parse()
                        .map_err(|_| "bad --shards")?,
                );
            }
            other => return Err(format!("unknown serve flag '{other}'")),
        }
    }
    match (shard, shards) {
        (None, None) => {}
        (Some(i), Some(k)) => {
            if k == 0 {
                return Err("--shards must be >= 1".into());
            }
            if i >= k {
                return Err(format!("--shard {i} must be < --shards {k}"));
            }
            cfg.shard = Some(affinity::serve::ShardServing::new(i, k));
        }
        _ => return Err("--shard and --shards must be given together".into()),
    }
    if resume_dir.is_some() && persist_dir.is_some() {
        return Err("--resume and --persist are mutually exclusive \
                    (--resume re-arms persistence on the same directory)"
            .into());
    }
    if window < 2 {
        return Err("--window must be >= 2".into());
    }

    // Deterministic replay source: the seeded synthetic dataset. Both a
    // fresh server and a resumed one regenerate the identical matrix, so
    // tick t always carries the same values — the bit-identity anchor.
    let replay = match gen.as_str() {
        "sensor" => sensor_dataset(&SensorConfig {
            series,
            samples,
            ..SensorConfig::default()
        }),
        "stock" => stock_dataset(&StockConfig {
            series,
            samples,
            ..StockConfig::default()
        }),
        other => return Err(format!("unknown dataset kind '{other}'")),
    };
    if samples < window {
        return Err("--samples must be >= --window".into());
    }

    let mut scfg = StreamingConfig::new(window);
    scfg.indexed = Measure::EXTENDED.to_vec();

    let engine = if let Some(dir) = &resume_dir {
        let (engine, report) =
            StreamingEngine::resume(scfg, dir).map_err(|e| format!("resume {dir}: {e}"))?;
        if !quiet {
            print_recovery(&report, series);
        }
        if recovery_healed(&report) && !quiet {
            eprintln!("serve: recovery healed damage; continuing from the last durable state");
        }
        engine
    } else {
        let mut engine = StreamingEngine::new(series, scfg);
        // Warm the window so the first model exists before we listen.
        let mut row = vec![0.0; series];
        for t in 0..window {
            for (v, slot) in row.iter_mut().enumerate() {
                *slot = replay.series(v)[t];
            }
            engine.push(&row).map_err(|e| e.to_string())?;
        }
        if let Some(dir) = &persist_dir {
            engine
                .persist_to(dir)
                .map_err(|e| format!("persist {dir}: {e}"))?;
        }
        engine
    };

    let (workers, qcap) = (cfg.workers, cfg.queue.capacity);
    let server = Server::new(engine, replay, cfg).map_err(|e| e.to_string())?;
    let listener = std::net::TcpListener::bind(("127.0.0.1", port))
        .map_err(|e| format!("bind 127.0.0.1:{port}: {e}"))?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?;

    // Long-running path: SIGINT/SIGTERM request a graceful drain — stop
    // accepting, answer the backlog, checkpoint if persistence is
    // armed, exit 0. Installed *before* the startup line below: anyone
    // parsing that line may signal us immediately after reading it.
    sig::install();

    // Machine-parsable startup line (tests read the ephemeral port off
    // it when started with --port 0).
    println!("SERVE addr={addr} workers={workers} queue={qcap}");
    {
        let srv = std::sync::Arc::clone(&server);
        std::thread::Builder::new()
            .name("affinity-serve-signals".into())
            .spawn(move || {
                while !srv.is_shutting_down() {
                    if sig::requested() {
                        srv.request_shutdown();
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(50));
                }
            })
            .map_err(|e| e.to_string())?;
    }

    let ledger = server.serve(listener).map_err(|e| e.to_string())?;
    println!("SERVE done {ledger}");
    Ok(())
}

fn coord(args: &[String]) -> Result<(), String> {
    use affinity::coord::{
        BreakerPolicy, CoordServer, CoordStats, Coordinator, RemoteShard, RetryPolicy, ShardSpec,
        Supervisor,
    };

    let mut shards = 2usize;
    let mut gen = "sensor".to_string();
    let mut series = 24usize;
    let mut samples = 512usize;
    let mut window = 64usize;
    let mut workers = 2usize;
    let mut port: u16 = 4244;
    let mut strict = false;
    let mut timeout_ms = 2000u64;
    let mut retries = 3u32;
    let mut persist_root: Option<String> = None;
    let mut chaos = false;
    let mut quiet = false;
    let mut attach: Option<Vec<String>> = None;

    fn take<'a>(it: &mut std::slice::Iter<'a, String>, name: &str) -> Result<&'a String, String> {
        it.next().ok_or_else(|| format!("{name} needs a value"))
    }
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--shards" => {
                shards = take(&mut it, "--shards")?
                    .parse()
                    .map_err(|_| "bad --shards")?;
            }
            "--gen" => gen = take(&mut it, "--gen")?.clone(),
            "--series" => {
                series = take(&mut it, "--series")?
                    .parse()
                    .map_err(|_| "bad --series")?;
            }
            "--samples" => {
                samples = take(&mut it, "--samples")?
                    .parse()
                    .map_err(|_| "bad --samples")?;
            }
            "--window" => {
                window = take(&mut it, "--window")?
                    .parse()
                    .map_err(|_| "bad --window")?;
            }
            "--workers" => {
                workers = take(&mut it, "--workers")?
                    .parse()
                    .map_err(|_| "bad --workers")?;
                if workers == 0 {
                    return Err("--workers must be >= 1".into());
                }
            }
            "--port" => port = take(&mut it, "--port")?.parse().map_err(|_| "bad --port")?,
            "--strict" => strict = true,
            "--timeout-ms" => {
                timeout_ms = take(&mut it, "--timeout-ms")?
                    .parse()
                    .map_err(|_| "bad --timeout-ms")?;
                if timeout_ms == 0 {
                    return Err("--timeout-ms must be >= 1".into());
                }
            }
            "--retries" => {
                retries = take(&mut it, "--retries")?
                    .parse()
                    .map_err(|_| "bad --retries")?;
                if retries == 0 {
                    return Err("--retries must be >= 1".into());
                }
            }
            "--persist-root" => persist_root = Some(take(&mut it, "--persist-root")?.clone()),
            "--chaos" => chaos = true,
            "--quiet" => quiet = true,
            "--attach" => {
                attach = Some(
                    take(&mut it, "--attach")?
                        .split(',')
                        .map(str::trim)
                        .filter(|s| !s.is_empty())
                        .map(String::from)
                        .collect(),
                );
            }
            other => return Err(format!("unknown coord flag '{other}'")),
        }
    }
    if shards == 0 {
        return Err("--shards must be >= 1".into());
    }

    // Build the fleet: spawn shard-server children, or attach to
    // already-running ones.
    let (specs, children, addrs) = match attach {
        Some(addrs) => {
            if addrs.is_empty() {
                return Err("--attach needs at least one addr".into());
            }
            (Vec::new(), Vec::new(), addrs)
        }
        None => {
            if shards > series {
                return Err(format!("--shards {shards} must be <= --series {series}"));
            }
            let exe = std::env::current_exe().map_err(|e| e.to_string())?;
            let specs: Vec<ShardSpec> = (0..shards)
                .map(|i| ShardSpec {
                    exe: exe.clone(),
                    shard: i,
                    shards,
                    gen: gen.clone(),
                    series,
                    samples,
                    window,
                    workers,
                    chaos,
                    persist_dir: persist_root
                        .as_ref()
                        .map(|root| std::path::Path::new(root).join(format!("shard{i}"))),
                })
                .collect();
            let (children, addrs) =
                affinity::coord::spawn_fleet(&specs).map_err(|e| e.to_string())?;
            for (i, (child, addr)) in children.iter().zip(&addrs).enumerate() {
                println!("COORD shard={i} pid={} addr={addr}", child.id());
            }
            (specs, children, addrs)
        }
    };

    let stats = std::sync::Arc::new(CoordStats::new());
    let retry = RetryPolicy {
        attempts: retries,
        timeout: Duration::from_millis(timeout_ms),
        ..RetryPolicy::default()
    };
    let remotes: Vec<std::sync::Arc<RemoteShard>> = addrs
        .iter()
        .enumerate()
        .map(|(i, addr)| {
            std::sync::Arc::new(RemoteShard::new(
                i,
                addr.clone(),
                retry,
                BreakerPolicy::default(),
                std::sync::Arc::clone(&stats),
            ))
        })
        .collect();
    let backends = remotes
        .iter()
        .map(|r| std::sync::Arc::clone(r) as std::sync::Arc<dyn affinity::coord::ShardBackend>)
        .collect();
    let coordinator = match Coordinator::new(backends, Vec::new(), strict, stats) {
        Ok(c) => c,
        Err(e) => {
            for mut c in children {
                let _ = c.kill();
                let _ = c.wait();
            }
            return Err(e.to_string());
        }
    };
    let expected_series = coordinator.meta().series;
    let expected_assignments = coordinator.meta().plan.assignments().to_vec();
    let fleet = remotes.len();
    let server = CoordServer::new(coordinator, remotes.clone());

    let supervisor = Supervisor::new(
        remotes,
        std::sync::Arc::clone(server.ticks()),
        specs,
        children,
        expected_series,
        expected_assignments,
        Box::new(move |event| {
            if !quiet {
                println!("COORD {event}");
            }
        }),
    );
    let monitor = {
        let sup = std::sync::Arc::clone(&supervisor);
        std::thread::Builder::new()
            .name("affinity-coord-supervisor".into())
            .spawn(move || sup.run())
            .map_err(|e| e.to_string())?
    };

    let listener = std::net::TcpListener::bind(("127.0.0.1", port))
        .map_err(|e| format!("bind 127.0.0.1:{port}: {e}"))?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?;

    sig::install();
    println!("COORD addr={addr} shards={fleet} strict={strict}");
    {
        let srv = std::sync::Arc::clone(&server);
        std::thread::Builder::new()
            .name("affinity-coord-signals".into())
            .spawn(move || {
                while !srv.is_shutting_down() {
                    if sig::requested() {
                        srv.request_shutdown();
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(50));
                }
            })
            .map_err(|e| e.to_string())?;
    }

    let result = server.serve(listener).map_err(|e| e.to_string());
    supervisor.stop();
    let _ = monitor.join();
    supervisor.shutdown_children();
    let ledger = result?;
    println!("COORD done {ledger}");
    Ok(())
}

fn quality(args: &[String]) -> Result<(), String> {
    let [path] = args else {
        return Err("quality needs <path.afn>".into());
    };
    let data = open(path)?;
    let affine = Symex::new(SymexParams::default())
        .run(&data)
        .map_err(|e| e.to_string())?;
    // Sample for big sets: cap the scored count around 20k.
    let stride = (affine.len() / 20_000).max(1);
    let report = quality_report(&data, &affine, stride, 10);
    println!("{}", report.summary());
    println!("\nworst relationships:");
    for rq in &report.worst {
        println!(
            "  ({}, {})  LSFD {:.4e}",
            data.label(rq.pair.u),
            data.label(rq.pair.v),
            rq.lsfd
        );
    }
    Ok(())
}

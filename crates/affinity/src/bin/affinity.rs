//! `affinity` — command-line front end to the framework.
//!
//! ```text
//! affinity generate <sensor|stock> <path.afn> [n] [m]        seeded synthetic dataset
//! affinity info     <path.afn>                               shape + labels
//! affinity csv      <path.afn> <out.csv>                     export to CSV
//! affinity query    [--ooc[=MB]] [--prefetch[=K]] <path.afn> "<stmt>" [...]
//! affinity query    --snapshot <dir> "<stmt>" [...]          query a persisted model
//! affinity snapshot <path.afn> <dir>                         build + persist a model
//! affinity quality  <path.afn>                               LSFD quality report
//! ```
//!
//! Query statements use the `affinity-ql` grammar, e.g.
//! `"MET correlation > 0.9"`, `"MEC mean OF STK0, STK1"`,
//! `"MER covariance BETWEEN 0 AND 1"`.
//!
//! With `--ooc` the model (AFCLST + SYMEX + MEC engine + SCAPE index)
//! is built by *streaming* columns through a bounded-memory
//! [`CachedStore`] — the matrix is never materialized, so stores far
//! larger than RAM work; the answers are bit-for-bit identical to the
//! resident path. The optional `=MB` sets the column-cache budget
//! (default 64 MB). Adding `--prefetch` spawns the cache's background
//! readahead worker (depth `K`, default 8): the build passes announce
//! their column sequences and the worker pulls them from disk — region
//! reads for contiguous runs — while the current column computes.
//! Purely a wall-clock knob; the model is identical at every depth.
//!
//! `affinity snapshot` builds the full model once (AFCLST + SYMEX +
//! SCAPE index over the store's trailing window) and commits it to a
//! crash-safe snapshot directory (atomic-rename snapshot + delta
//! journal — see `affinity_stream::persist`). `affinity query
//! --snapshot <dir>` then answers statements by *opening* that model in
//! O(model bytes) — no clustering, fitting, or index build — replaying
//! any journaled refreshes and reporting what recovery did on stderr.
//! Snapshots store no labels, so statements address series as `S<id>`
//! or by bare numeric id.

use affinity::core::prelude::*;
use affinity::core::quality::quality_report;
use affinity::data::generator::{sensor_dataset, stock_dataset, SensorConfig, StockConfig};
use affinity::ql::Session;
use affinity::storage::{CachedStore, MatrixStore};
use affinity::stream::{StreamingConfig, StreamingEngine};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  affinity generate <sensor|stock> <path.afn> [n] [m]\n  affinity info <path.afn>\n  affinity csv <path.afn> <out.csv>\n  affinity query [--ooc[=MB]] [--prefetch[=K]] <path.afn> \"<statement>\" [more statements...]\n  affinity query --snapshot <snapshot-dir> \"<statement>\" [more statements...]\n  affinity snapshot <path.afn> <snapshot-dir>\n  affinity quality <path.afn>"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let result = match cmd.as_str() {
        "generate" => generate(&args[1..]),
        "info" => info(&args[1..]),
        "csv" => csv(&args[1..]),
        "query" => query(&args[1..]),
        "snapshot" => snapshot(&args[1..]),
        "quality" => quality(&args[1..]),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn generate(args: &[String]) -> Result<(), String> {
    let [kind, path, rest @ ..] = args else {
        return Err("generate needs <sensor|stock> <path.afn>".into());
    };
    let n: Option<usize> = rest
        .first()
        .map(|s| s.parse())
        .transpose()
        .map_err(|_| "bad n")?;
    let m: Option<usize> = rest
        .get(1)
        .map(|s| s.parse())
        .transpose()
        .map_err(|_| "bad m")?;
    let data = match kind.as_str() {
        "sensor" => {
            let mut cfg = SensorConfig::default();
            if let Some(n) = n {
                cfg.series = n;
            }
            if let Some(m) = m {
                cfg.samples = m;
            }
            sensor_dataset(&cfg)
        }
        "stock" => {
            let mut cfg = StockConfig::default();
            if let Some(n) = n {
                cfg.series = n;
            }
            if let Some(m) = m {
                cfg.samples = m;
            }
            stock_dataset(&cfg)
        }
        other => return Err(format!("unknown dataset kind '{other}'")),
    };
    MatrixStore::create(path, &data).map_err(|e| e.to_string())?;
    println!(
        "wrote {} series x {} samples to {path}",
        data.series_count(),
        data.samples()
    );
    Ok(())
}

fn open(path: &str) -> Result<affinity::data::DataMatrix, String> {
    MatrixStore::open(path)
        .and_then(|s| s.read_all())
        .map_err(|e| e.to_string())
}

fn info(args: &[String]) -> Result<(), String> {
    let [path] = args else {
        return Err("info needs <path.afn>".into());
    };
    let data = open(path)?;
    println!("series:  {}", data.series_count());
    println!("samples: {}", data.samples());
    println!("pairs:   {}", data.pair_count());
    let shown = data.series_count().min(8);
    let labels: Vec<&str> = (0..shown).map(|v| data.label(v)).collect();
    println!(
        "labels:  {}{}",
        labels.join(", "),
        if data.series_count() > shown {
            ", …"
        } else {
            ""
        }
    );
    Ok(())
}

fn csv(args: &[String]) -> Result<(), String> {
    let [path, out] = args else {
        return Err("csv needs <path.afn> <out.csv>".into());
    };
    let data = open(path)?;
    affinity::data::csv::save_csv(&data, out).map_err(|e| e.to_string())?;
    println!("exported to {out}");
    Ok(())
}

fn query(args: &[String]) -> Result<(), String> {
    // Optional leading flags (any order): `--ooc[=MB]` streams the
    // build through a bounded-memory column cache instead of
    // materializing the matrix; `--prefetch[=K]` adds the cache's
    // background readahead worker.
    let mut ooc_budget: Option<usize> = None;
    let mut prefetch_depth: Option<usize> = None;
    let mut from_snapshot = false;
    let mut rest: &[String] = args;
    while let Some(flag) = rest.first().map(String::as_str) {
        if flag == "--snapshot" {
            from_snapshot = true;
        } else if flag == "--ooc" {
            ooc_budget = Some(64usize << 20);
        } else if let Some(mb) = flag.strip_prefix("--ooc=") {
            let mb: usize = mb.parse().map_err(|_| "bad --ooc=<MB> value")?;
            ooc_budget = Some(mb << 20);
        } else if flag == "--prefetch" {
            prefetch_depth = Some(8);
        } else if let Some(k) = flag.strip_prefix("--prefetch=") {
            prefetch_depth = Some(k.parse().map_err(|_| "bad --prefetch=<K> value")?);
        } else {
            break;
        }
        rest = &rest[1..];
    }
    if prefetch_depth.is_some() && ooc_budget.is_none() {
        return Err("--prefetch only applies to the --ooc streamed build".into());
    }
    if from_snapshot && ooc_budget.is_some() {
        return Err("--snapshot opens a persisted model; --ooc does not apply".into());
    }
    let [path, statements @ ..] = rest else {
        return Err("query needs <path.afn> and at least one statement".into());
    };
    if statements.is_empty() {
        return Err("query needs at least one statement".into());
    }
    let run_statements = |session: &Session| {
        for stmt in statements {
            println!("> {stmt}");
            match session.execute(stmt) {
                Ok(out) => print!("{out}"),
                Err(e) => eprintln!("error: {e}"),
            }
        }
    };
    if from_snapshot {
        let (model, report) = affinity::stream::open_model(path).map_err(|e| e.to_string())?;
        eprintln!(
            "snapshot: generation {}, {} series, {} journaled refresh(es) replayed{}{}",
            model.generation,
            model.affine.series_count(),
            report.replayed_records,
            match report.torn_bytes_dropped {
                0 => String::new(),
                b => format!(", {b} torn journal byte(s) ignored"),
            },
            if report.stale_journal_discarded {
                ", stale journal discarded"
            } else {
                ""
            }
        );
        let session = Session::open_snapshot(&model, Vec::new()).map_err(|e| e.to_string())?;
        run_statements(&session);
        return Ok(());
    }
    if let Some(budget) = ooc_budget {
        let store = MatrixStore::open(path).map_err(|e| e.to_string())?;
        let labels = store.labels().to_vec();
        let source =
            CachedStore::with_budget_bytes(store, budget).prefetching(prefetch_depth.unwrap_or(0));
        eprintln!(
            "out-of-core: caching up to {} of {} columns ({} MB budget{})",
            source.capacity().min(source.store().series_count()),
            source.store().series_count(),
            budget >> 20,
            match source.prefetch_depth() {
                0 => String::new(),
                k => format!(", prefetch depth {k}"),
            }
        );
        let affine = Symex::new(SymexParams::default())
            .run(&source)
            .map_err(|e| e.to_string())?;
        let session = Session::from_source(&source, labels, &affine, &Measure::EXTENDED)
            .map_err(|e| e.to_string())?;
        run_statements(&session);
    } else {
        let data = open(path)?;
        let affine = Symex::new(SymexParams::default())
            .run(&data)
            .map_err(|e| e.to_string())?;
        let session =
            Session::new(&data, &affine, &Measure::EXTENDED).map_err(|e| e.to_string())?;
        run_statements(&session);
    }
    Ok(())
}

fn snapshot(args: &[String]) -> Result<(), String> {
    let [path, dir] = args else {
        return Err("snapshot needs <path.afn> <snapshot-dir>".into());
    };
    let store = MatrixStore::open(path).map_err(|e| e.to_string())?;
    let (n, m) = (store.series_count(), store.samples());
    // The model window is the store's full history; the extended measure
    // set matches what `affinity query` indexes, so `query --snapshot`
    // answers the same statements the same way.
    let mut cfg = StreamingConfig::new(m);
    cfg.indexed = Measure::EXTENDED.to_vec();
    let t0 = std::time::Instant::now();
    let mut engine = StreamingEngine::from_source(cfg, &store).map_err(|e| e.to_string())?;
    let built = t0.elapsed();
    let t1 = std::time::Instant::now();
    let id = engine.persist_to(dir).map_err(|e| e.to_string())?;
    println!(
        "persisted model over {n} series x {m} samples to {dir} \
         (snapshot id {id:#018x}; built in {:.2?}, committed in {:.2?})",
        built,
        t1.elapsed()
    );
    Ok(())
}

fn quality(args: &[String]) -> Result<(), String> {
    let [path] = args else {
        return Err("quality needs <path.afn>".into());
    };
    let data = open(path)?;
    let affine = Symex::new(SymexParams::default())
        .run(&data)
        .map_err(|e| e.to_string())?;
    // Sample for big sets: cap the scored count around 20k.
    let stride = (affine.len() / 20_000).max(1);
    let report = quality_report(&data, &affine, stride, 10);
    println!("{}", report.summary());
    println!("\nworst relationships:");
    for rq in &report.worst {
        println!(
            "  ({}, {})  LSFD {:.4e}",
            data.label(rq.pair.u),
            data.label(rq.pair.v),
            rq.lsfd
        );
    }
    Ok(())
}

//! # AFFINITY
//!
//! A Rust implementation of **"AFFINITY: Efficiently Querying Statistical
//! Measures on Time-Series Data"** (Sathe & Aberer, ICDE 2013).
//!
//! AFFINITY computes and queries statistical measures (mean, median, mode,
//! covariance, dot product, Pearson correlation) over large collections of
//! time series by exploiting *affine relationships*: instead of scanning
//! raw series for every one of the `n(n−1)/2` pairs, it
//!
//! 1. clusters the series so each is nearly a linear image of its cluster
//!    centre ([`core::afclst`], quality measured by the LSFD metric),
//! 2. fits one least-squares affine relationship per pair against a small
//!    (`≤ n·k`) set of *pivot pairs* ([`core::symex`]),
//! 3. reconstructs any measure for any pair from pivot statistics and a
//!    3-vector `β` ([`core::mec`]),
//! 4. and answers threshold/range queries over *any* of those measures
//!    from one ordered index of scalar projections ([`scape`]).
//!
//! ## Quick start
//!
//! ```
//! use affinity::prelude::*;
//!
//! // Synthetic stand-in for the paper's sensor dataset.
//! let data = sensor_dataset(&SensorConfig::reduced(32, 96));
//!
//! // Cluster + compute affine relationships (AFCLST + SYMEX+).
//! let affine = Symex::new(SymexParams::default()).run(&data).unwrap();
//!
//! // Measure computation through affine relationships (the W_A method).
//! let engine = MecEngine::new(&data, &affine);
//! let rho = engine.pairwise(PairwiseMeasure::Correlation, &[0, 1, 2, 3]).unwrap();
//! assert_eq!(rho.rows(), 4);
//!
//! // Indexed threshold queries (the SCAPE index).
//! let index = ScapeIndex::build(&data, &affine, &Measure::ALL).expect("index");
//! let hot = index
//!     .threshold_pairs(PairwiseMeasure::Correlation, ThresholdOp::Greater, 0.95)
//!     .unwrap();
//! assert!(hot.len() <= data.pair_count());
//! ```
//!
//! ## Out of core
//!
//! Model construction is generic over [`data::SeriesSource`], so the
//! same pipeline runs against an on-disk [`storage::MatrixStore`] — or a
//! bounded-memory [`storage::CachedStore`] — without ever materializing
//! the matrix, producing bit-for-bit the resident result:
//!
//! ```
//! use affinity::prelude::*;
//!
//! let data = sensor_dataset(&SensorConfig::reduced(16, 64));
//! let path = std::env::temp_dir().join("affinity-facade-ooc-doc.afn");
//! MatrixStore::create(&path, &data).unwrap();
//!
//! // Budget: at most 4 columns resident at any time.
//! let source = CachedStore::new(MatrixStore::open(&path).unwrap(), 4);
//! let affine = Symex::new(SymexParams::default()).run(&source).unwrap();
//! let index = ScapeIndex::build_from_source(
//!     &source, &affine, &Measure::ALL, &ThreadPool::new(1)).unwrap();
//! let resident = Symex::new(SymexParams::default()).run(&data).unwrap();
//! assert_eq!(affine.relationships(), resident.relationships());
//! # std::fs::remove_file(&path).ok();
//! ```
//!
//! See `ARCHITECTURE.md` for the end-to-end data flow.
//!
//! ## Crate map
//!
//! | Module | Backing crate | Contents |
//! |---|---|---|
//! | [`core`] | `affinity-core` | measures, LSFD, AFCLST, SYMEX/SYMEX+, MEC engine |
//! | [`scape`] | `affinity-scape` | the SCAPE index: bulk construction, MET/MER/count queries, delta patching |
//! | [`data`] | `affinity-data` | data matrix, `SeriesSource` column access, dataset generators, CSV, Zipf |
//! | [`query`] | `affinity-query` | `W_N`/`W_A`/`W_F` executors, online workloads |
//! | [`ql`] | `affinity-ql` | textual MEC/MET/MER query language + planner |
//! | [`stream`] | `affinity-stream` | sliding windows, rolling stats, drift-driven delta refresh |
//! | [`serve`] | `affinity-serve` | concurrent query service: epoch swaps, admission control, chaos hooks |
//! | [`shard`] | `affinity-shard` | sharded model scale-out: cluster-cut plans, exact cross-shard merge, per-shard refresh |
//! | [`coord`] | `affinity-coord` | distributed shard serving: coordinator routing, retry/backoff/breakers, failover re-heal, graceful degradation |
//! | [`storage`] | `affinity-storage` | columnar binary store with checksums, LRU `CachedStore` |
//! | [`linalg`] | `affinity-linalg` | QR, Jacobi eigen, power iteration |
//! | [`par`] | `affinity-par` | work-stealing thread pool behind parallel SYMEX + batched MEC |
//! | [`dft`] | `affinity-dft` | FFT (radix-2 + Bluestein), coefficient sketches |
//! | [`index`] | `affinity-index` | the B+ tree behind SCAPE (duplicate-aware, counted, bulk-loadable) |

#![deny(missing_docs)]
#![warn(clippy::all)]

pub use affinity_coord as coord;
pub use affinity_core as core;
pub use affinity_data as data;
pub use affinity_dft as dft;
pub use affinity_index as index;
pub use affinity_linalg as linalg;
pub use affinity_par as par;
pub use affinity_ql as ql;
pub use affinity_query as query;
pub use affinity_scape as scape;
pub use affinity_serve as serve;
pub use affinity_shard as shard;
pub use affinity_storage as storage;
pub use affinity_stream as stream;

/// Everything a typical application needs.
pub mod prelude {
    pub use affinity_coord::{Coordinator, InProcBackend, RemoteShard, ShardBackend};
    pub use affinity_core::prelude::*;
    pub use affinity_data::generator::{sensor_dataset, stock_dataset, SensorConfig, StockConfig};
    pub use affinity_data::{
        DataMatrix, SequencePair, SeriesId, SeriesSource, SourceError, ZipfSampler,
    };
    pub use affinity_par::ThreadPool;
    pub use affinity_ql::Session;
    pub use affinity_query::{AffineExecutor, DftExecutor, NaiveExecutor};
    pub use affinity_scape::{ScapeIndex, ThresholdOp};
    pub use affinity_shard::{ShardPlan, ShardedModel, ShardedStreamingEngine};
    pub use affinity_storage::{CachedStore, MatrixStore};
    pub use affinity_stream::{StreamingConfig, StreamingEngine};
}

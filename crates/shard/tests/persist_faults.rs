//! Per-shard persistence under injected faults.
//!
//! The sharded checkpoint writes each `shard-<i>.snap` first and the
//! plan file (`shardplan.snap`, the commit point) last. These tests
//! tear individual shard files — bit flips, truncation, stale versions
//! from a crash between the shard write and the plan write — and prove
//! resume heals **only** the damaged shard, deterministically, while
//! clean shards are adopted byte-for-byte. A torn plan file is a typed
//! error, never a panic and never a silently-wrong model.

use affinity_core::prelude::*;
use affinity_data::SeriesId;
use affinity_shard::{shard_file, ShardedStreamingEngine, PLAN_FILE};
use affinity_stream::StreamingConfig;
use std::fs;
use std::path::{Path, PathBuf};

const N: usize = 10;
const WIDTH: usize = 16;

fn tick(t: u64, stepped: &[SeriesId], step: f64) -> Vec<f64> {
    (0..N)
        .map(|v| {
            let phase = (t as usize + 3 * v) % WIDTH;
            let base = (phase * phase % 23) as f64 + v as f64;
            if stepped.contains(&v) {
                base + step
            } else {
                base
            }
        })
        .collect()
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("affinity-shard-faults-{name}"));
    fs::remove_dir_all(&dir).ok();
    dir
}

/// Run an engine to a persisted steady state: warm-up, a drift-free
/// refresh, then a drifted delta refresh, checkpointing throughout.
fn persisted_engine(dir: &Path, shards: usize) -> ShardedStreamingEngine {
    let mut engine = ShardedStreamingEngine::new(N, shards, StreamingConfig::new(WIDTH));
    let mut t = 0u64;
    while engine.model().is_none() {
        engine.push(&tick(t, &[], 0.0)).unwrap();
        t += 1;
    }
    engine.persist_to(dir).unwrap();
    for _ in 0..WIDTH {
        engine.push(&tick(t, &[2, 7], 30.0)).unwrap();
        t += 1;
    }
    assert!(engine.refreshes() >= 2, "fixture never refreshed post-arm");
    engine
}

fn answers(engine: &ShardedStreamingEngine) -> Vec<u64> {
    let model = engine.model().expect("model");
    let mut bits = Vec::new();
    for measure in [
        PairwiseMeasure::Correlation,
        PairwiseMeasure::Covariance,
        PairwiseMeasure::DotProduct,
    ] {
        bits.extend(
            model
                .pairwise_all(measure)
                .unwrap()
                .iter()
                .map(|x| x.to_bits()),
        );
    }
    let ids: Vec<SeriesId> = (0..N).collect();
    for measure in LocationMeasure::ALL {
        bits.extend(
            model
                .location(measure, &ids)
                .unwrap()
                .iter()
                .map(|x| x.to_bits()),
        );
    }
    bits
}

fn flip_byte(path: &Path, offset_from_mid: usize) {
    let mut bytes = fs::read(path).unwrap();
    let i = bytes.len() / 2 + offset_from_mid;
    bytes[i] ^= 0x5a;
    fs::write(path, bytes).unwrap();
}

#[test]
fn clean_resume_is_bit_identical_and_heals_nothing() {
    let dir = fresh_dir("clean");
    let engine = persisted_engine(&dir, 3);
    let expected = answers(&engine);
    let versions = engine.model().unwrap().versions();

    let (resumed, recovery) =
        ShardedStreamingEngine::resume(StreamingConfig::new(WIDTH), &dir).unwrap();
    assert!(recovery.healed.is_empty(), "clean dir healed: {recovery:?}");
    assert_eq!(answers(&resumed), expected);
    assert_eq!(resumed.model().unwrap().versions(), versions);
    assert_eq!(resumed.refreshes(), engine.refreshes());
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_shard_snapshot_heals_only_that_shard() {
    let dir = fresh_dir("torn-one");
    let engine = persisted_engine(&dir, 3);
    let expected = answers(&engine);

    // Tear shard 1's snapshot mid-file; shards 0 and 2 stay clean.
    flip_byte(&shard_file(&dir, 1), 3);

    let (resumed, recovery) =
        ShardedStreamingEngine::resume(StreamingConfig::new(WIDTH), &dir).unwrap();
    assert_eq!(recovery.healed_shards(), vec![1], "{recovery:?}");
    // The heal is a deterministic rebuild at the persist point, so the
    // recovered model answers exactly like the never-crashed engine.
    assert_eq!(answers(&resumed), expected);
    // Healing is deterministic: a second resume of the same torn
    // directory lands on the same bits.
    let (again, recovery2) =
        ShardedStreamingEngine::resume(StreamingConfig::new(WIDTH), &dir).unwrap();
    assert_eq!(recovery2.healed_shards(), vec![1]);
    assert_eq!(answers(&again), expected);
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncated_shard_snapshot_heals_only_that_shard() {
    let dir = fresh_dir("truncated");
    let engine = persisted_engine(&dir, 3);
    let expected = answers(&engine);

    let path = shard_file(&dir, 2);
    let bytes = fs::read(&path).unwrap();
    fs::write(&path, &bytes[..bytes.len() / 3]).unwrap();

    let (resumed, recovery) =
        ShardedStreamingEngine::resume(StreamingConfig::new(WIDTH), &dir).unwrap();
    assert_eq!(recovery.healed_shards(), vec![2], "{recovery:?}");
    assert_eq!(answers(&resumed), expected);
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_shard_snapshot_heals_only_that_shard() {
    let dir = fresh_dir("missing");
    let engine = persisted_engine(&dir, 3);
    let expected = answers(&engine);

    fs::remove_file(shard_file(&dir, 0)).unwrap();

    let (resumed, recovery) =
        ShardedStreamingEngine::resume(StreamingConfig::new(WIDTH), &dir).unwrap();
    assert_eq!(recovery.healed_shards(), vec![0], "{recovery:?}");
    assert_eq!(answers(&resumed), expected);
    fs::remove_dir_all(&dir).ok();
}

/// A crash between a shard write and the plan write leaves that shard's
/// file at an older version than the (previous) plan expects — or,
/// symmetrically here, rolling one shard file back after a later
/// checkpoint models the same admission question. The stale file
/// decodes cleanly but must be rejected on version and healed.
#[test]
fn stale_shard_version_is_rejected_and_healed() {
    let dir = fresh_dir("stale");
    let mut engine = ShardedStreamingEngine::new(N, 3, StreamingConfig::new(WIDTH));
    let mut t = 0u64;
    while engine.model().is_none() {
        engine.push(&tick(t, &[], 0.0)).unwrap();
        t += 1;
    }
    engine.persist_to(&dir).unwrap();
    // Stash every shard file from generation 1.
    let stale: Vec<(usize, Vec<u8>)> = (0..3)
        .map(|i| (i, fs::read(shard_file(&dir, i)).unwrap()))
        .collect();
    // Advance with drift so shard versions move, then checkpoint again.
    for _ in 0..WIDTH {
        engine.push(&tick(t, &[1, 5], 40.0)).unwrap();
        t += 1;
    }
    let expected = answers(&engine);
    let versions = engine.model().unwrap().versions();

    // Roll back one shard whose version advanced past generation 1.
    let rolled = versions
        .iter()
        .position(|&v| v > 1)
        .expect("drift advanced no shard version");
    fs::write(shard_file(&dir, rolled), &stale[rolled].1).unwrap();

    let (resumed, recovery) =
        ShardedStreamingEngine::resume(StreamingConfig::new(WIDTH), &dir).unwrap();
    assert_eq!(recovery.healed_shards(), vec![rolled], "{recovery:?}");
    assert_eq!(answers(&resumed), expected);
    assert_eq!(resumed.model().unwrap().versions(), versions);
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn every_shard_torn_still_recovers_exactly() {
    let dir = fresh_dir("all-torn");
    let engine = persisted_engine(&dir, 3);
    let expected = answers(&engine);

    for i in 0..3 {
        flip_byte(&shard_file(&dir, i), 7 + i);
    }
    let (resumed, recovery) =
        ShardedStreamingEngine::resume(StreamingConfig::new(WIDTH), &dir).unwrap();
    assert_eq!(recovery.healed_shards(), vec![0, 1, 2], "{recovery:?}");
    assert_eq!(answers(&resumed), expected);
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_plan_file_is_a_typed_error() {
    let dir = fresh_dir("torn-plan");
    let _engine = persisted_engine(&dir, 2);

    let plan_path = dir.join(PLAN_FILE);
    flip_byte(&plan_path, 0);
    let err = ShardedStreamingEngine::resume(StreamingConfig::new(WIDTH), &dir)
        .map(|_| ())
        .expect_err("torn plan file must not resume");
    let msg = err.to_string();
    assert!(!msg.is_empty());

    // Truncation too: the commit point is all-or-nothing.
    let bytes = fs::read(&plan_path).unwrap();
    fs::write(&plan_path, &bytes[..bytes.len() / 2]).unwrap();
    assert!(ShardedStreamingEngine::resume(StreamingConfig::new(WIDTH), &dir).is_err());
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn mismatched_config_is_a_typed_error() {
    let dir = fresh_dir("bad-config");
    let _engine = persisted_engine(&dir, 2);

    // Wrong window width.
    let err = ShardedStreamingEngine::resume(StreamingConfig::new(WIDTH * 2), &dir)
        .map(|_| ())
        .expect_err("window mismatch must not resume");
    assert!(err.to_string().contains("window"), "{err}");

    // Wrong indexed-measure set.
    let mut cfg = StreamingConfig::new(WIDTH);
    cfg.indexed = vec![Measure::Pairwise(PairwiseMeasure::Correlation)];
    let err = ShardedStreamingEngine::resume(cfg, &dir)
        .map(|_| ())
        .expect_err("measure mismatch must not resume");
    assert!(err.to_string().contains("measure"), "{err}");
    fs::remove_dir_all(&dir).ok();
}

/// Resume must keep *streaming* equivalence, not just point-in-time
/// equivalence: after recovery (with one shard healed), pushing the
/// same subsequent ticks into the resumed engine and the never-crashed
/// engine produces bit-identical models.
#[test]
fn healed_engine_streams_identically_to_uncrashed() {
    let dir = fresh_dir("stream-on");
    let mut engine = persisted_engine(&dir, 3);
    let start = 10_000u64; // any phase: the pattern is periodic

    flip_byte(&shard_file(&dir, 1), 5);
    let (mut resumed, recovery) =
        ShardedStreamingEngine::resume(StreamingConfig::new(WIDTH), &dir).unwrap();
    assert_eq!(recovery.healed_shards(), vec![1]);

    for t in start..start + 2 * WIDTH as u64 {
        let sample = tick(t, &[4], 20.0);
        let a = engine.push(&sample).unwrap();
        let b = resumed.push(&sample).unwrap();
        assert_eq!(a, b, "refresh cadence diverged at tick {t}");
    }
    assert_eq!(answers(&engine), answers(&resumed));
    assert_eq!(
        engine.model().unwrap().versions(),
        resumed.model().unwrap().versions()
    );
    fs::remove_dir_all(&dir).ok();
}

//! Cross-shard merge edge cases and refresh structural sharing.
//!
//! The equivalence oracle (`tests/shard_equivalence.rs` at the
//! workspace root) sweeps randomized plans; this suite pins the
//! degenerate shapes by hand — empty shards, a single-series shard,
//! everything in one shard of many — and proves the streaming engine's
//! per-shard refresh contract: a delta refresh replaces exactly the
//! shards holding drifted work (`Arc` identity for the rest), and a
//! K-shard streaming engine answers bit-identically to a 1-shard one
//! over the same tick stream.

use affinity_core::prelude::*;
use affinity_data::generator::{sensor_dataset, SensorConfig};
use affinity_data::{DataMatrix, SeriesId};
use affinity_par::ThreadPool;
use affinity_scape::{ScapeIndex, ThresholdOp};
use affinity_shard::{ShardPlan, ShardedModel, ShardedStreamingEngine};
use affinity_stream::StreamingConfig;
use std::sync::Arc;

fn assert_bits_eq(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}[{i}]: {x} vs {y}");
    }
}

/// Full query-surface comparison of a sharded model against the global
/// engine + index it partitions.
fn assert_matches_global(tag: &str, engine: &MecEngine, index: &ScapeIndex, model: &ShardedModel) {
    let never = || false;
    for measure in [PairwiseMeasure::Correlation, PairwiseMeasure::Covariance] {
        for tau in [-0.5, 0.0, 0.5] {
            assert_eq!(
                index
                    .threshold_pairs(measure, ThresholdOp::Greater, tau)
                    .unwrap(),
                model
                    .threshold_pairs_with(measure, ThresholdOp::Greater, tau, &never)
                    .unwrap(),
                "{tag}: {} > {tau}",
                measure.name()
            );
        }
        assert_bits_eq(
            &engine.pairwise_all(measure).unwrap(),
            &model.pairwise_all(measure).unwrap(),
            &format!("{tag}: {}", measure.name()),
        );
    }
    let ids: Vec<SeriesId> = (0..model.series_count()).collect();
    for measure in [LocationMeasure::Mean, LocationMeasure::Median] {
        assert_bits_eq(
            &engine.location(measure, &ids).unwrap(),
            &model.location(measure, &ids).unwrap(),
            &format!("{tag}: {}", measure.name()),
        );
        assert_eq!(
            index
                .threshold_series(measure, ThresholdOp::Greater, 0.0)
                .unwrap(),
            model
                .threshold_series(measure, ThresholdOp::Greater, 0.0)
                .unwrap(),
            "{tag}: {}",
            measure.name()
        );
    }
}

fn fixture() -> (DataMatrix, AffineSet) {
    let data = sensor_dataset(&SensorConfig::reduced(14, 48));
    let affine = Symex::new(SymexParams::default()).run(&data).unwrap();
    (data, affine)
}

fn partition(data: &DataMatrix, affine: &AffineSet, plan: ShardPlan) -> ShardedModel {
    ShardedModel::from_global(
        data,
        affine,
        plan,
        &Measure::ALL,
        Arc::new(ThreadPool::new(2)),
    )
    .unwrap()
}

#[test]
fn empty_shards_merge_exactly() {
    let (data, affine) = fixture();
    let engine = MecEngine::new(&data, &affine);
    let index = ScapeIndex::build(&data, &affine, &Measure::ALL).unwrap();
    // Everything in shard 0 of 3: shards 1 and 2 own nothing, hold no
    // pivots, and must contribute nothing (not garbage) to every merge.
    let n = data.series_count();
    let plan = ShardPlan::from_assignments(vec![0; n], 3).unwrap();
    let model = partition(&data, &affine, plan);
    assert_eq!(model.shards().len(), 3);
    assert_eq!(model.shards()[1].affine().len(), 0, "empty shard has rels");
    assert_eq!(model.shards()[2].owned().len(), 0);
    assert_matches_global("all-in-one-of-3", &engine, &index, &model);
}

#[test]
fn single_series_shard_merges_exactly() {
    let (data, affine) = fixture();
    let engine = MecEngine::new(&data, &affine);
    let index = ScapeIndex::build(&data, &affine, &Measure::ALL).unwrap();
    let n = data.series_count();
    // Series 0 alone in shard 1; the rest in shard 0.
    let mut assignments = vec![0u32; n];
    assignments[0] = 1;
    let plan = ShardPlan::from_assignments(assignments, 2).unwrap();
    let model = partition(&data, &affine, plan);
    assert_eq!(model.shards()[1].owned(), &[0]);
    assert_matches_global("single-series-shard", &engine, &index, &model);
}

#[test]
fn one_shard_per_series_merges_exactly() {
    let (data, affine) = fixture();
    let engine = MecEngine::new(&data, &affine);
    let index = ScapeIndex::build(&data, &affine, &Measure::ALL).unwrap();
    let n = data.series_count();
    // The maximally fragmented plan: every series its own shard.
    let assignments: Vec<u32> = (0..n as u32).collect();
    let plan = ShardPlan::from_assignments(assignments, n).unwrap();
    let model = partition(&data, &affine, plan);
    assert_eq!(model.shards().len(), n);
    assert_matches_global("one-per-series", &engine, &index, &model);
}

/// Deterministic tick: a fixed period-`width` pattern per series, so a
/// full window always holds one exact period and in-window statistics
/// are tick-invariant (zero drift) until an offset step is injected.
fn tick(n: usize, width: usize, t: u64, stepped: &[SeriesId], step: f64) -> Vec<f64> {
    (0..n)
        .map(|v| {
            let phase = (t as usize + 3 * v) % width;
            let base = (phase * phase % 23) as f64 + v as f64;
            if stepped.contains(&v) {
                base + step
            } else {
                base
            }
        })
        .collect()
}

#[test]
fn delta_refresh_touches_only_owning_shards() {
    let n = 12;
    let width = 16;
    let cfg = StreamingConfig::new(width);
    let mut engine = ShardedStreamingEngine::new(n, 3, cfg);
    let mut t = 0u64;
    // Warm-up + first full build.
    while engine.model().is_none() {
        engine.push(&tick(n, width, t, &[], 0.0)).unwrap();
        t += 1;
    }
    assert_eq!(engine.full_rebuilds(), 1);
    let plan = engine.plan().unwrap().clone();

    // One steady cadence: zero drift, so the due refresh must be a
    // no-op delta — zero shards touched, every `Arc` preserved.
    let before: Vec<_> = engine.model().unwrap().shards().to_vec();
    let mut refreshed = false;
    for _ in 0..width {
        refreshed |= engine.push(&tick(n, width, t, &[], 0.0)).unwrap();
        t += 1;
    }
    assert!(refreshed, "a refresh must have come due");
    assert_eq!(engine.full_rebuilds(), 1, "steady state must not rebuild");
    let after = engine.model().unwrap().shards();
    for (i, (a, b)) in before.iter().zip(after).enumerate() {
        assert!(Arc::ptr_eq(a, b), "shard {i} replaced with zero drift");
    }

    // Step two series owned by one shard: only shards holding their
    // refit work may be replaced; provably-untouched shards keep
    // identity and version.
    let victim_shard = plan.shard_of(0).unwrap();
    let stepped: Vec<SeriesId> = plan.members(victim_shard).into_iter().take(2).collect();
    assert!(!stepped.is_empty());
    let before: Vec<_> = engine.model().unwrap().shards().to_vec();
    let versions_before = engine.model().unwrap().versions();
    let mut kind = None;
    for _ in 0..width {
        let was = engine.refreshes();
        engine.push(&tick(n, width, t, &stepped, 40.0)).unwrap();
        t += 1;
        if engine.refreshes() > was {
            kind = Some(engine.full_rebuilds());
            break;
        }
    }
    assert_eq!(kind, Some(1), "drifted refresh must stay a delta");
    let model = engine.model().unwrap();
    // The drifted series' pair relationships may be pivoted in other
    // shards, so compute the exact touched set the engine must match.
    let drifted: Vec<bool> = (0..n).map(|v| stepped.contains(&v)).collect();
    for (i, shard) in model.shards().iter().enumerate() {
        let has_work = shard
            .affine()
            .relationships()
            .iter()
            .any(|r| drifted[r.pair.u] || drifted[r.pair.v])
            || shard.owned().iter().any(|&v| drifted[v as usize]);
        if has_work {
            assert!(
                !Arc::ptr_eq(&before[i], shard),
                "shard {i} held drifted work but kept its Arc"
            );
            assert_eq!(shard.version(), versions_before[i] + 1, "shard {i}");
        } else {
            assert!(
                Arc::ptr_eq(&before[i], shard),
                "shard {i} had no drifted work but was replaced"
            );
            assert_eq!(shard.version(), versions_before[i], "shard {i}");
        }
    }
}

#[test]
fn k_shard_stream_matches_single_shard_stream_bit_for_bit() {
    let n = 10;
    let width = 16;
    // Same ticks through a 1-shard and a 4-shard engine: every model
    // artifact the query layer sees must be bit-identical at every
    // refresh, full or delta.
    let mut one = ShardedStreamingEngine::new(n, 1, StreamingConfig::new(width));
    let mut four = ShardedStreamingEngine::new(n, 4, StreamingConfig::new(width));
    let mut stepped: Vec<SeriesId> = Vec::new();
    for t in 0..(6 * width as u64) {
        if t == 3 * width as u64 {
            stepped = vec![1, 7]; // inject drift partway through
        }
        let sample = tick(n, width, t, &stepped, 25.0);
        let a = one.push(&sample).unwrap();
        let b = four.push(&sample).unwrap();
        assert_eq!(a, b, "refresh cadence diverged at tick {t}");
        if !a || one.model().is_none() {
            continue;
        }
        let ma = one.model().unwrap();
        let mb = four.model().unwrap();
        for measure in [PairwiseMeasure::Correlation, PairwiseMeasure::DotProduct] {
            assert_bits_eq(
                &ma.pairwise_all(measure).unwrap(),
                &mb.pairwise_all(measure).unwrap(),
                &format!("tick {t}: {}", measure.name()),
            );
        }
        let ids: Vec<SeriesId> = (0..n).collect();
        assert_bits_eq(
            &ma.location(LocationMeasure::Mean, &ids).unwrap(),
            &mb.location(LocationMeasure::Mean, &ids).unwrap(),
            &format!("tick {t}: mean"),
        );
        let never = || false;
        assert_eq!(
            ma.threshold_pairs_with(
                PairwiseMeasure::Correlation,
                ThresholdOp::Greater,
                0.5,
                &never
            )
            .unwrap(),
            mb.threshold_pairs_with(
                PairwiseMeasure::Correlation,
                ThresholdOp::Greater,
                0.5,
                &never
            )
            .unwrap(),
            "tick {t}: MET"
        );
    }
    assert!(one.refreshes() >= 2, "stream too short to exercise refresh");
    assert_eq!(one.refreshes(), four.refreshes());
    assert_eq!(one.delta_refreshes(), four.delta_refreshes());
}

//! The sharded streaming engine: sliding-window ingestion where only
//! drifted shards rebuild.
//!
//! The ingestion contract mirrors `affinity_stream::StreamingEngine`
//! (same [`StreamingConfig`], same warm-up / due-refresh cadence, same
//! [`DeltaPolicy`] semantics), but the model is a [`ShardedModel`] and
//! a delta refresh replaces **only the shards holding drifted work**:
//! untouched shards keep their `Arc` identity, so a downstream epoch
//! cell can republish per shard and one shard's refresh never
//! invalidates the others' pinned snapshots.
//!
//! The shard plan is chosen once, at the first full build (cut along
//! that build's cluster boundaries), and held fixed for the engine's
//! lifetime — including across later full rebuilds and across restarts
//! (it is persisted verbatim). A fixed plan is what makes per-shard
//! versioning, persistence admission, and "only drifted shards
//! rebuild" well-defined.
//!
//! Drift is detected by recomputing each series' in-window mean and
//! variance directly from the window at refresh time (no incremental
//! rolling state). That costs `O(n·m)` per due refresh — noise against
//! the refit work — and buys restart determinism: a resumed engine
//! sees exactly the statistics the live one would have, because there
//! is no accumulated floating-point state to reconstruct.
//!
//! Persistence is snapshot-only (no journal): every persisted refresh
//! rewrites the changed shard files and then the plan file (the commit
//! point). Crash loss is bounded by the ticks since the last persisted
//! refresh and recovery heals torn shards individually — see
//! [`ShardedStreamingEngine::resume`].

use crate::build::{shard_pivot_stats, ShardView};
use crate::error::ShardError;
use crate::model::{ShardModel, ShardedModel, SharedCore};
use crate::persist::{
    load_plan_file, load_shard_file, plan_file, shard_file, write_plan_file, write_shard_file,
    PlanMeta, ShardLoad,
};
use crate::plan::ShardPlan;
use affinity_core::affine::{fit_series, solve_relationship_pinv, PivotPair, SeriesRelationship};
use affinity_core::hash::FxHashMap;
use affinity_core::symex::{pivot_pseudo_inverse, AffineSet, Symex};
use affinity_data::{DataMatrix, SeriesId};
use affinity_linalg::{vector, Matrix};
use affinity_par::ThreadPool;
use affinity_scape::{measure_tag, PairDelta, ScapeDelta, SeriesDelta};
use affinity_storage::PersistError;
use affinity_stream::{DeltaPolicy, SlidingWindow, StreamingConfig};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// One shard's slice of the heal substrate: its partitioned affine set
/// plus the global pivot ordinals it emits from. `None` once taken.
type HealPart = Option<(AffineSet, Vec<u32>)>;

/// What a policy-driven sharded refresh actually did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardRefreshKind {
    /// Full global rebuild (AFCLST + SYMEX) re-partitioned into every
    /// shard; all shard versions advance.
    Full,
    /// Delta maintenance: re-fits routed to their owning shards; only
    /// `touched_shards` were replaced, the rest kept their `Arc`s.
    Delta {
        /// Series whose statistics left the tolerance band.
        drifted_series: usize,
        /// Pairwise relationships re-fitted across all touched shards.
        refit_pairs: usize,
        /// Shards rebuilt (others are structurally shared with the
        /// previous model).
        touched_shards: usize,
    },
}

/// What recovery found on disk and which shards it had to heal. Loss
/// is bounded and reported, never silent: a healed shard's fits are a
/// deterministic delta refresh at the persist point (see
/// [`ShardedStreamingEngine::resume`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardRecovery {
    /// Generation counter of the plan file that anchored recovery.
    pub generation: u64,
    /// `(shard, why its file was rejected)` for every shard that was
    /// healed from the plan file's reference + window matrices.
    pub healed: Vec<(usize, String)>,
}

impl ShardRecovery {
    /// Ids of the healed shards, ascending.
    pub fn healed_shards(&self) -> Vec<usize> {
        self.healed.iter().map(|&(i, _)| i).collect()
    }
}

/// Streaming ingestion over a sharded model with per-shard refresh.
pub struct ShardedStreamingEngine {
    cfg: StreamingConfig,
    shards_k: usize,
    /// Fixed after the first full build; persisted verbatim.
    plan: Option<ShardPlan>,
    window: SlidingWindow,
    model: Option<ShardedModel>,
    /// Reference snapshot of the last full rebuild: the drift anchor
    /// and (with the window) the heal substrate on resume.
    ref_data: Option<DataMatrix>,
    ref_means: Vec<f64>,
    ref_vars: Vec<f64>,
    /// One worker pool for the engine's lifetime, shared by every
    /// rebuild and every shard's engine.
    pool: Arc<ThreadPool>,
    ticks_at_last_refresh: u64,
    refreshes: u64,
    full_rebuilds: u64,
    delta_refreshes: u64,
    deltas_since_full: u64,
    /// Snapshot generation counter while persistence is armed.
    generation: u64,
    persist_dir: Option<PathBuf>,
}

impl std::fmt::Debug for ShardedStreamingEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedStreamingEngine")
            .field("shards", &self.shards_k)
            .field("series", &self.window.series_count())
            .field("ticks", &self.window.ticks())
            .field("refreshes", &self.refreshes)
            .finish()
    }
}

impl ShardedStreamingEngine {
    /// Create an engine for `series` series split into `shards` shards
    /// (the plan is cut along the first full build's cluster
    /// boundaries).
    ///
    /// # Panics
    /// Panics if `series`, `shards`, or the configured window is zero.
    pub fn new(series: usize, shards: usize, cfg: StreamingConfig) -> Self {
        assert!(shards >= 1, "a sharded engine needs at least one shard");
        let window = SlidingWindow::new(series, cfg.window);
        let pool = Arc::new(ThreadPool::new(cfg.symex.threads));
        ShardedStreamingEngine {
            cfg,
            shards_k: shards,
            plan: None,
            window,
            model: None,
            ref_data: None,
            ref_means: Vec::new(),
            ref_vars: Vec::new(),
            pool,
            ticks_at_last_refresh: 0,
            refreshes: 0,
            full_rebuilds: 0,
            delta_refreshes: 0,
            deltas_since_full: 0,
            generation: 0,
            persist_dir: None,
        }
    }

    /// Like [`ShardedStreamingEngine::new`] but with an explicit plan
    /// (e.g. an adversarial cut in the equivalence oracle, or a plan
    /// carried over from another deployment).
    ///
    /// # Panics
    /// Panics if the configured window is zero.
    pub fn with_plan(plan: ShardPlan, cfg: StreamingConfig) -> Self {
        let mut engine = Self::new(plan.series_count(), plan.shards(), cfg);
        engine.plan = Some(plan);
        engine
    }

    /// Ingest one tick (one sample per series). Returns `true` if the
    /// model was refreshed as a result.
    ///
    /// # Errors
    /// Propagates clustering/relationship/index/persistence errors from
    /// a refresh attempt.
    ///
    /// # Panics
    /// Panics on tick arity mismatch.
    pub fn push(&mut self, tick: &[f64]) -> Result<bool, ShardError> {
        self.window.push(tick);
        if !self.window.is_warm() {
            return Ok(false);
        }
        let due = match self.model {
            None => true,
            // Saturating: a resumed engine's last-refresh tick can sit
            // ahead of the restored window (persisted refreshes outlive
            // unpersisted ticks).
            Some(_) => {
                self.window
                    .ticks()
                    .saturating_sub(self.ticks_at_last_refresh)
                    >= self.cfg.refresh_every
            }
        };
        if due {
            self.refresh_auto()?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Refresh per the configured policy: shard-routed delta
    /// maintenance when drift is within tolerance, full rebuild
    /// otherwise (or when no [`DeltaPolicy`] / no model exists yet).
    ///
    /// # Errors
    /// Propagates clustering/relationship/index/persistence errors.
    ///
    /// # Panics
    /// Panics if the window is not warm yet.
    pub fn refresh_auto(&mut self) -> Result<ShardRefreshKind, ShardError> {
        if let (Some(_), Some(policy)) = (&self.model, &self.cfg.delta) {
            let policy = policy.clone();
            if self.deltas_since_full < policy.full_every {
                let drifted = self.drifted_series(&policy);
                let n = self.window.series_count();
                if (drifted.len() as f64) <= policy.max_drift_fraction * n as f64 {
                    match self.refresh_delta(&drifted) {
                        Ok((refit_pairs, touched_shards)) => {
                            return Ok(ShardRefreshKind::Delta {
                                drifted_series: drifted.len(),
                                refit_pairs,
                                touched_shards,
                            });
                        }
                        // A failed patch can leave a shard's affine set
                        // and index desynced; a full rebuild re-derives
                        // every shard, so recover instead of wedging.
                        Err(ShardError::Scape(_)) => {}
                        Err(e) => return Err(e),
                    }
                }
            }
        }
        self.refresh()?;
        Ok(ShardRefreshKind::Full)
    }

    /// Force a full rebuild: AFCLST + SYMEX over the current window,
    /// re-partitioned along the fixed plan (chosen now if this is the
    /// first build), every shard replaced with its version advanced.
    ///
    /// # Errors
    /// Propagates clustering/relationship/index/persistence errors.
    ///
    /// # Panics
    /// Panics if the window is not warm yet.
    pub fn refresh(&mut self) -> Result<(), ShardError> {
        assert!(self.window.is_warm(), "cannot refresh before warm-up");
        let data = self.window.snapshot();
        let mut params = self.cfg.symex.clone();
        // Clamp k to the series count (small deployments).
        params.afclst.k = params
            .afclst
            .k
            .min(data.series_count().saturating_sub(1))
            .max(1);
        let affine = Symex::with_pool(params, Arc::clone(&self.pool)).run(&data)?;
        let plan = match &self.plan {
            Some(p) => p.clone(),
            None => {
                let p = ShardPlan::along_clusters(affine.clusters(), self.shards_k);
                self.plan = Some(p.clone());
                p
            }
        };
        let mut model = ShardedModel::from_global(
            &data,
            &affine,
            plan,
            &self.cfg.indexed,
            Arc::clone(&self.pool),
        )?;
        // Version continuity across rebuilds: a full rebuild touches
        // every shard, so every version advances past its predecessor.
        if let Some(old) = &self.model {
            for (fresh, prev) in model.shards.iter_mut().zip(&old.shards) {
                Arc::get_mut(fresh)
                    .expect("freshly built shard is unshared")
                    .version = prev.version + 1;
            }
        }
        let n = data.series_count();
        self.ref_means = (0..n).map(|v| vector::mean(data.series(v))).collect();
        self.ref_vars = (0..n).map(|v| vector::variance(data.series(v))).collect();
        self.ref_data = Some(data);
        self.model = Some(model);
        self.ticks_at_last_refresh = self.window.ticks();
        self.refreshes += 1;
        self.full_rebuilds += 1;
        self.deltas_since_full = 0;
        if self.persist_dir.is_some() {
            let all: Vec<usize> = (0..self.shards_k).collect();
            self.write_checkpoint(&all)?;
        }
        Ok(())
    }

    /// Series whose in-window statistics (recomputed fresh — see the
    /// module docs) left the policy's tolerance band relative to the
    /// reference snapshot.
    fn drifted_series(&self, policy: &DeltaPolicy) -> Vec<SeriesId> {
        (0..self.window.series_count())
            .filter(|&v| {
                let mean0 = self.ref_means[v];
                let var0 = self.ref_vars[v];
                let sd0 = var0.sqrt().max(1e-12);
                let s = self.window.series(v);
                let mean_shift = (vector::mean(s) - mean0).abs() / sd0;
                let var_shift = (vector::variance(s) - var0).abs() / var0.max(1e-12);
                mean_shift > policy.drift_tolerance || var_shift > policy.drift_tolerance
            })
            .collect()
    }

    /// Delta refresh: re-fit the relationships of `drifted` series
    /// against their retained pivots over the **current** window —
    /// exactly the arithmetic of the unsharded delta path — with every
    /// re-fit routed to the shard owning it. Returns `(re-fitted
    /// pairs, touched shards)`; untouched shards keep their `Arc`s.
    ///
    /// # Errors
    /// Index patch or persistence errors; on a patch error call
    /// [`ShardedStreamingEngine::refresh`] to restore consistency
    /// ([`ShardedStreamingEngine::refresh_auto`] does so
    /// automatically).
    ///
    /// # Panics
    /// Panics if no model exists yet.
    pub fn refresh_delta(&mut self, drifted: &[SeriesId]) -> Result<(usize, usize), ShardError> {
        let model = self.model.as_mut().expect("delta refresh requires a model");
        let current = self.window.snapshot();
        let mut is_drifted = vec![false; current.series_count()];
        for &v in drifted {
            is_drifted[v] = true;
        }
        // One pseudo-inverse per touched pivot; pivots are disjoint
        // across shards, so one cache serves all of them.
        let mut pinv_cache: FxHashMap<PivotPair, Matrix> = FxHashMap::default();
        let mut refit_pairs = 0usize;
        let mut touched = Vec::new();
        let mut replacements: Vec<(usize, Arc<ShardModel>)> = Vec::new();
        for (i, shard) in model.shards.iter().enumerate() {
            let owned_drifted: Vec<SeriesId> = shard
                .owned
                .iter()
                .map(|&v| v as usize)
                .filter(|&v| is_drifted[v])
                .collect();
            let has_pair_work = shard
                .affine
                .relationships()
                .iter()
                .any(|rel| is_drifted[rel.pair.u] || is_drifted[rel.pair.v]);
            if owned_drifted.is_empty() && !has_pair_work {
                continue;
            }
            let mut affine = (*shard.affine).clone();
            let mut index = shard.index.clone();
            let mut delta = ScapeDelta::default();
            let mut new_series = Vec::with_capacity(owned_drifted.len());
            // Per-series relationships: only this shard's owned series
            // (its location trees hold exactly those; non-owner copies
            // of the fit table are stale by design — reads route by
            // owner).
            for &v in &owned_drifted {
                let old = *affine.series_relationship(v);
                let center = affine.clusters().center(old.cluster);
                let (c, d) = fit_series(center, current.series(v));
                delta.series.push(SeriesDelta {
                    series: v,
                    cluster: old.cluster,
                    old: (old.c, old.d),
                    new: (c, d),
                });
                new_series.push(SeriesRelationship {
                    series: v,
                    cluster: old.cluster,
                    c,
                    d,
                });
            }
            // Pairwise relationships touching a drifted series, re-fit
            // against their retained pivot over the current window.
            let mut new_rels = Vec::new();
            for rel in affine.relationships() {
                if !(is_drifted[rel.pair.u] || is_drifted[rel.pair.v]) {
                    continue;
                }
                let pivot = rel.pivot;
                let pinv = pinv_cache.entry(pivot).or_insert_with(|| {
                    pivot_pseudo_inverse(
                        current.series(pivot.common),
                        affine.clusters().center(pivot.cluster),
                    )
                });
                let (a, b) = solve_relationship_pinv(
                    pinv,
                    current.series(rel.common),
                    current.series(rel.pair.other(rel.common)),
                );
                delta.pairs.push(PairDelta {
                    pair: rel.pair,
                    pivot,
                    old_beta: rel.beta(),
                    new_beta: [a[0][1], a[1][1], b[1]],
                });
                new_rels.push(affinity_core::affine::AffineRelationship {
                    pair: rel.pair,
                    pivot,
                    common: rel.common,
                    a,
                    b,
                });
            }
            refit_pairs += new_rels.len();
            for rel in new_rels {
                affine
                    .replace_relationship(rel)
                    .expect("refit keeps pair and pivot");
            }
            for sr in new_series {
                affine
                    .replace_series_relationship(sr)
                    .expect("refit keeps series and cluster");
            }
            if !delta.is_empty() {
                index.apply_delta(&delta)?;
            }
            // The engine is rebuilt from the retained pivot statistics
            // (the reference anchor is kept by a delta refresh, so the
            // statistics are unchanged) over the patched affine set.
            let fresh = ShardModel::assemble(
                affine,
                index,
                shard.stats.clone(),
                shard.ordinals.clone(),
                shard.owned.clone(),
                &model.shared.variances,
                &model.shared.self_dots,
                Arc::clone(&model.shared.pool),
                shard.version + 1,
            )?;
            touched.push(i);
            replacements.push((i, Arc::new(fresh)));
        }
        for (i, fresh) in replacements {
            model.shards[i] = fresh;
        }
        self.ticks_at_last_refresh = self.window.ticks();
        self.refreshes += 1;
        self.delta_refreshes += 1;
        self.deltas_since_full += 1;
        if self.persist_dir.is_some() {
            self.write_checkpoint(&touched)?;
        }
        Ok((refit_pairs, touched.len()))
    }

    /// The current sharded model, if the warm-up has completed.
    pub fn model(&self) -> Option<&ShardedModel> {
        self.model.as_ref()
    }

    /// The live window.
    pub fn window(&self) -> &SlidingWindow {
        &self.window
    }

    /// The fixed plan, once the first full build has chosen it.
    pub fn plan(&self) -> Option<&ShardPlan> {
        self.plan.as_ref()
    }

    /// Number of model refreshes so far (full + delta).
    pub fn refreshes(&self) -> u64 {
        self.refreshes
    }

    /// Number of full rebuilds so far.
    pub fn full_rebuilds(&self) -> u64 {
        self.full_rebuilds
    }

    /// Number of delta refreshes so far.
    pub fn delta_refreshes(&self) -> u64 {
        self.delta_refreshes
    }

    // --- Persistence -----------------------------------------------

    /// Arm snapshot persistence: write the current model + window into
    /// `dir` (created if needed). From here on every refresh rewrites
    /// its changed shard files and then the plan file (the commit
    /// point). There is no journal: crash loss is bounded by the ticks
    /// since the last persisted refresh, and that bound is this
    /// design's documented trade — per-shard files buy per-shard heal,
    /// a journal would buy tick-level replay.
    ///
    /// # Errors
    /// [`ShardError::Persist`] if no model exists yet or a commit
    /// fails.
    pub fn persist_to(&mut self, dir: impl AsRef<Path>) -> Result<(), ShardError> {
        if self.model.is_none() {
            return Err(ShardError::Persist(PersistError::Corrupt(
                "cannot persist before the first model build".into(),
            )));
        }
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir).map_err(PersistError::Io)?;
        self.persist_dir = Some(dir);
        let all: Vec<usize> = (0..self.shards_k).collect();
        self.write_checkpoint(&all)
    }

    /// Write `shards_to_write`'s files, then the plan file. Bumps the
    /// generation counter; both writes are individually atomic and the
    /// plan file is the commit point.
    fn write_checkpoint(&mut self, shards_to_write: &[usize]) -> Result<(), ShardError> {
        let Some(dir) = self.persist_dir.clone() else {
            return Ok(());
        };
        let model = self
            .model
            .as_ref()
            .expect("checkpoint requires a built model");
        let reference = self
            .ref_data
            .as_ref()
            .expect("checkpoint requires a reference snapshot");
        let generation = self.generation + 1;
        for &i in shards_to_write {
            let shard = &model.shards[i];
            write_shard_file(
                &shard_file(&dir, i),
                i,
                shard.version,
                &shard.ordinals,
                &shard.affine,
                &shard.index,
                generation,
            )?;
        }
        let meta = PlanMeta {
            shards: self.shards_k,
            series: self.window.series_count(),
            width: self.window.width(),
            ticks: self.window.ticks(),
            ticks_at_last_refresh: self.ticks_at_last_refresh,
            refreshes: self.refreshes,
            full_rebuilds: self.full_rebuilds,
            delta_refreshes: self.delta_refreshes,
            deltas_since_full: self.deltas_since_full,
            expected_versions: model.versions(),
            measure_tags: self.cfg.indexed.iter().map(|&m| measure_tag(m)).collect(),
        };
        write_plan_file(
            &plan_file(&dir),
            &meta,
            &model.shared.plan,
            reference,
            &self.window.snapshot(),
            generation,
        )?;
        self.generation = generation;
        Ok(())
    }

    /// Warm-restart from a persistence directory.
    ///
    /// The plan file is decoded strictly (it is the commit point; if it
    /// is damaged there is nothing sound to resume from). Each shard
    /// file is then admitted only if it decodes cleanly **and** carries
    /// the version the plan file expects; every other shard is
    /// **healed**: the global model is deterministically rebuilt from
    /// the persisted reference matrix, partitioned along the persisted
    /// plan, and the torn shard's slice has all its pair relationships
    /// and owned series fits re-fitted against the persisted window —
    /// i.e. the healed shard is a delta refresh at the persist point.
    /// Clean shards are adopted byte-for-byte; healing one shard never
    /// perturbs another.
    ///
    /// # Errors
    /// Typed [`ShardError`] if the plan file is damaged or `cfg` does
    /// not structurally match the persisted engine; never panics on
    /// damaged bytes.
    pub fn resume(
        cfg: StreamingConfig,
        dir: impl AsRef<Path>,
    ) -> Result<(Self, ShardRecovery), ShardError> {
        let dir = dir.as_ref().to_path_buf();
        let loaded = load_plan_file(&plan_file(&dir))?;
        if cfg.window != loaded.meta.width {
            return Err(ShardError::Persist(PersistError::Corrupt(format!(
                "config window {} != persisted window {}",
                cfg.window, loaded.meta.width
            ))));
        }
        let mut want: Vec<u8> = cfg.indexed.iter().map(|&m| measure_tag(m)).collect();
        let mut have = loaded.meta.measure_tags.clone();
        want.sort_unstable();
        want.dedup();
        have.sort_unstable();
        have.dedup();
        if want != have {
            return Err(ShardError::Persist(PersistError::Corrupt(
                "config indexed measures differ from the persisted index".into(),
            )));
        }

        let plan = loaded.plan;
        let k = plan.shards();
        let n = loaded.meta.series;
        let width = loaded.meta.width;
        let pool = Arc::new(ThreadPool::new(cfg.symex.threads));

        // Classify every shard file against the plan file's admission
        // vector.
        let loads: Vec<ShardLoad> = (0..k)
            .map(|i| {
                let expected = loaded.meta.expected_versions[i];
                load_shard_file(&shard_file(&dir, i), i, expected, n, width)
            })
            .collect();
        let healed: Vec<(usize, String)> = loads
            .iter()
            .enumerate()
            .filter_map(|(i, l)| match l {
                ShardLoad::Damaged(reason) => Some((i, reason.clone())),
                ShardLoad::Clean(_) => None,
            })
            .collect();

        // Shared tables are recomputed from the reference matrix (pure
        // functions of persisted bytes — bit-identical to the originals).
        let variances: Arc<Vec<f64>> = Arc::new(
            (0..n)
                .map(|v| vector::variance(loaded.reference.series(v)))
                .collect(),
        );
        let self_dots: Arc<Vec<f64>> = Arc::new(
            (0..n)
                .map(|v| {
                    let s = loaded.reference.series(v);
                    vector::dot(s, s)
                })
                .collect(),
        );

        // Heal substrate, built once and only if something is damaged:
        // the deterministic global rebuild over the reference matrix,
        // partitioned along the persisted plan.
        let mut heal_parts: Option<Vec<HealPart>> = if healed.is_empty() {
            None
        } else {
            let mut params = cfg.symex.clone();
            params.afclst.k = params.afclst.k.min(n.saturating_sub(1)).max(1);
            let global = Symex::with_pool(params, Arc::clone(&pool)).run(&loaded.reference)?;
            let owner = plan.owner_map();
            let parts = global.partition(&owner, k);
            let mut ordinals = vec![Vec::new(); k];
            for (g, p) in global.pivots().iter().enumerate() {
                ordinals[owner[p.common]].push(g as u32);
            }
            Some(parts.into_iter().zip(ordinals).map(Some).collect())
        };

        let mut shards = Vec::with_capacity(k);
        for (i, load) in loads.into_iter().enumerate() {
            let shard = match load {
                ShardLoad::Clean(clean) => {
                    let clean = *clean;
                    // Pivot statistics are recomputed from the reference
                    // matrix (pivots never change between full rebuilds,
                    // so the decoded pivot list is the right one).
                    let view = ShardView::new(&loaded.reference);
                    let stats = shard_pivot_stats(&view, &clean.affine, &pool)?;
                    ShardModel::assemble(
                        clean.affine,
                        clean.index,
                        stats,
                        clean.ordinals,
                        plan.members(i).iter().map(|&v| v as u32).collect(),
                        &variances,
                        &self_dots,
                        Arc::clone(&pool),
                        clean.version,
                    )?
                }
                ShardLoad::Damaged(_) => {
                    let (part, ords) = heal_parts
                        .as_mut()
                        .and_then(|p| p[i].take())
                        .expect("heal substrate covers every damaged shard");
                    heal_shard(
                        part,
                        ords,
                        &plan,
                        i,
                        &loaded.reference,
                        &loaded.window,
                        &cfg,
                        &variances,
                        &self_dots,
                        &pool,
                        loaded.meta.expected_versions[i],
                    )?
                }
            };
            shards.push(Arc::new(shard));
        }

        let model = ShardedModel {
            shared: SharedCore {
                plan: plan.clone(),
                series_count: n,
                samples: width,
                indexed: cfg.indexed.clone(),
                variances,
                self_dots,
                pool: Arc::clone(&pool),
            },
            shards,
        };
        let ref_means = (0..n)
            .map(|v| vector::mean(loaded.reference.series(v)))
            .collect();
        let ref_vars = (0..n)
            .map(|v| vector::variance(loaded.reference.series(v)))
            .collect();
        let mut window = SlidingWindow::from_matrix(&loaded.window, width);
        window.restore_ticks(loaded.meta.ticks);
        let engine = ShardedStreamingEngine {
            cfg,
            shards_k: k,
            plan: Some(plan),
            window,
            model: Some(model),
            ref_data: Some(loaded.reference),
            ref_means,
            ref_vars,
            pool,
            ticks_at_last_refresh: loaded.meta.ticks_at_last_refresh,
            refreshes: loaded.meta.refreshes,
            full_rebuilds: loaded.meta.full_rebuilds,
            delta_refreshes: loaded.meta.delta_refreshes,
            deltas_since_full: loaded.meta.deltas_since_full,
            generation: loaded.generation,
            persist_dir: Some(dir),
        };
        Ok((
            engine,
            ShardRecovery {
                generation: loaded.generation,
                healed,
            },
        ))
    }
}

/// Rebuild one damaged shard from the persisted reference + window:
/// take its slice of the deterministic global rebuild, then re-fit all
/// its pair relationships and owned series fits against the window —
/// a delta refresh at the persist point, computed without any of the
/// crashed shard's bytes.
#[allow(clippy::too_many_arguments)]
fn heal_shard(
    mut part: AffineSet,
    ordinals: Vec<u32>,
    plan: &ShardPlan,
    shard: usize,
    reference: &DataMatrix,
    window: &DataMatrix,
    cfg: &StreamingConfig,
    variances: &Arc<Vec<f64>>,
    self_dots: &Arc<Vec<f64>>,
    pool: &Arc<ThreadPool>,
    version: u64,
) -> Result<ShardModel, ShardError> {
    let mut pinv_cache: FxHashMap<PivotPair, Matrix> = FxHashMap::default();
    let refits: Vec<affinity_core::affine::AffineRelationship> = part
        .relationships()
        .iter()
        .map(|rel| {
            let pivot = rel.pivot;
            let pinv = pinv_cache.entry(pivot).or_insert_with(|| {
                pivot_pseudo_inverse(
                    window.series(pivot.common),
                    part.clusters().center(pivot.cluster),
                )
            });
            let (a, b) = solve_relationship_pinv(
                pinv,
                window.series(rel.common),
                window.series(rel.pair.other(rel.common)),
            );
            affinity_core::affine::AffineRelationship {
                pair: rel.pair,
                pivot,
                common: rel.common,
                a,
                b,
            }
        })
        .collect();
    for rel in refits {
        part.replace_relationship(rel)
            .expect("heal refit keeps pair and pivot");
    }
    let owned: Vec<SeriesId> = plan.members(shard);
    for &v in &owned {
        let old = *part.series_relationship(v);
        let center = part.clusters().center(old.cluster);
        let (c, d) = fit_series(center, window.series(v));
        part.replace_series_relationship(SeriesRelationship {
            series: v,
            cluster: old.cluster,
            c,
            d,
        })
        .expect("heal refit keeps series and cluster");
    }
    // Pivot statistics stay anchored to the reference matrix (exactly
    // as a live delta refresh keeps them); the index is rebuilt fresh
    // from the healed fits, so affine set and index are in sync by
    // construction.
    let view = ShardView::new(reference);
    let stats = shard_pivot_stats(&view, &part, pool)?;
    let mask = plan.owned_mask(shard);
    let index = affinity_scape::ScapeIndex::build_from_stats(
        &part,
        &stats,
        variances,
        self_dots,
        &cfg.indexed,
        Some(&mask),
        pool,
    );
    ShardModel::assemble(
        part,
        index,
        stats,
        ordinals,
        owned.iter().map(|&v| v as u32).collect(),
        variances,
        self_dots,
        Arc::clone(pool),
        version,
    )
}

//! Sharded model construction: partition the global affine set along a
//! [`ShardPlan`] and build each shard's engine + index on a shared pool.
//!
//! The build is *partition-of-global*: the affine set is fitted once
//! (by SYMEX, exactly as the unsharded path does) and then split —
//! every β vector, pivot, and series fit is carried into its owning
//! shard unchanged. Per-shard work (pivot statistics, tree assembly)
//! streams through a [`ShardView`] of the caller's [`SeriesSource`], so
//! an out-of-core backing (on-disk store, bounded cache) shards exactly
//! like a resident matrix and produces bit-identical models.

use crate::error::ShardError;
use crate::model::{ShardModel, ShardedModel, SharedCore};
use crate::plan::ShardPlan;
use affinity_core::affine::PivotStats;
use affinity_core::measures::Measure;
use affinity_core::symex::{AffineSet, Symex, SymexParams};
use affinity_data::source::{prefetch_window, scan_sequence, with_column_buffers};
use affinity_data::{SeriesId, SeriesSource, SourceError};
use affinity_linalg::vector;
use affinity_par::ThreadPool;
use std::sync::Arc;

/// One shard's window onto a shared [`SeriesSource`]: delegates every
/// fetch to the backing source unchanged, so per-shard build stages
/// compose with whatever caching / prefetching the backing provides
/// (each shard's column sequence is announced through its own view,
/// keeping the prefetch windows of different shards independent).
pub struct ShardView<'a, S: SeriesSource + ?Sized> {
    source: &'a S,
}

impl<'a, S: SeriesSource + ?Sized> ShardView<'a, S> {
    /// Wrap `source` for one shard's build stages.
    pub fn new(source: &'a S) -> Self {
        ShardView { source }
    }
}

impl<S: SeriesSource + ?Sized> SeriesSource for ShardView<'_, S> {
    fn samples(&self) -> usize {
        self.source.samples()
    }

    fn series_count(&self) -> usize {
        self.source.series_count()
    }

    fn read_into<'a>(
        &'a self,
        v: SeriesId,
        buf: &'a mut Vec<f64>,
    ) -> Result<&'a [f64], SourceError> {
        self.source.read_into(v, buf)
    }

    fn pin(&self, v: SeriesId) {
        self.source.pin(v);
    }

    fn prefetch(&self, ids: &[u32]) {
        self.source.prefetch(ids);
    }

    fn unpin(&self, v: SeriesId) {
        self.source.unpin(v);
    }
}

/// Global pivot ordinals per shard: entry `s` lists, in that shard's
/// local pivot order, the position each pivot holds in the global
/// pivot list. Partitioning preserves relative order, so each shard's
/// list is ascending.
fn ordinals_per_shard(affine: &AffineSet, owner: &[usize], shards: usize) -> Vec<Vec<u32>> {
    let mut out = vec![Vec::new(); shards];
    for (g, p) in affine.pivots().iter().enumerate() {
        out[owner[p.common]].push(g as u32);
    }
    out
}

impl ShardedModel {
    /// Partition a globally-fitted [`AffineSet`] into a sharded model.
    ///
    /// The shards are partitions of `affine` — fits are never redone —
    /// so every query the merge layer answers is bit-identical to the
    /// unsharded model, for any plan and shard count. Raw data is read
    /// only for pivot statistics (per shard, through its own
    /// [`ShardView`]) and the global normalizer tables (once); `source`
    /// can be resident or out-of-core.
    ///
    /// # Errors
    /// [`ShardError::Plan`] when plan, affine set, and source shapes
    /// disagree; [`ShardError::Source`] on fetch failures;
    /// [`ShardError::Core`] if a shard's engine rejects its parts.
    pub fn from_global<S: SeriesSource + ?Sized>(
        source: &S,
        affine: &AffineSet,
        plan: ShardPlan,
        indexed: &[Measure],
        pool: Arc<ThreadPool>,
    ) -> Result<ShardedModel, ShardError> {
        let n = affine.series_count();
        if plan.series_count() != n {
            return Err(ShardError::Plan(format!(
                "plan covers {} series but the model has {n}",
                plan.series_count()
            )));
        }
        if source.series_count() != n || source.samples() != affine.samples() {
            return Err(ShardError::Plan(format!(
                "source shape ({}, {}) does not match the model ({n}, {})",
                source.series_count(),
                source.samples(),
                affine.samples()
            )));
        }
        let k = plan.shards();
        let owner = plan.owner_map();
        let parts = affine.partition(&owner, k);
        let ordinals = ordinals_per_shard(affine, &owner, k);

        // Global normalizer tables, computed once and shared: every
        // shard's engine needs the full-length variance / self-dot
        // vectors (a pair's normalizer references both members, and a
        // member may live in another shard).
        let scan = scan_sequence(n);
        let marginals: Vec<Result<(f64, f64), ShardError>> = pool.parallel_map(n, |v| {
            with_column_buffers(|buf, _| {
                prefetch_window(source, &scan, v);
                let s = source.read_into(v, buf)?;
                Ok((vector::variance(s), vector::dot(s, s)))
            })
        });
        let mut variances = Vec::with_capacity(n);
        let mut self_dots = Vec::with_capacity(n);
        for r in marginals {
            let (var, sd) = r?;
            variances.push(var);
            self_dots.push(sd);
        }
        let variances = Arc::new(variances);
        let self_dots = Arc::new(self_dots);

        // Shards are built one after another; *within* each shard the
        // pivot statistics fan out across the shared pool's lanes, each
        // lane streaming through the shard's view of the source.
        let mut shards = Vec::with_capacity(k);
        for (i, (part, ords)) in parts.into_iter().zip(ordinals).enumerate() {
            let shard = build_shard(
                source, part, ords, &plan, i, indexed, &variances, &self_dots, &pool, 0,
            )?;
            shards.push(Arc::new(shard));
        }
        Ok(ShardedModel {
            shared: SharedCore {
                plan,
                series_count: n,
                samples: affine.samples(),
                indexed: indexed.to_vec(),
                variances,
                self_dots,
                pool,
            },
            shards,
        })
    }

    /// Convenience end-to-end build: run AFCLST + SYMEX once globally,
    /// cut a plan along the cluster boundaries, and partition.
    ///
    /// # Errors
    /// Clustering / fit errors as [`ShardError::Core`], then as for
    /// [`ShardedModel::from_global`].
    pub fn build<S: SeriesSource + ?Sized>(
        source: &S,
        params: &SymexParams,
        shards: usize,
        indexed: &[Measure],
    ) -> Result<ShardedModel, ShardError> {
        let pool = Arc::new(ThreadPool::new(params.threads));
        let symex = Symex::with_pool(params.clone(), Arc::clone(&pool));
        let affine = symex.run(source)?;
        let plan = ShardPlan::along_clusters(affine.clusters(), shards);
        Self::from_global(source, &affine, plan, indexed, pool)
    }
}

/// Build one shard from its partition: per-pivot statistics through the
/// shard's source view, a masked index, and an engine over the shared
/// normalizer tables.
#[allow(clippy::too_many_arguments)]
pub(crate) fn build_shard<S: SeriesSource + ?Sized>(
    source: &S,
    part: AffineSet,
    ordinals: Vec<u32>,
    plan: &ShardPlan,
    shard: usize,
    indexed: &[Measure],
    variances: &Arc<Vec<f64>>,
    self_dots: &Arc<Vec<f64>>,
    pool: &Arc<ThreadPool>,
    version: u64,
) -> Result<ShardModel, ShardError> {
    let view = ShardView::new(source);
    let stats = shard_pivot_stats(&view, &part, pool)?;
    let mask = plan.owned_mask(shard);
    let index = affinity_scape::ScapeIndex::build_from_stats(
        &part,
        &stats,
        variances,
        self_dots,
        indexed,
        Some(&mask),
        pool,
    );
    let owned: Vec<u32> = plan.members(shard).iter().map(|&v| v as u32).collect();
    ShardModel::assemble(
        part,
        index,
        stats,
        ordinals,
        owned,
        variances,
        self_dots,
        Arc::clone(pool),
        version,
    )
}

/// Pivot statistics for one shard's pivots, aligned with
/// `part.pivots()`, fanned out over the shared pool.
pub(crate) fn shard_pivot_stats<S: SeriesSource + ?Sized>(
    view: &ShardView<'_, S>,
    part: &AffineSet,
    pool: &ThreadPool,
) -> Result<Vec<PivotStats>, ShardError> {
    let clusters = part.clusters();
    let commons: Vec<u32> = part.pivots().iter().map(|p| p.common as u32).collect();
    pool.parallel_map(part.pivots().len(), |q| {
        with_column_buffers(|buf, _| {
            let p = part.pivots()[q];
            prefetch_window(view, &commons, q);
            let common = view.read_into(p.common, buf)?;
            Ok(PivotStats::compute(common, clusters.center(p.cluster)))
        })
    })
    .into_iter()
    .collect::<Result<_, ShardError>>()
}

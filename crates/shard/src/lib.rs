//! Sharded model scale-out for the AFFINITY pipeline.
//!
//! The monolithic model hits an O(n²) wall: one affine set, one index,
//! one engine, all rebuilt together and republished together. This
//! crate partitions the model into shards along AFCLST cluster cuts —
//! an explicit, persisted series → shard plan — and answers every
//! query through a cross-shard merge layer whose results are
//! **bit-identical** to the unsharded model, because shards are
//! partitions of one globally-fitted model, never independent re-fits.
//!
//! Layers:
//!
//! * [`ShardPlan`] — the series → shard map, cut along cluster
//!   boundaries so a pivot group never straddles two shards.
//! * [`ShardedModel`] — per-shard MEC engines + SCAPE indexes behind
//!   an exact merge layer ([`ShardedModel::from_global`] /
//!   [`ShardedModel::build`]).
//! * [`ShardedStreamingEngine`] — sliding-window refresh where only
//!   drifted shards rebuild; untouched shards keep their `Arc`
//!   identity so downstream epoch publication is per-shard.
//! * Crash-safe persistence (plan snapshot + per-shard snapshots) with
//!   heal-only-the-torn-shard recovery.

#![deny(missing_docs)]

mod build;
mod error;
mod model;
mod persist;
mod plan;
mod refresh;

pub use build::ShardView;
pub use error::ShardError;
pub use model::{merge_keyed_series, splice_chunks, ShardModel, ShardedModel};
pub use persist::{shard_file, PLAN_FILE};
pub use plan::ShardPlan;
pub use refresh::{ShardRecovery, ShardRefreshKind, ShardedStreamingEngine};

//! The sharded model: per-shard engines + indexes behind one exact
//! cross-shard merge layer.
//!
//! Every shard holds a *partition of the global model* — the same
//! fitted relationships, pivots, and series fits the unsharded build
//! produces, split by owner ([`crate::ShardPlan`]) — so per-shard
//! answers are fragments of the global answer, and merging is exact:
//!
//! * **Pair queries** (MET/MER over T- and D-measures): every pair
//!   lives in exactly one shard (the owner of its pivot's common
//!   series). The global scan emits output per pivot node in global
//!   pivot order; each shard's grouped scan emits the same chunks
//!   tagged with its pivots' *global ordinals*, so sorting chunks by
//!   ordinal and concatenating reproduces the global output
//!   bit-for-bit.
//! * **Location queries**: every series lives in exactly one shard's
//!   location trees (ownership mask at build). All shards share the
//!   cluster model, so within a cluster the ξ keys are comparable;
//!   merging by `(ξ, series)` reproduces the global tree order
//!   (equal-ξ runs are series-ascending by construction).
//! * **Counts**: per-shard subtree counts sum exactly (disjoint
//!   support).
//! * **MEC**: pair values route to the owning shard's engine; location
//!   values route to the series' owner (each shard's series-fit table
//!   is authoritative only for its own series once delta refreshes
//!   diverge the shards).

use crate::error::ShardError;
use crate::plan::ShardPlan;
use affinity_core::affine::{PivotPair, PivotStats};
use affinity_core::error::CoreError;
use affinity_core::hash::FxHashMap;
use affinity_core::measures::{LocationMeasure, Measure, PairwiseMeasure};
use affinity_core::mec::MecEngine;
use affinity_core::symex::AffineSet;
use affinity_data::{SequencePair, SeriesId};
use affinity_linalg::Matrix;
use affinity_par::ThreadPool;
use affinity_scape::{ScapeError, ScapeIndex, ThresholdOp};
use std::sync::Arc;

/// Lexicographic rank of pair `(u, v)` (`u < v`) among all `n·(n−1)/2`
/// pairs — the order of `DataMatrix::sequence_pairs`.
#[inline]
fn pair_rank(n: usize, u: usize, v: usize) -> usize {
    u * n - u * (u + 1) / 2 + (v - u - 1)
}

/// Model-wide state shared by every shard: the plan, the marginal
/// normalizer tables, and the worker pool. Deliberately holds **no**
/// reference data matrix — a pure query model (including one built
/// out-of-core) never materializes the data.
#[derive(Clone)]
pub(crate) struct SharedCore {
    pub(crate) plan: ShardPlan,
    pub(crate) series_count: usize,
    pub(crate) samples: usize,
    pub(crate) indexed: Vec<Measure>,
    /// Per-series variances over the reference data (full length).
    pub(crate) variances: Arc<Vec<f64>>,
    /// Per-series self dot products over the reference data.
    pub(crate) self_dots: Arc<Vec<f64>>,
    pub(crate) pool: Arc<ThreadPool>,
}

/// One shard: a partition of the global affine set with its own MEC
/// engine and SCAPE index. Immutable after construction; a refresh
/// replaces the whole `Arc<ShardModel>`, never mutates one in place.
pub struct ShardModel {
    /// Declared first so it drops before the `Arc` it borrows from.
    ///
    /// The `'static` lifetime is forged: the engine actually borrows
    /// `*self.affine`. It is sound because (a) `affine` is pinned on
    /// the heap by its `Arc` and never replaced for the life of `self`,
    /// (b) field order drops the engine before the `Arc`, and (c) the
    /// field is private and no API hands out a borrow that could
    /// outlive `self`.
    pub(crate) engine: MecEngine<'static>,
    /// Keeps the engine's borrow target alive; never swapped.
    pub(crate) affine: Arc<AffineSet>,
    pub(crate) index: ScapeIndex,
    /// Pivot statistics aligned with `affine.pivots()`, retained so a
    /// delta refresh can rebuild the engine without re-reading data
    /// (delta refreshes keep the reference anchor, hence the stats).
    pub(crate) stats: Vec<PivotStats>,
    /// Global pivot ordinal of each local pivot (same order as
    /// `affine.pivots()`): the merge key for pair queries.
    pub(crate) ordinals: Vec<u32>,
    /// Series owned by this shard, ascending.
    pub(crate) owned: Vec<u32>,
    /// Per-shard refresh version: bumped every time this shard is
    /// rebuilt or delta-patched; untouched shards keep both their
    /// version and their `Arc` identity.
    pub(crate) version: u64,
}

// Compile-time proof the forged-'static engine still crosses threads
// safely (everything inside is owned data or `&AffineSet`).
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ShardModel>();
};

impl std::fmt::Debug for ShardModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardModel")
            .field("pivots", &self.affine.pivots().len())
            .field("relationships", &self.affine.len())
            .field("owned", &self.owned.len())
            .field("version", &self.version)
            .finish()
    }
}

impl ShardModel {
    /// Assemble a shard from its partitioned affine set and
    /// already-built index. `stats` must align with `affine.pivots()`;
    /// `variances`/`self_dots` are the full-length global tables.
    #[allow(clippy::too_many_arguments)] // crate-internal constructor: the parts are produced together by partition/refresh
    pub(crate) fn assemble(
        affine: AffineSet,
        index: ScapeIndex,
        stats: Vec<PivotStats>,
        ordinals: Vec<u32>,
        owned: Vec<u32>,
        variances: &[f64],
        self_dots: &[f64],
        pool: Arc<ThreadPool>,
        version: u64,
    ) -> Result<ShardModel, ShardError> {
        let affine = Arc::new(affine);
        // SAFETY: see the `engine` field docs — the borrow target is
        // heap-pinned by `affine`, which outlives `engine` by field
        // order and is never mutated or replaced.
        let affine_ref: &'static AffineSet = unsafe { &*Arc::as_ptr(&affine) };
        let mut stat_map: FxHashMap<PivotPair, PivotStats> = FxHashMap::default();
        for (p, s) in affine_ref.pivots().iter().zip(&stats) {
            stat_map.insert(*p, *s);
        }
        let engine = MecEngine::from_parts(
            affine_ref,
            stat_map,
            variances.to_vec(),
            self_dots.to_vec(),
            pool,
        )?;
        Ok(ShardModel {
            engine,
            affine,
            index,
            stats,
            ordinals,
            owned,
            version,
        })
    }

    /// The shard's partition of the global affine set.
    pub fn affine(&self) -> &AffineSet {
        &self.affine
    }

    /// The shard's SCAPE index (pair trees over its pivot groups,
    /// location trees over its owned series).
    pub fn index(&self) -> &ScapeIndex {
        &self.index
    }

    /// Series owned by this shard, ascending.
    pub fn owned(&self) -> &[u32] {
        &self.owned
    }

    /// Global pivot ordinals of this shard's pivots, in local order.
    pub fn ordinals(&self) -> &[u32] {
        &self.ordinals
    }

    /// Per-shard refresh version (see the field docs).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// A pairwise measure for one pair held by *this* shard's engine.
    /// Callers route: the pair must live in this shard's partition
    /// (check with [`has_pair`](ShardModel::has_pair)).
    ///
    /// # Errors
    /// [`CoreError::MissingRelationship`] if this shard does not hold
    /// the pair.
    pub fn pair_value(
        &self,
        measure: PairwiseMeasure,
        pair: SequencePair,
    ) -> Result<f64, CoreError> {
        self.engine.pair_value(measure, pair)
    }

    /// A location measure for one series via this shard's engine. The
    /// value is authoritative only for series this shard owns.
    ///
    /// # Errors
    /// [`CoreError::UnknownSeries`] for out-of-range identifiers.
    pub fn location_value(&self, measure: LocationMeasure, v: SeriesId) -> Result<f64, CoreError> {
        self.engine.location_value(measure, v)
    }

    /// `true` if this shard's partition holds the relationship for
    /// `pair` (exactly one shard of a model answers `true` per pair).
    pub fn has_pair(&self, pair: SequencePair) -> bool {
        self.affine.relationship(pair).is_some()
    }
}

/// The cross-shard merge layer: answers every MEC/MET/MER/count query
/// bit-identically to the unsharded model it was partitioned from.
///
/// Cloning is cheap — the shards themselves are shared by `Arc`, so a
/// clone freezes the current shard set (e.g. into a serving epoch)
/// while the streaming side keeps swapping individual shards.
#[derive(Clone)]
pub struct ShardedModel {
    pub(crate) shared: SharedCore,
    pub(crate) shards: Vec<Arc<ShardModel>>,
}

impl std::fmt::Debug for ShardedModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedModel")
            .field("shards", &self.shards.len())
            .field("series", &self.shared.series_count)
            .field("samples", &self.shared.samples)
            .finish()
    }
}

impl ShardedModel {
    /// Number of series across all shards.
    pub fn series_count(&self) -> usize {
        self.shared.series_count
    }

    /// Samples per series of the reference data.
    pub fn samples(&self) -> usize {
        self.shared.samples
    }

    /// The fixed series → shard plan.
    pub fn plan(&self) -> &ShardPlan {
        &self.shared.plan
    }

    /// Measures the shard indexes were built over.
    pub fn indexed(&self) -> &[Measure] {
        &self.shared.indexed
    }

    /// The shards, in plan order. Exposed so tests can assert
    /// structural sharing (`Arc::ptr_eq`) across refreshes.
    pub fn shards(&self) -> &[Arc<ShardModel>] {
        &self.shards
    }

    /// Per-shard refresh versions, in plan order.
    pub fn versions(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.version).collect()
    }

    /// `true` if the given measure can be queried (every shard indexes
    /// the same measure list, so shard 0 answers for all).
    pub fn supports(&self, measure: Measure) -> bool {
        self.shards
            .first()
            .is_some_and(|s| s.index.supports(measure))
    }

    /// Owning shard of series `v` (for in-range ids; callers with
    /// possibly-bad ids fall through to shard 0, whose engine produces
    /// the canonical range error).
    fn owner_of(&self, v: SeriesId) -> usize {
        self.shared.plan.shard_of(v).unwrap_or(0)
    }

    // --- MET / MER (index) -----------------------------------------

    /// MET over a pairwise measure; bit-identical to the global
    /// `ScapeIndex::threshold_pairs_with` (chunks spliced in global
    /// pivot order).
    ///
    /// # Errors
    /// [`ScapeError::MeasureNotIndexed`] or [`ScapeError::Cancelled`].
    pub fn threshold_pairs_with(
        &self,
        measure: PairwiseMeasure,
        op: ThresholdOp,
        tau: f64,
        cancel: &dyn Fn() -> bool,
    ) -> Result<Vec<SequencePair>, ScapeError> {
        let mut chunks: Vec<(u32, Vec<SequencePair>)> = Vec::new();
        for shard in &self.shards {
            for (q, chunk) in shard
                .index
                .threshold_pairs_grouped(measure, op, tau, cancel)?
            {
                chunks.push((shard.ordinals[q], chunk));
            }
        }
        Ok(splice_chunks(chunks))
    }

    /// MER over a pairwise measure; see
    /// [`threshold_pairs_with`](ShardedModel::threshold_pairs_with).
    ///
    /// # Errors
    /// [`ScapeError::MeasureNotIndexed`], [`ScapeError::EmptyRange`],
    /// or [`ScapeError::Cancelled`].
    pub fn range_pairs_with(
        &self,
        measure: PairwiseMeasure,
        tau_l: f64,
        tau_u: f64,
        cancel: &dyn Fn() -> bool,
    ) -> Result<Vec<SequencePair>, ScapeError> {
        let mut chunks: Vec<(u32, Vec<SequencePair>)> = Vec::new();
        for shard in &self.shards {
            for (q, chunk) in shard
                .index
                .range_pairs_grouped(measure, tau_l, tau_u, cancel)?
            {
                chunks.push((shard.ordinals[q], chunk));
            }
        }
        Ok(splice_chunks(chunks))
    }

    /// MET over a location measure; bit-identical to the global
    /// `ScapeIndex::threshold_series` (per-cluster `(ξ, series)` merge).
    ///
    /// # Errors
    /// [`ScapeError::MeasureNotIndexed`] if the measure was not built.
    pub fn threshold_series(
        &self,
        measure: LocationMeasure,
        op: ThresholdOp,
        tau: f64,
    ) -> Result<Vec<SeriesId>, ScapeError> {
        let per_shard = self
            .shards
            .iter()
            .map(|s| s.index.threshold_series_keyed(measure, op, tau))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(merge_keyed_series(per_shard))
    }

    /// MER over a location measure; see
    /// [`threshold_series`](ShardedModel::threshold_series).
    ///
    /// # Errors
    /// [`ScapeError::MeasureNotIndexed`] or [`ScapeError::EmptyRange`].
    pub fn range_series(
        &self,
        measure: LocationMeasure,
        tau_l: f64,
        tau_u: f64,
    ) -> Result<Vec<SeriesId>, ScapeError> {
        let per_shard = self
            .shards
            .iter()
            .map(|s| s.index.range_series_keyed(measure, tau_l, tau_u))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(merge_keyed_series(per_shard))
    }

    // --- Counts ----------------------------------------------------

    /// MET result count without materializing (per-shard subtree counts
    /// summed; supports are disjoint, so the sum is exact).
    ///
    /// # Errors
    /// [`ScapeError::MeasureNotIndexed`] if the measure was not built.
    pub fn count_threshold_pairs(
        &self,
        measure: PairwiseMeasure,
        op: ThresholdOp,
        tau: f64,
    ) -> Result<usize, ScapeError> {
        let mut total = 0usize;
        for shard in &self.shards {
            total += shard.index.count_threshold_pairs(measure, op, tau)?;
        }
        Ok(total)
    }

    /// MER result count without materializing.
    ///
    /// # Errors
    /// [`ScapeError::MeasureNotIndexed`] or [`ScapeError::EmptyRange`].
    pub fn count_range_pairs(
        &self,
        measure: PairwiseMeasure,
        tau_l: f64,
        tau_u: f64,
    ) -> Result<usize, ScapeError> {
        let mut total = 0usize;
        for shard in &self.shards {
            total += shard.index.count_range_pairs(measure, tau_l, tau_u)?;
        }
        Ok(total)
    }

    /// Series MET count without materializing.
    ///
    /// # Errors
    /// [`ScapeError::MeasureNotIndexed`] if the measure was not built.
    pub fn count_threshold_series(
        &self,
        measure: LocationMeasure,
        op: ThresholdOp,
        tau: f64,
    ) -> Result<usize, ScapeError> {
        let mut total = 0usize;
        for shard in &self.shards {
            total += shard.index.count_threshold_series(measure, op, tau)?;
        }
        Ok(total)
    }

    /// Series MER count without materializing.
    ///
    /// # Errors
    /// [`ScapeError::MeasureNotIndexed`] or [`ScapeError::EmptyRange`].
    pub fn count_range_series(
        &self,
        measure: LocationMeasure,
        tau_l: f64,
        tau_u: f64,
    ) -> Result<usize, ScapeError> {
        let mut total = 0usize;
        for shard in &self.shards {
            total += shard.index.count_range_series(measure, tau_l, tau_u)?;
        }
        Ok(total)
    }

    // --- MEC (engine) ----------------------------------------------

    /// A pairwise measure for one pair, via its owning shard's engine
    /// (the pair lives in exactly one shard).
    ///
    /// # Errors
    /// [`CoreError::MissingRelationship`] if no shard holds the pair.
    pub fn pair_value(
        &self,
        measure: PairwiseMeasure,
        pair: SequencePair,
    ) -> Result<f64, CoreError> {
        for shard in &self.shards {
            if shard.affine.relationship(pair).is_some() {
                return shard.engine.pair_value(measure, pair);
            }
        }
        Err(CoreError::MissingRelationship {
            u: pair.u,
            v: pair.v,
        })
    }

    /// A location measure for one series, via its owner's engine (each
    /// shard's series-fit table is authoritative only for its own
    /// series once delta refreshes diverge the shards).
    ///
    /// # Errors
    /// [`CoreError::UnknownSeries`] for out-of-range identifiers.
    pub fn location_value(&self, measure: LocationMeasure, v: SeriesId) -> Result<f64, CoreError> {
        self.shards[self.owner_of(v)]
            .engine
            .location_value(measure, v)
    }

    /// MEC location query over a set of identifiers, one value per id,
    /// routed per id to the owning shard.
    ///
    /// # Errors
    /// [`CoreError::UnknownSeries`] for out-of-range identifiers.
    pub fn location(
        &self,
        measure: LocationMeasure,
        ids: &[SeriesId],
    ) -> Result<Vec<f64>, CoreError> {
        let n = self.shared.series_count;
        if let Some(&bad) = ids.iter().find(|&&v| v >= n) {
            return Err(CoreError::UnknownSeries { id: bad, series: n });
        }
        ids.iter()
            .map(|&v| self.location_value(measure, v))
            .collect()
    }

    /// MEC pairwise matrix over a set of identifiers; mirrors the
    /// global engine's diagonal conventions exactly and fills
    /// off-diagonals through [`pair_value`](ShardedModel::pair_value)
    /// (bit-identical to both the global scalar and batched paths).
    ///
    /// # Errors
    /// [`CoreError::UnknownSeries`] for out-of-range identifiers,
    /// [`CoreError::MissingRelationship`] for uncovered pairs.
    ///
    /// # Panics
    /// Panics if `ids` contains the same identifier twice
    /// (`SequencePair` requires distinct members).
    pub fn pairwise(
        &self,
        measure: PairwiseMeasure,
        ids: &[SeriesId],
    ) -> Result<Matrix, CoreError> {
        let n = self.shared.series_count;
        if let Some(&bad) = ids.iter().find(|&&v| v >= n) {
            return Err(CoreError::UnknownSeries { id: bad, series: n });
        }
        let q = ids.len();
        let mut out = Matrix::zeros(q, q);
        for (i, &id) in ids.iter().enumerate() {
            out.set(
                i,
                i,
                match measure {
                    PairwiseMeasure::Covariance => self.shared.variances[id],
                    PairwiseMeasure::DotProduct => self.shared.self_dots[id],
                    PairwiseMeasure::Correlation
                    | PairwiseMeasure::Cosine
                    | PairwiseMeasure::Dice => 1.0,
                },
            );
        }
        for i in 0..q {
            for j in i + 1..q {
                let v = self.pair_value(measure, SequencePair::new(ids[i], ids[j]))?;
                out.set(i, j, v);
                out.set(j, i, v);
            }
        }
        Ok(out)
    }

    /// The matrix-diagonal convention of [`pairwise`](ShardedModel::pairwise)
    /// as a scalar: variance for covariance, self dot product for dot
    /// product, `1.0` for the derived measures. `None` for out-of-range
    /// ids. Every shard shares the global normalizer tables, so any
    /// shard of a model answers identically — remote coordinators may
    /// ask whichever shard is healthy.
    pub fn diag_value(&self, measure: PairwiseMeasure, v: SeriesId) -> Option<f64> {
        match measure {
            PairwiseMeasure::Covariance => self.shared.variances.get(v).copied(),
            PairwiseMeasure::DotProduct => self.shared.self_dots.get(v).copied(),
            PairwiseMeasure::Correlation | PairwiseMeasure::Cosine | PairwiseMeasure::Dice => {
                (v < self.shared.series_count).then_some(1.0)
            }
        }
    }

    /// A pairwise measure for every sequence pair, in the lexicographic
    /// order of `DataMatrix::sequence_pairs`. Each shard fills its own
    /// pairs' lexicographic slots; the shards' relationship sets
    /// partition the full pair set, so every slot is written once.
    ///
    /// # Errors
    /// [`CoreError::MissingRelationship`] if the shards do not cover
    /// every pair (a partial model).
    pub fn pairwise_all(&self, measure: PairwiseMeasure) -> Result<Vec<f64>, CoreError> {
        let n = self.shared.series_count;
        let total = n * (n - 1) / 2;
        let covered: usize = self.shards.iter().map(|s| s.affine.len()).sum();
        if covered != total {
            for u in 0..n {
                for v in u + 1..n {
                    let pair = SequencePair::new(u, v);
                    if !self
                        .shards
                        .iter()
                        .any(|s| s.affine.relationship(pair).is_some())
                    {
                        return Err(CoreError::MissingRelationship { u, v });
                    }
                }
            }
        }
        let mut out = vec![0.0; total];
        for shard in &self.shards {
            for rel in shard.affine.relationships() {
                let value = shard.engine.pair_value(measure, rel.pair)?;
                out[pair_rank(n, rel.pair.u, rel.pair.v)] = value;
            }
        }
        Ok(out)
    }
}

/// Splice per-pivot chunks tagged with global pivot ordinals into the
/// global emission order. Ordinals are unique across shards (each
/// global pivot lives in exactly one shard), so the sort is total.
///
/// Public because remote coordinators perform the same merge over
/// chunks that arrived off the wire instead of from in-process shards.
pub fn splice_chunks(mut chunks: Vec<(u32, Vec<SequencePair>)>) -> Vec<SequencePair> {
    chunks.sort_by_key(|&(g, _)| g);
    let mut out = Vec::with_capacity(chunks.iter().map(|(_, c)| c.len()).sum());
    for (_, chunk) in chunks {
        out.extend(chunk);
    }
    out
}

/// Merge per-shard keyed location answers into the global tree order:
/// within each cluster, ascending `(ξ, series)` — exactly the order a
/// global tree yields, because equal-ξ runs are series-ascending by
/// construction and every series appears in exactly one shard.
///
/// Public for the same reason as [`splice_chunks`]: the remote merge
/// path reuses the exact in-process logic. The per-shard order of the
/// outer vector is irrelevant (entries re-sort per cluster), but every
/// present answer must carry one inner vector per cluster.
pub fn merge_keyed_series(per_shard: Vec<Vec<Vec<(f64, SeriesId)>>>) -> Vec<SeriesId> {
    let clusters = per_shard.first().map_or(0, Vec::len);
    let mut out = Vec::new();
    let mut cluster_buf: Vec<(f64, SeriesId)> = Vec::new();
    for l in 0..clusters {
        cluster_buf.clear();
        for shard_answer in &per_shard {
            if let Some(entries) = shard_answer.get(l) {
                cluster_buf.extend_from_slice(entries);
            }
        }
        cluster_buf.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        out.extend(cluster_buf.iter().map(|&(_, v)| v));
    }
    out
}

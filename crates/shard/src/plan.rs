//! Shard plans: an explicit series → shard map cut along AFCLST
//! cluster boundaries.
//!
//! A plan is chosen once (at the first full build) and then held fixed:
//! every refresh partitions the *same* series the same way, which is
//! what makes "only drifted shards rebuild" meaningful and keeps the
//! persisted map authoritative across restarts. Cutting along cluster
//! boundaries keeps each pivot group — a pivot's common series and all
//! its member pairs — inside one shard, so the cross-shard merge never
//! has to split a pivot's B+ tree.

use crate::error::ShardError;
use affinity_core::afclst::ClusterModel;
use affinity_data::SeriesId;

/// An explicit series → shard assignment with a fixed shard count.
///
/// Invariants (enforced by every constructor): at least one shard, and
/// every assignment below the shard count. Shards may be empty — a
/// deployment with more shards than clusters simply leaves the surplus
/// shards without series.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    assignments: Vec<u32>,
    shards: usize,
}

impl ShardPlan {
    /// The degenerate single-shard plan: every series in shard 0. A
    /// sharded build under this plan is the unsharded build.
    pub fn single(series: usize) -> ShardPlan {
        ShardPlan {
            assignments: vec![0; series],
            shards: 1,
        }
    }

    /// Cut the cluster sequence into `shards` contiguous groups of
    /// roughly equal series count and assign every series to the group
    /// holding its cluster. Deterministic: integer midpoint rule over
    /// the cumulative cluster sizes, no floating point, no randomness.
    ///
    /// # Panics
    /// Panics if `shards` is zero (a plan must have at least one shard).
    pub fn along_clusters(clusters: &ClusterModel, shards: usize) -> ShardPlan {
        assert!(shards >= 1, "a shard plan needs at least one shard");
        let n = clusters.assignments().len();
        let k = clusters.k();
        let mut size = vec![0usize; k];
        for &l in clusters.assignments() {
            size[l] += 1;
        }
        // Shard of cluster l = which K-th of the series range the
        // cluster's midpoint falls in (clusters visited in id order, so
        // the cuts are contiguous over cluster ids).
        let mut cluster_shard = vec![0usize; k];
        let mut cum = 0usize;
        for l in 0..k {
            let midpoint_x2 = 2 * cum + size[l];
            cluster_shard[l] = ((midpoint_x2 * shards) / (2 * n.max(1))).min(shards - 1);
            cum += size[l];
        }
        let assignments = clusters
            .assignments()
            .iter()
            .map(|&l| cluster_shard[l] as u32)
            .collect();
        ShardPlan {
            assignments,
            shards,
        }
    }

    /// Contiguous block plan: series `v` → shard `v·shards / series`.
    /// Derived from the shape alone — no cluster model, no persisted
    /// state — so every process that knows `(series, shards)` computes
    /// the *same* plan across refreshes and restarts. This is the
    /// distributed-serving default: shard servers and the coordinator
    /// agree on ownership without exchanging a plan file.
    ///
    /// Unlike [`ShardPlan::along_clusters`] the cut ignores cluster
    /// boundaries; correctness does not depend on the cut (the merge
    /// layer is exact for any plan), only rebuild locality does.
    ///
    /// # Panics
    /// Panics if `shards` is zero (a plan must have at least one shard).
    pub fn blocked(series: usize, shards: usize) -> ShardPlan {
        assert!(shards >= 1, "a shard plan needs at least one shard");
        let assignments = (0..series)
            .map(|v| ((v * shards) / series.max(1)) as u32)
            .collect();
        ShardPlan {
            assignments,
            shards,
        }
    }

    /// Adopt an explicit assignment map (e.g. a persisted plan, or an
    /// adversarial cut in the equivalence oracle).
    ///
    /// # Errors
    /// [`ShardError::Plan`] if `shards` is zero or an assignment is out
    /// of range.
    pub fn from_assignments(assignments: Vec<u32>, shards: usize) -> Result<ShardPlan, ShardError> {
        if shards == 0 {
            return Err(ShardError::Plan("shard count must be at least 1".into()));
        }
        if let Some((v, &s)) = assignments
            .iter()
            .enumerate()
            .find(|&(_, &s)| s as usize >= shards)
        {
            return Err(ShardError::Plan(format!(
                "series {v} assigned to shard {s}, but the plan has {shards} shards"
            )));
        }
        Ok(ShardPlan {
            assignments,
            shards,
        })
    }

    /// Number of shards (≥ 1; empty shards count).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Number of series the plan covers.
    pub fn series_count(&self) -> usize {
        self.assignments.len()
    }

    /// Owning shard of series `v`, or `None` for out-of-range ids.
    pub fn shard_of(&self, v: SeriesId) -> Option<usize> {
        self.assignments.get(v).map(|&s| s as usize)
    }

    /// The raw series → shard map (index = series id).
    pub fn assignments(&self) -> &[u32] {
        &self.assignments
    }

    /// The map as `usize` owners, the shape
    /// `AffineSet::partition` consumes.
    pub(crate) fn owner_map(&self) -> Vec<usize> {
        self.assignments.iter().map(|&s| s as usize).collect()
    }

    /// Series owned by `shard`, ascending.
    pub fn members(&self, shard: usize) -> Vec<SeriesId> {
        self.assignments
            .iter()
            .enumerate()
            .filter(|&(_, &s)| s as usize == shard)
            .map(|(v, _)| v)
            .collect()
    }

    /// Boolean ownership mask of `shard` (index = series id), the shape
    /// the masked location-tree build consumes.
    pub(crate) fn owned_mask(&self, shard: usize) -> Vec<bool> {
        self.assignments
            .iter()
            .map(|&s| s as usize == shard)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use affinity_core::afclst::{afclst, AfclstParams};
    use affinity_data::generator::{sensor_dataset, SensorConfig};

    fn clusters(n: usize) -> ClusterModel {
        let data = sensor_dataset(&SensorConfig::reduced(n, 48));
        afclst(&data, &AfclstParams::default()).unwrap()
    }

    #[test]
    fn along_clusters_is_a_partition_cut_on_cluster_boundaries() {
        let cm = clusters(24);
        for shards in [1, 2, 3, 5] {
            let plan = ShardPlan::along_clusters(&cm, shards);
            assert_eq!(plan.series_count(), 24);
            assert_eq!(plan.shards(), shards);
            // Every series of a cluster lands in the same shard.
            for (v, &l) in cm.assignments().iter().enumerate() {
                let w = cm.assignments().iter().position(|&x| x == l).unwrap();
                assert_eq!(plan.shard_of(v), plan.shard_of(w), "cluster {l} split");
            }
            // Members of all shards partition the series.
            let total: usize = (0..shards).map(|s| plan.members(s).len()).sum();
            assert_eq!(total, 24);
        }
    }

    #[test]
    fn single_plan_owns_everything() {
        let plan = ShardPlan::single(7);
        assert_eq!(plan.shards(), 1);
        assert_eq!(plan.members(0).len(), 7);
        assert_eq!(plan.shard_of(6), Some(0));
        assert_eq!(plan.shard_of(7), None);
    }

    #[test]
    fn from_assignments_validates() {
        assert!(ShardPlan::from_assignments(vec![0, 1, 2], 3).is_ok());
        assert!(matches!(
            ShardPlan::from_assignments(vec![0, 3], 3),
            Err(ShardError::Plan(_))
        ));
        assert!(matches!(
            ShardPlan::from_assignments(vec![], 0),
            Err(ShardError::Plan(_))
        ));
    }

    #[test]
    fn blocked_plan_is_a_stable_contiguous_partition() {
        for (n, k) in [(8, 2), (24, 4), (3, 5), (1, 1)] {
            let plan = ShardPlan::blocked(n, k);
            assert_eq!(plan.series_count(), n);
            assert_eq!(plan.shards(), k);
            // Assignments are ascending (contiguous blocks) and valid.
            for v in 1..n {
                assert!(plan.shard_of(v) >= plan.shard_of(v - 1));
            }
            let total: usize = (0..k).map(|s| plan.members(s).len()).sum();
            assert_eq!(total, n);
            // Stable: recomputing from the shape gives the same plan.
            assert_eq!(plan, ShardPlan::blocked(n, k));
        }
        // Balanced when divisible.
        let plan = ShardPlan::blocked(8, 2);
        assert_eq!(plan.members(0), vec![0, 1, 2, 3]);
        assert_eq!(plan.members(1), vec![4, 5, 6, 7]);
    }

    #[test]
    fn deterministic_cuts() {
        let cm = clusters(30);
        let a = ShardPlan::along_clusters(&cm, 4);
        let b = ShardPlan::along_clusters(&cm, 4);
        assert_eq!(a, b);
    }
}

//! Typed errors for shard planning, builds, refresh, and persistence.

use affinity_core::error::CoreError;
use affinity_core::persist::DecodeError;
use affinity_data::SourceError;
use affinity_scape::ScapeError;
use affinity_storage::PersistError;
use std::fmt;

/// Errors raised by sharded model construction, refresh, and recovery.
#[derive(Debug)]
pub enum ShardError {
    /// Clustering / relationship / MEC engine construction failed.
    Core(CoreError),
    /// Index construction or query processing failed.
    Scape(ScapeError),
    /// A column fetch failed while streaming through a `SeriesSource`.
    Source(SourceError),
    /// Snapshot I/O or validation failed (atomic-commit protocol,
    /// CRC framing, injected faults).
    Persist(PersistError),
    /// Persisted shard bytes failed structural decoding.
    Decode(DecodeError),
    /// A shard plan is inconsistent (bad shard id, shape mismatch).
    Plan(String),
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::Core(e) => write!(f, "shard model construction failed: {e}"),
            ShardError::Scape(e) => write!(f, "shard index failed: {e}"),
            ShardError::Source(e) => write!(f, "shard column fetch failed: {e}"),
            ShardError::Persist(e) => write!(f, "shard persistence failed: {e}"),
            ShardError::Decode(e) => write!(f, "persisted shard corrupt: {e}"),
            ShardError::Plan(msg) => write!(f, "invalid shard plan: {msg}"),
        }
    }
}

impl std::error::Error for ShardError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ShardError::Core(e) => Some(e),
            ShardError::Scape(e) => Some(e),
            ShardError::Source(e) => Some(e),
            ShardError::Persist(e) => Some(e),
            ShardError::Decode(e) => Some(e),
            ShardError::Plan(_) => None,
        }
    }
}

impl From<CoreError> for ShardError {
    fn from(e: CoreError) -> Self {
        ShardError::Core(e)
    }
}

impl From<ScapeError> for ShardError {
    fn from(e: ScapeError) -> Self {
        ShardError::Scape(e)
    }
}

impl From<SourceError> for ShardError {
    fn from(e: SourceError) -> Self {
        ShardError::Source(e)
    }
}

impl From<PersistError> for ShardError {
    fn from(e: PersistError) -> Self {
        ShardError::Persist(e)
    }
}

impl From<DecodeError> for ShardError {
    fn from(e: DecodeError) -> Self {
        ShardError::Decode(e)
    }
}

//! Crash-safe persistence codecs for the sharded streaming engine.
//!
//! One directory holds one plan file plus one file per shard:
//!
//! * `shardplan.snap` — the commit point: engine counters, the fixed
//!   series → shard plan, the reference matrix (drift anchor of the
//!   last full rebuild), the live window, and the **expected version**
//!   of every shard file;
//! * `shard-<i>.snap` — one per shard: its id, version, global pivot
//!   ordinals, its partition of the affine set, and its SCAPE index.
//!
//! Every refresh writes the changed shard files *first* and the plan
//! file *last* (each through the storage crate's staged-write → fsync →
//! rename protocol), so the plan file's expected-version vector is the
//! admission check: a shard file is used on resume only if it decodes
//! cleanly **and** carries the version the plan file promises. Anything
//! else — torn bytes, a stale or over-new version, a missing file — is
//! classified damaged, and recovery heals *only that shard* from the
//! plan file's reference + window matrices while the clean shards are
//! adopted byte-for-byte.
//!
//! This module is pure codec + classification: panic-free on arbitrary
//! bytes (decoders return typed errors, never index unchecked), with
//! all orchestration (rebuild, heal, re-arm) in `refresh.rs`.

use crate::error::ShardError;
use crate::plan::ShardPlan;
use affinity_core::persist::{ByteReader, ByteWriter, DecodeError};
use affinity_core::symex::AffineSet;
use affinity_data::DataMatrix;
use affinity_scape::{measure_from_tag, ScapeIndex};
use affinity_storage::{PersistError, Snapshot, SnapshotWriter};
use std::path::{Path, PathBuf};

/// Plan/commit-point filename inside a persistence directory.
pub const PLAN_FILE: &str = "shardplan.snap";

/// Path of shard `i`'s snapshot file inside `dir`.
pub fn shard_file(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard}.snap"))
}

/// Path of the plan file inside `dir`.
pub(crate) fn plan_file(dir: &Path) -> PathBuf {
    dir.join(PLAN_FILE)
}

/// Plan-file section: engine metadata + expected shard versions.
const SEC_PMETA: u32 = 1;
/// Plan-file section: the series → shard assignment map.
const SEC_PLAN: u32 = 2;
/// Plan-file section: the reference matrix (last full rebuild).
const SEC_REF: u32 = 3;
/// Plan-file section: the live window matrix.
const SEC_WIN: u32 = 4;

/// Shard-file section: shard id, version, pivot ordinals.
const SEC_SMETA: u32 = 1;
/// Shard-file section: the shard's affine set ([`AffineSet::to_bytes`]).
const SEC_AFFINE: u32 = 2;
/// Shard-file section: the shard's index ([`ScapeIndex::to_bytes`]).
const SEC_INDEX: u32 = 3;

/// Version byte of the PMETA section payload.
const PMETA_VERSION: u8 = 1;
/// Version byte of the SMETA section payload.
const SMETA_VERSION: u8 = 1;

fn corrupt(msg: impl Into<String>) -> ShardError {
    ShardError::Persist(PersistError::Corrupt(msg.into()))
}

/// Decoded PMETA section: counters and the admission vector.
#[derive(Debug, Clone)]
pub(crate) struct PlanMeta {
    pub shards: usize,
    pub series: usize,
    pub width: usize,
    pub ticks: u64,
    pub ticks_at_last_refresh: u64,
    pub refreshes: u64,
    pub full_rebuilds: u64,
    pub delta_refreshes: u64,
    pub deltas_since_full: u64,
    /// Version each `shard-<i>.snap` must carry to be admitted.
    pub expected_versions: Vec<u64>,
    /// Indexed-measure tags, for config cross-checks on resume.
    pub measure_tags: Vec<u8>,
}

pub(crate) fn plan_meta_to_bytes(m: &PlanMeta) -> Vec<u8> {
    let mut w = ByteWriter::with_capacity(128);
    w.put_u8(PMETA_VERSION);
    w.put_len(m.shards);
    w.put_len(m.series);
    w.put_len(m.width);
    w.put_u64(m.ticks);
    w.put_u64(m.ticks_at_last_refresh);
    w.put_u64(m.refreshes);
    w.put_u64(m.full_rebuilds);
    w.put_u64(m.delta_refreshes);
    w.put_u64(m.deltas_since_full);
    w.put_len(m.expected_versions.len());
    for &v in &m.expected_versions {
        w.put_u64(v);
    }
    w.put_len(m.measure_tags.len());
    for &t in &m.measure_tags {
        w.put_u8(t);
    }
    w.into_vec()
}

pub(crate) fn plan_meta_from_bytes(bytes: &[u8]) -> Result<PlanMeta, DecodeError> {
    let mut r = ByteReader::new(bytes);
    let version = r.u8()?;
    if version != PMETA_VERSION {
        return Err(DecodeError::Corrupt(format!(
            "unsupported plan meta version {version}"
        )));
    }
    let shards = r.len()?;
    let series = r.len()?;
    let width = r.len()?;
    let ticks = r.u64()?;
    let ticks_at_last_refresh = r.u64()?;
    let refreshes = r.u64()?;
    let full_rebuilds = r.u64()?;
    let delta_refreshes = r.u64()?;
    let deltas_since_full = r.u64()?;
    let version_count = r.checked_count(8, "expected shard version")?;
    if version_count != shards {
        return Err(DecodeError::Corrupt(format!(
            "plan meta promises {shards} shards but {version_count} versions"
        )));
    }
    let mut expected_versions = Vec::with_capacity(version_count);
    for _ in 0..version_count {
        expected_versions.push(r.u64()?);
    }
    let tag_count = r.checked_count(1, "measure tag")?;
    let mut measure_tags = Vec::with_capacity(tag_count);
    for _ in 0..tag_count {
        let tag = r.u8()?;
        measure_from_tag(tag)?; // must name a real measure
        measure_tags.push(tag);
    }
    r.finish()?;
    Ok(PlanMeta {
        shards,
        series,
        width,
        ticks,
        ticks_at_last_refresh,
        refreshes,
        full_rebuilds,
        delta_refreshes,
        deltas_since_full,
        expected_versions,
        measure_tags,
    })
}

fn plan_to_bytes(plan: &ShardPlan) -> Vec<u8> {
    // afflint: allow(len-arith) -- encoder-side capacity hint over a live in-memory plan, not header-declared sizes
    let mut w = ByteWriter::with_capacity(16 + 4 * plan.series_count());
    w.put_len(plan.shards());
    w.put_len(plan.series_count());
    for &s in plan.assignments() {
        w.put_u32(s);
    }
    w.into_vec()
}

fn plan_from_bytes(bytes: &[u8]) -> Result<ShardPlan, DecodeError> {
    let mut r = ByteReader::new(bytes);
    let shards = r.len()?;
    let count = r.checked_count(4, "shard assignment")?;
    let mut assignments = Vec::with_capacity(count);
    for _ in 0..count {
        assignments.push(r.u32()?);
    }
    r.finish()?;
    ShardPlan::from_assignments(assignments, shards)
        .map_err(|e| DecodeError::Corrupt(format!("persisted plan invalid: {e}")))
}

fn matrix_to_bytes(m: &DataMatrix) -> Vec<u8> {
    let (n, s) = (m.series_count(), m.samples());
    let mut w = ByteWriter::with_capacity(16);
    w.put_len(n);
    w.put_len(s);
    for v in 0..n {
        w.put_f64_slice(m.series(v));
    }
    w.into_vec()
}

fn matrix_from_bytes(bytes: &[u8]) -> Result<DataMatrix, DecodeError> {
    let mut r = ByteReader::new(bytes);
    let n = r.len()?;
    let samples = r.len()?;
    if n == 0 || samples == 0 {
        return Err(DecodeError::Corrupt(format!(
            "empty matrix ({n} × {samples})"
        )));
    }
    let per = samples
        .checked_mul(8)
        .ok_or_else(|| DecodeError::Corrupt(format!("sample count {samples} overflows")))?;
    let promised = n
        .checked_mul(per)
        .ok_or_else(|| DecodeError::Corrupt(format!("matrix {n} × {samples} overflows")))?;
    if promised > r.remaining() {
        return Err(DecodeError::Truncated {
            needed: promised,
            available: r.remaining(),
        });
    }
    let mut series = Vec::with_capacity(n);
    for _ in 0..n {
        series.push(r.f64_vec(samples)?);
    }
    r.finish()?;
    Ok(DataMatrix::from_series(series))
}

fn shard_meta_to_bytes(shard: usize, version: u64, ordinals: &[u32]) -> Vec<u8> {
    // afflint: allow(len-arith) -- encoder-side capacity hint over a live in-memory ordinal list, not header-declared sizes
    let mut w = ByteWriter::with_capacity(32 + 4 * ordinals.len());
    w.put_u8(SMETA_VERSION);
    w.put_len(shard);
    w.put_u64(version);
    w.put_len(ordinals.len());
    for &g in ordinals {
        w.put_u32(g);
    }
    w.into_vec()
}

fn shard_meta_from_bytes(bytes: &[u8]) -> Result<(usize, u64, Vec<u32>), DecodeError> {
    let mut r = ByteReader::new(bytes);
    let version = r.u8()?;
    if version != SMETA_VERSION {
        return Err(DecodeError::Corrupt(format!(
            "unsupported shard meta version {version}"
        )));
    }
    let shard = r.len()?;
    let model_version = r.u64()?;
    let count = r.checked_count(4, "pivot ordinal")?;
    let mut ordinals = Vec::with_capacity(count);
    for _ in 0..count {
        ordinals.push(r.u32()?);
    }
    r.finish()?;
    Ok((shard, model_version, ordinals))
}

/// Everything the plan file carries, decoded strictly (the plan file is
/// the commit point — damage here is unrecoverable and reported as a
/// typed error, never healed around).
#[derive(Debug)]
pub(crate) struct LoadedPlan {
    pub meta: PlanMeta,
    pub plan: ShardPlan,
    pub reference: DataMatrix,
    pub window: DataMatrix,
    pub generation: u64,
}

/// Open and fully validate the plan file.
pub(crate) fn load_plan_file(path: &Path) -> Result<LoadedPlan, ShardError> {
    let snapshot = Snapshot::open(path)?;
    let section = |id: u32, name: &str| {
        snapshot
            .section(id)
            .ok_or_else(|| corrupt(format!("plan snapshot missing {name} section")))
    };
    let meta = plan_meta_from_bytes(section(SEC_PMETA, "meta")?)?;
    let plan = plan_from_bytes(section(SEC_PLAN, "plan")?)?;
    let reference = matrix_from_bytes(section(SEC_REF, "reference")?)?;
    let window = matrix_from_bytes(section(SEC_WIN, "window")?)?;
    if plan.shards() != meta.shards || plan.series_count() != meta.series {
        return Err(corrupt("plan section disagrees with plan meta"));
    }
    if reference.series_count() != meta.series || reference.samples() != meta.width {
        return Err(corrupt("reference section disagrees with plan meta"));
    }
    if window.series_count() != meta.series || window.samples() != meta.width {
        return Err(corrupt("window section disagrees with plan meta"));
    }
    Ok(LoadedPlan {
        meta,
        plan,
        reference,
        window,
        generation: snapshot.generation(),
    })
}

/// A cleanly decoded, version-matching shard file.
#[derive(Debug)]
pub(crate) struct LoadedShard {
    pub affine: AffineSet,
    pub index: ScapeIndex,
    pub ordinals: Vec<u32>,
    pub version: u64,
}

/// Classification of one shard file on resume.
#[derive(Debug)]
pub(crate) enum ShardLoad {
    /// Decoded cleanly and carries the plan file's expected version —
    /// adopted byte-for-byte. Boxed: a loaded shard is orders of
    /// magnitude larger than a damage reason.
    Clean(Box<LoadedShard>),
    /// Missing, torn, shape-inconsistent, or version-mismatched; the
    /// string says why. Recovery heals this shard (and only this one).
    Damaged(String),
}

/// Open shard `shard`'s file and classify it against the plan file's
/// expectations. Never errors: *every* failure mode is a `Damaged`
/// verdict, because a broken shard file is exactly the fault this
/// format is designed to survive.
pub(crate) fn load_shard_file(
    path: &Path,
    shard: usize,
    expected_version: u64,
    series: usize,
    samples: usize,
) -> ShardLoad {
    match try_load_shard_file(path, shard, expected_version, series, samples) {
        Ok(loaded) => ShardLoad::Clean(Box::new(loaded)),
        Err(e) => ShardLoad::Damaged(e.to_string()),
    }
}

fn try_load_shard_file(
    path: &Path,
    shard: usize,
    expected_version: u64,
    series: usize,
    samples: usize,
) -> Result<LoadedShard, ShardError> {
    let snapshot = Snapshot::open(path)?;
    let section = |id: u32, name: &str| {
        snapshot
            .section(id)
            .ok_or_else(|| corrupt(format!("shard snapshot missing {name} section")))
    };
    let (stored_shard, version, ordinals) = shard_meta_from_bytes(section(SEC_SMETA, "meta")?)?;
    if stored_shard != shard {
        return Err(corrupt(format!(
            "file claims shard {stored_shard}, expected shard {shard}"
        )));
    }
    if version != expected_version {
        return Err(corrupt(format!(
            "shard version {version} does not match the plan's expected {expected_version}"
        )));
    }
    // Subset decode: a shard's affine set holds only the relationships
    // whose pivot it owns, not all `n(n−1)/2`.
    let affine = AffineSet::from_bytes_subset(section(SEC_AFFINE, "affine")?)?;
    let index = ScapeIndex::from_bytes(section(SEC_INDEX, "index")?)?;
    if affine.series_count() != series || affine.samples() != samples {
        return Err(corrupt("shard affine section disagrees with plan meta"));
    }
    if ordinals.len() != affine.pivots().len() {
        return Err(corrupt(format!(
            "shard carries {} ordinals for {} pivots",
            ordinals.len(),
            affine.pivots().len()
        )));
    }
    Ok(LoadedShard {
        affine,
        index,
        ordinals,
        version,
    })
}

/// Atomically commit one shard's snapshot file.
pub(crate) fn write_shard_file(
    path: &Path,
    shard: usize,
    version: u64,
    ordinals: &[u32],
    affine: &AffineSet,
    index: &ScapeIndex,
    generation: u64,
) -> Result<u64, ShardError> {
    let mut writer = SnapshotWriter::new(generation);
    writer
        .section(SEC_SMETA, shard_meta_to_bytes(shard, version, ordinals))
        .section(SEC_AFFINE, affine.to_bytes())
        .section(SEC_INDEX, index.to_bytes());
    Ok(writer.commit(path)?)
}

/// Atomically commit the plan file — the commit point of a persisted
/// refresh; call only after every changed shard file is durable.
pub(crate) fn write_plan_file(
    path: &Path,
    meta: &PlanMeta,
    plan: &ShardPlan,
    reference: &DataMatrix,
    window: &DataMatrix,
    generation: u64,
) -> Result<u64, ShardError> {
    let mut writer = SnapshotWriter::new(generation);
    writer
        .section(SEC_PMETA, plan_meta_to_bytes(meta))
        .section(SEC_PLAN, plan_to_bytes(plan))
        .section(SEC_REF, matrix_to_bytes(reference))
        .section(SEC_WIN, matrix_to_bytes(window));
    Ok(writer.commit(path)?)
}

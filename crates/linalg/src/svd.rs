//! Singular values and dominant singular vectors.
//!
//! Two SVD-shaped computations appear in AFFINITY:
//!
//! 1. **LSFD** (Def. 1) needs all four singular values of a tall `m×4`
//!    matrix `[X̂, Ŷ]`. We compute them as square roots of the eigenvalues
//!    of the `4×4` Gram matrix, solved with the Jacobi method.
//! 2. **AFCLST's update step** (Alg. 1, `SVDLV`) needs only the dominant
//!    left singular vector of the cluster-member matrix `R_ℓ ∈ R^{m×|ℓ|}`.
//!    A power iteration on `R Rᵀ` — implemented through the two skinny
//!    products `Rᵀu` and `R(Rᵀu)` — never materializes the `m×m` Gram
//!    matrix.

use crate::eigen::symmetric_eigenvalues;
use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::vector;
use crate::Result;

/// All singular values of `a`, descending. Cost is `O(m·n²)` for the Gram
/// matrix plus a tiny `n×n` eigensolve — intended for skinny matrices
/// (`n ≤ ~8`), which covers every AFFINITY use.
///
/// # Errors
/// Propagates eigensolver errors; [`LinalgError::Empty`] for empty input.
pub fn singular_values(a: &Matrix) -> Result<Vec<f64>> {
    if a.is_empty() {
        return Err(LinalgError::Empty);
    }
    let g = a.gram();
    let eigs = symmetric_eigenvalues(&g)?;
    Ok(eigs.into_iter().map(|l| l.max(0.0).sqrt()).collect())
}

/// Outcome of the dominant-singular-vector power iteration.
#[derive(Debug, Clone)]
pub struct DominantSingular {
    /// Unit-norm dominant left singular vector (`m` elements).
    pub vector: Vec<f64>,
    /// The dominant singular value.
    pub value: f64,
    /// Iterations performed.
    pub iterations: usize,
}

/// Default iteration budget for [`dominant_left_singular_vector`].
pub const DEFAULT_POWER_ITERATIONS: usize = 100;
/// Default relative convergence tolerance for the power iteration.
pub const DEFAULT_POWER_TOL: f64 = 1e-10;

/// Dominant left singular vector of `a` via power iteration on `A Aᵀ`.
///
/// `seed` deterministically initializes the start vector so the whole
/// framework stays reproducible. Convergence is declared when the sine of
/// the angle between successive iterates drops below `tol`.
///
/// The sign is fixed so that the entry of largest magnitude is positive,
/// making results comparable across runs.
///
/// # Errors
/// * [`LinalgError::Empty`] for an empty matrix;
/// * [`LinalgError::NoConvergence`] if the iteration stalls **and** the
///   matrix is (numerically) zero; slow but progressing iterations return
///   the best iterate instead of failing.
pub fn dominant_left_singular_vector(
    a: &Matrix,
    max_iterations: usize,
    tol: f64,
    seed: u64,
) -> Result<DominantSingular> {
    if a.is_empty() {
        return Err(LinalgError::Empty);
    }
    let m = a.rows();

    // Deterministic, cheap start vector: splitmix64 stream.
    let mut state = seed.wrapping_add(0x9E3779B97F4A7C15);
    let mut next = move || {
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    };
    let mut u: Vec<f64> = (0..m)
        .map(|_| (next() >> 11) as f64 / (1u64 << 53) as f64 - 0.5)
        .collect();
    if vector::exactly_zero(vector::normalize(&mut u)) {
        u[0] = 1.0;
    }

    let mut value = 0.0;
    for it in 1..=max_iterations {
        // w = A (Aᵀ u)
        let z = a.matvec_t(&u)?;
        let mut w = a.matvec(&z)?;
        let norm_w = vector::normalize(&mut w);
        if vector::exactly_zero(norm_w) {
            // A is numerically zero (or u ⟂ range); retry once with a fresh
            // vector, then give up.
            if it == 1 {
                u = (0..m)
                    .map(|i| if i % 2 == 0 { 1.0 } else { -0.5 })
                    .collect();
                vector::normalize(&mut u);
                continue;
            }
            return Err(LinalgError::NoConvergence { iterations: it });
        }
        // sin of angle between iterates: ‖w − (wᵀu)u‖.
        let cos = vector::dot(&w, &u).abs().min(1.0);
        let sin = (1.0 - cos * cos).sqrt();
        u = w;
        value = norm_w.sqrt(); // ‖A Aᵀ u‖ ≈ σ₁² for unit u
        if sin < tol {
            fix_sign(&mut u);
            return Ok(DominantSingular {
                vector: u,
                value,
                iterations: it,
            });
        }
    }
    fix_sign(&mut u);
    Ok(DominantSingular {
        vector: u,
        value,
        iterations: max_iterations,
    })
}

/// Make the largest-magnitude entry positive (canonical sign).
fn fix_sign(u: &mut [f64]) {
    let mut idx = 0;
    let mut best = 0.0;
    for (i, v) in u.iter().enumerate() {
        if v.abs() > best {
            best = v.abs();
            idx = i;
        }
    }
    if u.get(idx).copied().unwrap_or(0.0) < 0.0 {
        vector::scale(-1.0, u);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b}");
    }

    #[test]
    fn singular_values_of_diagonal() {
        let a = Matrix::from_rows(&[vec![3.0, 0.0], vec![0.0, -4.0], vec![0.0, 0.0]]);
        let sv = singular_values(&a).unwrap();
        assert_close(sv[0], 4.0, 1e-12);
        assert_close(sv[1], 3.0, 1e-12);
    }

    #[test]
    fn singular_values_match_frobenius() {
        let a = Matrix::from_rows(&[
            vec![1.0, 2.0, 0.5],
            vec![-1.0, 0.0, 2.0],
            vec![3.0, 1.0, 1.0],
            vec![0.0, -2.0, 1.0],
        ]);
        let sv = singular_values(&a).unwrap();
        let ss: f64 = sv.iter().map(|s| s * s).sum();
        let f = a.frobenius_norm();
        assert_close(ss, f * f, 1e-10);
        // Descending order.
        assert!(sv.windows(2).all(|w| w[0] >= w[1] - 1e-12));
    }

    #[test]
    fn rank_deficient_concatenation_has_zero_tail() {
        // Columns 3,4 are linear combinations of 1,2 => σ3 = σ4 = 0.
        let x1 = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let x2 = vec![0.0, 1.0, 0.0, -1.0, 0.5];
        let y1: Vec<f64> = x1.iter().zip(&x2).map(|(a, b)| 2.0 * a - b).collect();
        let y2: Vec<f64> = x1.iter().zip(&x2).map(|(a, b)| -a + 3.0 * b).collect();
        let m = Matrix::from_columns(&[x1, x2, y1, y2]);
        let sv = singular_values(&m).unwrap();
        // Gram-based singular values carry an absolute floor of ~√ε·σ₁ for
        // the tiny ones; 1e-6 relative is the realistic bound here.
        assert!(sv[2] < 1e-6 * sv[0]);
        assert!(sv[3] < 1e-6 * sv[0]);
    }

    #[test]
    fn power_iteration_finds_dominant_direction() {
        // Rank-1 matrix u vᵀ: dominant left singular vector is u/‖u‖.
        let u = vec![1.0, 2.0, -2.0];
        let v = vec![3.0, 1.0];
        let a = Matrix::from_columns(&[
            u.iter().map(|x| x * v[0]).collect(),
            u.iter().map(|x| x * v[1]).collect(),
        ]);
        let d = dominant_left_singular_vector(&a, 200, 1e-12, 42).unwrap();
        let expected = {
            let mut e = u.clone();
            vector::normalize(&mut e);
            e
        };
        // Canonical sign: largest-magnitude entry positive; expected[1]=2/3>0.
        for (a, b) in d.vector.iter().zip(expected.iter()) {
            assert_close(*a, *b, 1e-8);
        }
        let unorm = vector::norm(&u);
        let vnorm = vector::norm(&v);
        assert_close(d.value, unorm * vnorm, 1e-8);
    }

    #[test]
    fn power_iteration_matches_gram_eigen() {
        let a = Matrix::from_columns(&[
            vec![1.0, 0.5, -1.0, 2.0, 0.0],
            vec![2.0, 1.0, 0.0, -1.0, 1.0],
            vec![0.5, 0.5, 0.5, 0.5, 0.5],
        ]);
        let d = dominant_left_singular_vector(&a, 500, 1e-13, 7).unwrap();
        let sv = singular_values(&a).unwrap();
        assert_close(d.value, sv[0], 1e-6);
        assert_close(vector::norm(&d.vector), 1.0, 1e-12);
    }

    #[test]
    fn deterministic_across_runs() {
        let a = Matrix::from_columns(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let d1 = dominant_left_singular_vector(&a, 100, 1e-10, 99).unwrap();
        let d2 = dominant_left_singular_vector(&a, 100, 1e-10, 99).unwrap();
        assert_eq!(d1.vector, d2.vector);
    }

    #[test]
    fn empty_inputs_error() {
        assert!(singular_values(&Matrix::zeros(0, 0)).is_err());
        assert!(dominant_left_singular_vector(&Matrix::zeros(0, 0), 10, 1e-8, 1).is_err());
    }

    #[test]
    fn single_column_returns_normalized_column() {
        let a = Matrix::from_columns(&[vec![0.0, 3.0, 4.0]]);
        let d = dominant_left_singular_vector(&a, 100, 1e-12, 1).unwrap();
        assert_close(d.vector[1], 0.6, 1e-9);
        assert_close(d.vector[2], 0.8, 1e-9);
        assert_close(d.value, 5.0, 1e-9);
    }
}

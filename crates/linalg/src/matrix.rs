//! Column-major dense matrix.
//!
//! AFFINITY's data matrix `S ∈ R^{m×n}` stores one time series per column
//! (paper Sec. 2), and every hot kernel — least squares against `[O_p, 1_m]`,
//! Gram matrices for the LSFD metric, power iteration over cluster members —
//! streams whole columns. Column-major storage makes those accesses
//! contiguous.

use crate::error::LinalgError;
use crate::vector;
use crate::Result;

/// Dense column-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    /// `data[c * rows + r]` is entry `(r, c)`.
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix of size `n×n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Build from column vectors; all columns must share a length.
    ///
    /// # Panics
    /// Panics if columns have inconsistent lengths.
    pub fn from_columns(cols: &[Vec<f64>]) -> Self {
        if cols.is_empty() {
            return Matrix::zeros(0, 0);
        }
        let rows = cols[0].len();
        let mut data = Vec::with_capacity(rows * cols.len());
        for c in cols {
            assert_eq!(c.len(), rows, "from_columns: ragged columns");
            data.extend_from_slice(c);
        }
        Matrix {
            rows,
            cols: cols.len(),
            data,
        }
    }

    /// Build from a row-major nested array (convenient in tests).
    ///
    /// # Panics
    /// Panics if rows are ragged.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        if rows.is_empty() {
            return Matrix::zeros(0, 0);
        }
        let ncols = rows[0].len();
        let mut m = Matrix::zeros(rows.len(), ncols);
        for (r, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), ncols, "from_rows: ragged rows");
            for (c, v) in row.iter().enumerate() {
                m.set(r, c, *v);
            }
        }
        m
    }

    /// Build directly from a column-major buffer.
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] if `data.len() != rows*cols`.
    pub fn from_column_major(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::DimensionMismatch(format!(
                "buffer of {} elements cannot hold a {rows}x{cols} matrix",
                data.len()
            )));
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` if the matrix has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Entry at `(r, c)`.
    ///
    /// # Panics
    /// Panics on out-of-bounds access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "get: index out of bounds");
        self.data[c * self.rows + r]
    }

    /// Set entry at `(r, c)`.
    ///
    /// # Panics
    /// Panics on out-of-bounds access.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.rows && c < self.cols, "set: index out of bounds");
        self.data[c * self.rows + r] = v;
    }

    /// Borrow column `c` as a contiguous slice.
    ///
    /// # Panics
    /// Panics if `c >= cols`.
    #[inline]
    pub fn col(&self, c: usize) -> &[f64] {
        assert!(c < self.cols, "col: index out of bounds");
        &self.data[c * self.rows..(c + 1) * self.rows]
    }

    /// Mutably borrow column `c`.
    ///
    /// # Panics
    /// Panics if `c >= cols`.
    #[inline]
    pub fn col_mut(&mut self, c: usize) -> &mut [f64] {
        assert!(c < self.cols, "col_mut: index out of bounds");
        &mut self.data[c * self.rows..(c + 1) * self.rows]
    }

    /// Copy row `r` into a new vector (rows are strided in column-major
    /// storage, so this allocates).
    pub fn row(&self, r: usize) -> Vec<f64> {
        assert!(r < self.rows, "row: index out of bounds");
        (0..self.cols).map(|c| self.get(r, c)).collect()
    }

    /// The raw column-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Column-wise concatenation `[self, other]` (paper notation
    /// `[x_1, …, x_w]`, Table 1).
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] if row counts differ.
    pub fn hcat(&self, other: &Matrix) -> Result<Matrix> {
        if self.rows != other.rows {
            return Err(LinalgError::DimensionMismatch(format!(
                "hcat of {}x{} with {}x{}",
                self.rows, self.cols, other.rows, other.cols
            )));
        }
        let mut data = Vec::with_capacity(self.data.len() + other.data.len());
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols + other.cols,
            data,
        })
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for c in 0..self.cols {
            for r in 0..self.rows {
                t.set(c, r, self.get(r, c));
            }
        }
        t
    }

    /// Matrix product `self · other`.
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] on incompatible shapes.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(LinalgError::DimensionMismatch(format!(
                "matmul of {}x{} with {}x{}",
                self.rows, self.cols, other.rows, other.cols
            )));
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        // Column-major friendly ordering: for each output column, accumulate
        // scaled columns of self.
        for j in 0..other.cols {
            let bcol = other.col(j);
            let ocol = out.col_mut(j);
            for (k, &bkj) in bcol.iter().enumerate() {
                if !vector::exactly_zero(bkj) {
                    let acol = &self.data[k * self.rows..(k + 1) * self.rows];
                    for (o, a) in ocol.iter_mut().zip(acol.iter()) {
                        *o += bkj * a;
                    }
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product `self · x`.
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] if `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.cols {
            return Err(LinalgError::DimensionMismatch(format!(
                "matvec of {}x{} with vector of length {}",
                self.rows,
                self.cols,
                x.len()
            )));
        }
        let mut out = vec![0.0; self.rows];
        self.matvec_into(x, &mut out)?;
        Ok(out)
    }

    /// Allocation-free matrix-vector product: write `self · x` into `out`.
    ///
    /// This is the GEMV kernel behind the batched MEC sweeps: with one
    /// β-matrix per pivot, a whole measure sweep is one call per pivot
    /// into a reusable scratch buffer. Zero entries of `x` skip their
    /// column entirely, so the accumulation order (and hence the exact
    /// floating-point result) matches a scalar `Σ_k x_k·col_k` loop over
    /// the non-zero coefficients.
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] if `x.len() != cols` or
    /// `out.len() != rows`.
    pub fn matvec_into(&self, x: &[f64], out: &mut [f64]) -> Result<()> {
        if x.len() != self.cols || out.len() != self.rows {
            return Err(LinalgError::DimensionMismatch(format!(
                "matvec_into of {}x{} with x of length {} into buffer of length {}",
                self.rows,
                self.cols,
                x.len(),
                out.len()
            )));
        }
        out.fill(0.0);
        for (k, &xk) in x.iter().enumerate() {
            if !vector::exactly_zero(xk) {
                vector::axpy(xk, self.col(k), out);
            }
        }
        Ok(())
    }

    /// Transposed matrix-vector product `selfᵀ · x` without forming the
    /// transpose — the workhorse of the AFCLST power iteration.
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] if `x.len() != rows`.
    pub fn matvec_t(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.rows {
            return Err(LinalgError::DimensionMismatch(format!(
                "matvec_t of {}x{} with vector of length {}",
                self.rows,
                self.cols,
                x.len()
            )));
        }
        Ok((0..self.cols)
            .map(|c| vector::dot(self.col(c), x))
            .collect())
    }

    /// Gram matrix `selfᵀ·self` (`cols×cols`), exploiting symmetry.
    pub fn gram(&self) -> Matrix {
        let n = self.cols;
        let mut g = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                let v = vector::dot(self.col(i), self.col(j));
                g.set(i, j, v);
                g.set(j, i, v);
            }
        }
        g
    }

    /// Subtract each column's mean from that column, returning the means.
    ///
    /// Produces the "zero-mean counterpart" `X̂` used by the LSFD metric
    /// (paper Def. 1).
    pub fn center_columns(&mut self) -> Vec<f64> {
        (0..self.cols)
            .map(|c| vector::center(self.col_mut(c)))
            .collect()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        vector::norm(&self.data)
    }

    /// Element-wise maximum absolute difference to another matrix.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "max_abs_diff: shape mismatch"
        );
        vector::max_abs_diff(&self.data, &other.data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = Matrix::from_columns(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
        assert_eq!(m.get(0, 1), 3.0);
        assert_eq!(m.col(1), &[3.0, 4.0]);
        assert_eq!(m.row(0), vec![1.0, 3.0]);
        let r = Matrix::from_rows(&[vec![1.0, 3.0], vec![2.0, 4.0]]);
        assert_eq!(m, r);
        assert!(Matrix::zeros(0, 0).is_empty());
    }

    #[test]
    fn from_column_major_validates_length() {
        assert!(Matrix::from_column_major(2, 2, vec![1.0; 4]).is_ok());
        assert!(matches!(
            Matrix::from_column_major(2, 2, vec![1.0; 3]),
            Err(LinalgError::DimensionMismatch(_))
        ));
    }

    #[test]
    fn identity_matmul_is_noop() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(m.matmul(&i).unwrap(), m);
        assert_eq!(i.matmul(&m).unwrap(), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, Matrix::from_rows(&[vec![19.0, 22.0], vec![43.0, 50.0]]));
    }

    #[test]
    fn matmul_shape_error() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn matvec_and_transpose_agree() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let x = vec![1.0, 0.5, -1.0];
        let y = a.matvec(&x).unwrap();
        assert_eq!(y, vec![1.0 + 1.0 - 3.0, 4.0 + 2.5 - 6.0]);
        let yt = a.transpose().matvec(&[1.0, 2.0]).unwrap();
        let yt2 = a.matvec_t(&[1.0, 2.0]).unwrap();
        assert_eq!(yt, yt2);
        assert!(a.matvec(&[1.0]).is_err());
        assert!(a.matvec_t(&[1.0]).is_err());
    }

    #[test]
    fn matvec_into_matches_matvec_and_checks_shapes() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 0.0], vec![4.0, 5.0, -1.0]]);
        let x = vec![0.5, -2.0, 3.0];
        let mut out = vec![7.0; 2]; // stale contents must be overwritten
        a.matvec_into(&x, &mut out).unwrap();
        assert_eq!(out, a.matvec(&x).unwrap());
        assert!(a.matvec_into(&x, &mut [0.0; 3]).is_err());
        assert!(a.matvec_into(&[1.0], &mut out).is_err());
    }

    #[test]
    fn gram_is_symmetric_psd_diagonal() {
        let a = Matrix::from_columns(&[vec![1.0, 2.0, 2.0], vec![0.0, 1.0, -1.0]]);
        let g = a.gram();
        assert_eq!(g.get(0, 0), 9.0);
        assert_eq!(g.get(1, 1), 2.0);
        assert_eq!(g.get(0, 1), g.get(1, 0));
    }

    #[test]
    fn hcat_and_center() {
        let a = Matrix::from_columns(&[vec![1.0, 3.0]]);
        let b = Matrix::from_columns(&[vec![2.0, 4.0]]);
        let mut c = a.hcat(&b).unwrap();
        assert_eq!(c.cols(), 2);
        let means = c.center_columns();
        assert_eq!(means, vec![2.0, 3.0]);
        assert_eq!(c.col(0), &[-1.0, 1.0]);
        assert!(a.hcat(&Matrix::zeros(3, 1)).is_err());
    }

    #[test]
    fn frobenius_norm_known() {
        let m = Matrix::from_rows(&[vec![3.0, 0.0], vec![0.0, 4.0]]);
        assert_eq!(m.frobenius_norm(), 5.0);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(m.transpose().transpose(), m);
    }
}

//! Householder QR factorization and least-squares solves.
//!
//! AFFINITY computes one affine relationship per sequence pair by solving
//! `[O_p, 1_m] · Θ = S_e` in the least-squares sense (paper Alg. 2,
//! `LeastSquares`). The design matrix is tall and skinny (`m×3`), so a
//! Householder QR is both numerically robust and cheap. The same
//! factorization yields the Moore–Penrose pseudo-inverse that SYMEX+
//! caches per pivot pair.

// Index-based loops over matrix coordinates are the clearest notation
// for these kernels.
#![allow(clippy::needless_range_loop)]
use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::vector;
use crate::Result;

/// Compact Householder QR factorization of a tall matrix (`rows ≥ cols`).
///
/// Stores the Householder vectors in the lower trapezoid of `factors` and
/// the upper-triangular `R` on and above the diagonal, LAPACK-style.
#[derive(Debug, Clone)]
pub struct QrFactorization {
    factors: Matrix,
    /// Householder scalar `τ_k` per reflection.
    taus: Vec<f64>,
}

/// Relative tolerance below which a diagonal of `R` is considered zero.
const RANK_TOL: f64 = 1e-12;

impl QrFactorization {
    /// Factor `a` (consuming a copy). Requires `rows ≥ cols ≥ 1`.
    ///
    /// # Errors
    /// [`LinalgError::DimensionMismatch`] for wide matrices,
    /// [`LinalgError::Empty`] for empty input.
    pub fn new(a: &Matrix) -> Result<Self> {
        if a.is_empty() {
            return Err(LinalgError::Empty);
        }
        if a.rows() < a.cols() {
            return Err(LinalgError::DimensionMismatch(format!(
                "QR requires rows >= cols, got {}x{}",
                a.rows(),
                a.cols()
            )));
        }
        let m = a.rows();
        let n = a.cols();
        let mut f = a.clone();
        let mut taus = vec![0.0; n];
        for k in 0..n {
            // Build the Householder reflector annihilating f[k+1.., k].
            let col = f.col(k);
            let xnorm = vector::norm(&col[k..]);
            if vector::exactly_zero(xnorm) {
                taus[k] = 0.0;
                continue;
            }
            let alpha = col[k];
            let beta = -alpha.signum() * xnorm;
            let tau = (beta - alpha) / beta;
            let scale = 1.0 / (alpha - beta);
            {
                let colm = f.col_mut(k);
                for v in colm[k + 1..].iter_mut() {
                    *v *= scale;
                }
                colm[k] = beta;
            }
            taus[k] = tau;
            // Apply reflector to the trailing columns: c ← c − τ v (vᵀc)
            // with v = [1, f[k+1.., k]].
            for j in k + 1..n {
                let mut w = f.get(k, j);
                for i in k + 1..m {
                    w += f.get(i, k) * f.get(i, j);
                }
                w *= tau;
                let vkj = f.get(k, j) - w;
                f.set(k, j, vkj);
                for i in k + 1..m {
                    let update = f.get(i, j) - w * f.get(i, k);
                    f.set(i, j, update);
                }
            }
        }
        Ok(QrFactorization { factors: f, taus })
    }

    /// Number of rows of the factored matrix.
    pub fn rows(&self) -> usize {
        self.factors.rows()
    }

    /// Number of columns of the factored matrix.
    pub fn cols(&self) -> usize {
        self.factors.cols()
    }

    /// Apply `Qᵀ` to a vector in place.
    fn apply_qt(&self, x: &mut [f64]) {
        let m = self.rows();
        let n = self.cols();
        assert_eq!(x.len(), m, "apply_qt: length mismatch");
        for k in 0..n {
            let tau = self.taus[k];
            if vector::exactly_zero(tau) {
                continue;
            }
            let mut w = x[k];
            for i in k + 1..m {
                w += self.factors.get(i, k) * x[i];
            }
            w *= tau;
            x[k] -= w;
            for i in k + 1..m {
                x[i] -= w * self.factors.get(i, k);
            }
        }
    }

    /// Apply `Q` to a vector in place (reflectors in reverse order).
    fn apply_q(&self, x: &mut [f64]) {
        let m = self.rows();
        let n = self.cols();
        assert_eq!(x.len(), m, "apply_q: length mismatch");
        for k in (0..n).rev() {
            let tau = self.taus[k];
            if vector::exactly_zero(tau) {
                continue;
            }
            let mut w = x[k];
            for i in k + 1..m {
                w += self.factors.get(i, k) * x[i];
            }
            w *= tau;
            x[k] -= w;
            for i in k + 1..m {
                x[i] -= w * self.factors.get(i, k);
            }
        }
    }

    /// Back-substitute `R y = z[..n]`.
    fn solve_r(&self, z: &[f64]) -> Result<Vec<f64>> {
        let n = self.cols();
        let rmax = (0..n)
            .map(|k| self.factors.get(k, k).abs())
            .fold(0.0f64, f64::max);
        let mut y = vec![0.0; n];
        for k in (0..n).rev() {
            let rkk = self.factors.get(k, k);
            if rkk.abs() <= RANK_TOL * rmax.max(1.0) {
                return Err(LinalgError::RankDeficient { pivot: k });
            }
            let mut acc = z[k];
            for j in k + 1..n {
                acc -= self.factors.get(k, j) * y[j];
            }
            y[k] = acc / rkk;
        }
        Ok(y)
    }

    /// Minimum-norm residual solution of `A x = b` for a single
    /// right-hand side.
    ///
    /// # Errors
    /// [`LinalgError::DimensionMismatch`] if `b.len() != rows`,
    /// [`LinalgError::RankDeficient`] if `R` is numerically singular.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        if b.len() != self.rows() {
            return Err(LinalgError::DimensionMismatch(format!(
                "solve: rhs of length {} against {} rows",
                b.len(),
                self.rows()
            )));
        }
        let mut z = b.to_vec();
        self.apply_qt(&mut z);
        self.solve_r(&z)
    }

    /// Least-squares solve with a matrix right-hand side: returns the
    /// `cols×k` solution of `A X = B`.
    ///
    /// # Errors
    /// Propagates the single-rhs errors of [`QrFactorization::solve`].
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        if b.rows() != self.rows() {
            return Err(LinalgError::DimensionMismatch(format!(
                "solve_matrix: rhs with {} rows against {} rows",
                b.rows(),
                self.rows()
            )));
        }
        let mut out = Matrix::zeros(self.cols(), b.cols());
        for j in 0..b.cols() {
            let x = self.solve(b.col(j))?;
            out.col_mut(j).copy_from_slice(&x);
        }
        Ok(out)
    }

    /// Materialize the Moore–Penrose pseudo-inverse `A⁺ = R⁻¹Qᵀ`
    /// (`cols×rows`). This is exactly the object the SYMEX+ cache stores
    /// per pivot pair (paper Sec. 4, "Pseudo-inverse cache").
    ///
    /// # Errors
    /// [`LinalgError::RankDeficient`] if `R` is numerically singular.
    pub fn pseudo_inverse(&self) -> Result<Matrix> {
        let m = self.rows();
        let mut pinv = Matrix::zeros(self.cols(), m);
        let mut e = vec![0.0; m];
        for j in 0..m {
            e.fill(0.0);
            e[j] = 1.0;
            self.apply_qt(&mut e);
            let y = self.solve_r(&e)?;
            pinv.col_mut(j).copy_from_slice(&y);
        }
        Ok(pinv)
    }

    /// Reconstruct the explicit `m×n` `Q` factor (thin `Q`). Mostly useful
    /// for tests; solves never need it.
    pub fn q_thin(&self) -> Matrix {
        let m = self.rows();
        let n = self.cols();
        let mut q = Matrix::zeros(m, n);
        let mut e = vec![0.0; m];
        for j in 0..n {
            e.fill(0.0);
            e[j] = 1.0;
            self.apply_q(&mut e);
            q.col_mut(j).copy_from_slice(&e);
        }
        q
    }

    /// Copy of the upper-triangular `R` factor (`n×n`).
    pub fn r(&self) -> Matrix {
        let n = self.cols();
        let mut r = Matrix::zeros(n, n);
        for c in 0..n {
            for rw in 0..=c {
                r.set(rw, c, self.factors.get(rw, c));
            }
        }
        r
    }
}

/// One-shot least squares: solve `A X = B`, returning the `A.cols()×B.cols()`
/// coefficient matrix.
///
/// # Errors
/// See [`QrFactorization::new`] and [`QrFactorization::solve_matrix`].
pub fn least_squares(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    QrFactorization::new(a)?.solve_matrix(b)
}

/// One-shot pseudo-inverse `A⁺` of a tall full-column-rank matrix.
///
/// # Errors
/// See [`QrFactorization::new`] and [`QrFactorization::pseudo_inverse`].
pub fn pseudo_inverse(a: &Matrix) -> Result<Matrix> {
    QrFactorization::new(a)?.pseudo_inverse()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b}");
    }

    #[test]
    fn qr_reconstructs_matrix() {
        let a = Matrix::from_rows(&[
            vec![1.0, 2.0],
            vec![3.0, 4.0],
            vec![5.0, 6.0],
            vec![7.0, 9.0],
        ]);
        let qr = QrFactorization::new(&a).unwrap();
        let recon = qr.q_thin().matmul(&qr.r()).unwrap();
        assert!(recon.max_abs_diff(&a) < 1e-12);
    }

    #[test]
    fn q_has_orthonormal_columns() {
        let a = Matrix::from_rows(&[
            vec![2.0, -1.0, 0.5],
            vec![0.0, 3.0, 1.0],
            vec![1.0, 1.0, 1.0],
            vec![4.0, 0.0, -2.0],
            vec![-1.0, 2.0, 0.0],
        ]);
        let q = QrFactorization::new(&a).unwrap().q_thin();
        let qtq = q.gram();
        assert!(qtq.max_abs_diff(&Matrix::identity(3)) < 1e-12);
    }

    #[test]
    fn exact_system_recovers_solution() {
        // y = 2x + 1 exactly.
        let a = Matrix::from_columns(&[vec![1.0, 2.0, 3.0], vec![1.0, 1.0, 1.0]]);
        let b = Matrix::from_columns(&[vec![3.0, 5.0, 7.0]]);
        let x = least_squares(&a, &b).unwrap();
        assert_close(x.get(0, 0), 2.0, 1e-12);
        assert_close(x.get(1, 0), 1.0, 1e-12);
    }

    #[test]
    fn least_squares_matches_normal_equations() {
        // Overdetermined noisy fit; cross-check against the normal
        // equations solved by hand.
        let xs: Vec<f64> = (0..50).map(|i| i as f64 / 7.0).collect();
        let noise: Vec<f64> = (0..50)
            .map(|i| ((i * 2654435761_usize) % 97) as f64 / 97.0 - 0.5)
            .collect();
        let ys: Vec<f64> = xs
            .iter()
            .zip(noise.iter())
            .map(|(x, n)| 1.5 * x - 0.75 + n)
            .collect();
        let ones = vec![1.0; xs.len()];
        let a = Matrix::from_columns(&[xs.clone(), ones]);
        let b = Matrix::from_columns(std::slice::from_ref(&ys));
        let theta = least_squares(&a, &b).unwrap();
        // Normal equations: (AᵀA)θ = Aᵀy for a 2x2 system.
        let sxx = vector::dot(&xs, &xs);
        let sx = vector::sum(&xs);
        let n = xs.len() as f64;
        let sxy = vector::dot(&xs, &ys);
        let sy = vector::sum(&ys);
        let det = sxx * n - sx * sx;
        let slope = (sxy * n - sx * sy) / det;
        let intercept = (sxx * sy - sx * sxy) / det;
        assert_close(theta.get(0, 0), slope, 1e-10);
        assert_close(theta.get(1, 0), intercept, 1e-10);
    }

    #[test]
    fn residual_is_orthogonal_to_column_space() {
        let a =
            Matrix::from_columns(&[vec![1.0, 2.0, 3.0, 4.0, 5.0], vec![1.0, 1.0, 1.0, 1.0, 1.0]]);
        let b = vec![1.0, 0.5, 2.0, -1.0, 3.0];
        let x = QrFactorization::new(&a).unwrap().solve(&b).unwrap();
        let fitted = a.matvec(&x).unwrap();
        let residual: Vec<f64> = b.iter().zip(fitted.iter()).map(|(u, v)| u - v).collect();
        assert!(vector::dot(&residual, a.col(0)).abs() < 1e-10);
        assert!(vector::dot(&residual, a.col(1)).abs() < 1e-10);
    }

    #[test]
    fn pseudo_inverse_is_left_inverse() {
        let a = Matrix::from_rows(&[
            vec![1.0, 0.0, 2.0],
            vec![0.0, 1.0, -1.0],
            vec![1.0, 1.0, 1.0],
            vec![2.0, -1.0, 0.0],
        ]);
        let pinv = pseudo_inverse(&a).unwrap();
        assert_eq!(pinv.rows(), 3);
        assert_eq!(pinv.cols(), 4);
        let prod = pinv.matmul(&a).unwrap();
        assert!(prod.max_abs_diff(&Matrix::identity(3)) < 1e-10);
    }

    #[test]
    fn pinv_solve_equals_qr_solve() {
        let a = Matrix::from_rows(&[
            vec![1.0, 2.0],
            vec![2.0, 0.5],
            vec![-1.0, 1.0],
            vec![0.0, 3.0],
        ]);
        let b = vec![1.0, 2.0, 3.0, 4.0];
        let qr = QrFactorization::new(&a).unwrap();
        let x1 = qr.solve(&b).unwrap();
        let x2 = qr.pseudo_inverse().unwrap().matvec(&b).unwrap();
        assert!(vector::max_abs_diff(&x1, &x2) < 1e-10);
    }

    #[test]
    fn rank_deficient_is_reported() {
        // Second column is a multiple of the first.
        let a = Matrix::from_columns(&[vec![1.0, 2.0, 3.0], vec![2.0, 4.0, 6.0]]);
        let qr = QrFactorization::new(&a).unwrap();
        assert!(matches!(
            qr.solve(&[1.0, 2.0, 3.0]),
            Err(LinalgError::RankDeficient { .. })
        ));
    }

    #[test]
    fn shape_errors() {
        let wide = Matrix::zeros(2, 3);
        assert!(matches!(
            QrFactorization::new(&wide),
            Err(LinalgError::DimensionMismatch(_))
        ));
        assert!(matches!(
            QrFactorization::new(&Matrix::zeros(0, 0)),
            Err(LinalgError::Empty)
        ));
        let a = Matrix::zeros(2, 2);
        let qr = QrFactorization::new(&Matrix::from_columns(&[
            vec![1.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0],
        ]))
        .unwrap();
        assert!(qr.solve(&[1.0, 2.0]).is_err());
        assert!(qr.solve_matrix(&a).is_err());
    }

    #[test]
    fn square_system_solves_exactly() {
        let a = Matrix::from_rows(&[vec![4.0, 1.0], vec![1.0, 3.0]]);
        let x = QrFactorization::new(&a)
            .unwrap()
            .solve(&[1.0, 2.0])
            .unwrap();
        // Verify A x = b.
        let b = a.matvec(&x).unwrap();
        assert!(vector::max_abs_diff(&b, &[1.0, 2.0]) < 1e-12);
    }
}

//! # affinity-linalg
//!
//! Dense linear-algebra substrate for the AFFINITY framework.
//!
//! The AFFINITY paper (Sathe & Aberer, ICDE 2013) relies on a small set of
//! numerical kernels:
//!
//! * least-squares solves against tall-skinny `m×3` systems (affine
//!   relationships, Sec. 4 of the paper) — [`qr`] implements Householder QR
//!   and the derived pseudo-inverse;
//! * singular values of `m×4` concatenations (the LSFD metric, Def. 1) —
//!   [`eigen`] provides a cyclic Jacobi eigensolver applied to Gram
//!   matrices, and [`svd`] exposes singular values and dominant singular
//!   vectors;
//! * the dominant left singular vector of a cluster-member matrix (AFCLST
//!   update step, Alg. 1) — [`svd::dominant_left_singular_vector`] runs a
//!   power iteration that only touches the matrix through matrix-vector
//!   products, so the `m×m` Gram matrix is never formed.
//!
//! Everything is implemented from scratch on plain `f64` slices; matrices
//! are column-major because AFFINITY's data matrices store one time series
//! per column and the hot kernels stream whole columns.
//!
//! ```
//! use affinity_linalg::{Matrix, qr::least_squares};
//!
//! // Fit y = 2x + 1 exactly.
//! let design = Matrix::from_columns(&[vec![1.0, 2.0, 3.0], vec![1.0, 1.0, 1.0]]);
//! let rhs = Matrix::from_columns(&[vec![3.0, 5.0, 7.0]]);
//! let theta = least_squares(&design, &rhs).unwrap();
//! assert!((theta.get(0, 0) - 2.0).abs() < 1e-12);
//! assert!((theta.get(1, 0) - 1.0).abs() < 1e-12);
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod cholesky;
pub mod eigen;
pub mod error;
pub mod matrix;
pub mod qr;
pub mod svd;
pub mod vector;

pub use error::LinalgError;
pub use matrix::Matrix;

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, LinalgError>;

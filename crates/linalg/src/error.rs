//! Error type shared by all linear-algebra kernels.

use std::fmt;

/// Errors produced by the linear-algebra substrate.
///
/// The kernels are written for the shapes AFFINITY produces (tall-skinny
/// least squares, small symmetric eigenproblems), so most errors indicate a
/// caller bug (dimension mismatch) or genuinely degenerate input
/// (rank-deficient design matrix, non-positive-definite Gram matrix).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Operand shapes are incompatible, e.g. multiplying `a×b` by `c×d`
    /// with `b != c`. Carries a human-readable description.
    DimensionMismatch(String),
    /// A matrix expected to have full column rank was (numerically)
    /// rank-deficient; `pivot` is the offending column.
    RankDeficient {
        /// Column index at which the factorization broke down.
        pivot: usize,
    },
    /// A matrix expected to be symmetric positive definite was not.
    NotPositiveDefinite,
    /// An iterative method failed to converge within its iteration budget.
    NoConvergence {
        /// Iterations performed before giving up.
        iterations: usize,
    },
    /// The operation requires a non-empty matrix or vector.
    Empty,
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch(msg) => write!(f, "dimension mismatch: {msg}"),
            LinalgError::RankDeficient { pivot } => {
                write!(f, "matrix is rank deficient at column {pivot}")
            }
            LinalgError::NotPositiveDefinite => {
                write!(f, "matrix is not positive definite")
            }
            LinalgError::NoConvergence { iterations } => {
                write!(f, "iteration did not converge after {iterations} steps")
            }
            LinalgError::Empty => write!(f, "operation requires non-empty input"),
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = LinalgError::DimensionMismatch("2x3 * 4x5".into());
        assert!(e.to_string().contains("2x3 * 4x5"));
        let e = LinalgError::RankDeficient { pivot: 2 };
        assert!(e.to_string().contains("column 2"));
        let e = LinalgError::NoConvergence { iterations: 30 };
        assert!(e.to_string().contains("30"));
        assert!(LinalgError::NotPositiveDefinite
            .to_string()
            .contains("positive"));
        assert!(LinalgError::Empty.to_string().contains("non-empty"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            LinalgError::RankDeficient { pivot: 1 },
            LinalgError::RankDeficient { pivot: 1 }
        );
        assert_ne!(
            LinalgError::RankDeficient { pivot: 1 },
            LinalgError::NotPositiveDefinite
        );
    }
}

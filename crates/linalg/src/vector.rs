//! Primitive vector kernels on `&[f64]` slices.
//!
//! These free functions are the innermost loops of the whole framework:
//! every statistical measure, every least-squares solve and every power
//! iteration bottoms out in dot products and axpy updates. They are kept
//! branch-free and slice-based so the compiler can vectorize them.

/// Exact IEEE comparison against zero (true for both `+0.0` and `-0.0`,
/// false for NaN).
///
/// The deterministic kernels deliberately branch on *exact* zero — "did
/// `normalize` find any signal at all", "is this coefficient
/// structurally absent" — never on an epsilon, because the bit-identity
/// guarantees depend on taking the same branch on every run. This
/// helper names that intent; afflint's `float-eq` rule flags any bare
/// `== 0.0` so deliberate exact guards are distinguishable from
/// accidental float equality.
#[inline]
#[must_use]
pub fn exactly_zero(x: f64) -> bool {
    // afflint: allow(float-eq) -- the one sanctioned exact-zero comparison; every guard routes through here so the intent is named
    x == 0.0
}

/// Dot product `xᵀy`.
///
/// # Panics
/// Panics if the slices have different lengths (callers control shapes).
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    let mut acc = 0.0;
    for (a, b) in x.iter().zip(y.iter()) {
        acc += a * b;
    }
    acc
}

/// Euclidean norm `‖x‖₂`, computed with scaling to avoid overflow for
/// large magnitudes.
#[inline]
pub fn norm(x: &[f64]) -> f64 {
    let max = x.iter().fold(0.0f64, |m, v| m.max(v.abs()));
    if exactly_zero(max) || !max.is_finite() {
        return if max.is_nan() { f64::NAN } else { max };
    }
    let mut acc = 0.0;
    for v in x {
        let s = v / max;
        acc += s * s;
    }
    max * acc.sqrt()
}

/// Sum of all elements.
#[inline]
pub fn sum(x: &[f64]) -> f64 {
    x.iter().sum()
}

/// Arithmetic mean; `0.0` for an empty slice.
#[inline]
pub fn mean(x: &[f64]) -> f64 {
    if x.is_empty() {
        0.0
    } else {
        sum(x) / x.len() as f64
    }
}

/// In-place `y ← a·x + y`.
#[inline]
pub fn axpy(a: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += a * xi;
    }
}

/// In-place scale `x ← a·x`.
#[inline]
pub fn scale(a: f64, x: &mut [f64]) {
    for v in x {
        *v *= a;
    }
}

/// Normalize `x` to unit Euclidean norm in place.
///
/// Returns the original norm. A zero vector is left unchanged and `0.0`
/// is returned, letting callers detect degenerate input.
#[inline]
pub fn normalize(x: &mut [f64]) -> f64 {
    let n = norm(x);
    if n > 0.0 {
        scale(1.0 / n, x);
    }
    n
}

/// Subtract the mean from every element in place; returns the mean.
///
/// This is the "zero-mean counterpart" operation used by the LSFD metric
/// (paper Def. 1) and by covariance computation.
#[inline]
pub fn center(x: &mut [f64]) -> f64 {
    let m = mean(x);
    for v in x.iter_mut() {
        *v -= m;
    }
    m
}

/// Population variance `(1/n)·Σ (x_i − mean)²`.
#[inline]
pub fn variance(x: &[f64]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    let m = mean(x);
    let mut acc = 0.0;
    for v in x {
        let d = v - m;
        acc += d * d;
    }
    acc / x.len() as f64
}

/// Population covariance `(1/n)·Σ (x_i − x̄)(y_i − ȳ)`.
#[inline]
pub fn covariance(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "covariance: length mismatch");
    if x.is_empty() {
        return 0.0;
    }
    let mx = mean(x);
    let my = mean(y);
    let mut acc = 0.0;
    for (a, b) in x.iter().zip(y.iter()) {
        acc += (a - mx) * (b - my);
    }
    acc / x.len() as f64
}

/// Pearson correlation coefficient; `0.0` when either series is constant
/// (zero variance), matching the convention used throughout the framework.
#[inline]
pub fn correlation(x: &[f64], y: &[f64]) -> f64 {
    let c = covariance(x, y);
    let d = (variance(x) * variance(y)).sqrt();
    if d > 0.0 {
        c / d
    } else {
        0.0
    }
}

/// Maximum absolute difference between two equally long slices.
#[inline]
pub fn max_abs_diff(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "max_abs_diff: length mismatch");
    x.iter()
        .zip(y.iter())
        .fold(0.0f64, |m, (a, b)| m.max((a - b).abs()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn norm_is_scale_safe() {
        // Would overflow if squared naively.
        let big = 1e200;
        let n = norm(&[big, big]);
        assert!((n - big * std::f64::consts::SQRT_2).abs() / n < 1e-14);
        assert_eq!(norm(&[0.0, 0.0]), 0.0);
        assert_eq!(norm(&[]), 0.0);
    }

    #[test]
    fn mean_and_center() {
        let mut x = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&x), 2.5);
        let m = center(&mut x);
        assert_eq!(m, 2.5);
        assert!(mean(&x).abs() < 1e-15);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn axpy_and_scale() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
        scale(0.5, &mut y);
        assert_eq!(y, vec![3.5, 4.5]);
    }

    #[test]
    fn normalize_unit_and_zero() {
        let mut x = vec![3.0, 4.0];
        let n = normalize(&mut x);
        assert_eq!(n, 5.0);
        assert!((norm(&x) - 1.0).abs() < 1e-15);
        let mut z = vec![0.0, 0.0];
        assert_eq!(normalize(&mut z), 0.0);
        assert_eq!(z, vec![0.0, 0.0]);
    }

    #[test]
    fn variance_covariance_known_values() {
        let x = [1.0, 2.0, 3.0, 4.0];
        // population variance of 1..4 = 1.25
        assert!((variance(&x) - 1.25).abs() < 1e-15);
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((covariance(&x, &y) - 2.5).abs() < 1e-15);
        assert!((correlation(&x, &y) - 1.0).abs() < 1e-12);
        let yn: Vec<f64> = y.iter().map(|v| -v).collect();
        assert!((correlation(&x, &yn) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn correlation_of_constant_is_zero() {
        let x = [5.0, 5.0, 5.0];
        let y = [1.0, 2.0, 3.0];
        assert_eq!(correlation(&x, &y), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(covariance(&[], &[]), 0.0);
    }

    #[test]
    fn max_abs_diff_works() {
        assert_eq!(max_abs_diff(&[1.0, 5.0], &[2.0, 3.0]), 2.0);
    }
}

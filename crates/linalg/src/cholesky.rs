//! Cholesky factorization for small symmetric positive-definite systems.
//!
//! Used as an alternative least-squares path (normal equations) and by
//! tests as an independent oracle for the QR solver.

// Index-based loops over matrix coordinates are the clearest notation
// for these kernels.
#![allow(clippy::needless_range_loop)]
use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::Result;

/// Lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factor a symmetric positive-definite matrix.
    ///
    /// # Errors
    /// * [`LinalgError::DimensionMismatch`] if not square;
    /// * [`LinalgError::Empty`] if empty;
    /// * [`LinalgError::NotPositiveDefinite`] if a pivot is non-positive.
    pub fn new(a: &Matrix) -> Result<Self> {
        if a.is_empty() {
            return Err(LinalgError::Empty);
        }
        if a.rows() != a.cols() {
            return Err(LinalgError::DimensionMismatch(format!(
                "cholesky on {}x{}",
                a.rows(),
                a.cols()
            )));
        }
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for j in 0..n {
            let mut d = a.get(j, j);
            for k in 0..j {
                let ljk = l.get(j, k);
                d -= ljk * ljk;
            }
            if d <= 0.0 {
                return Err(LinalgError::NotPositiveDefinite);
            }
            let ljj = d.sqrt();
            l.set(j, j, ljj);
            for i in j + 1..n {
                let mut s = a.get(i, j);
                for k in 0..j {
                    s -= l.get(i, k) * l.get(j, k);
                }
                l.set(i, j, s / ljj);
            }
        }
        Ok(Cholesky { l })
    }

    /// The lower-triangular factor.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Solve `A x = b` via forward/back substitution.
    ///
    /// # Errors
    /// [`LinalgError::DimensionMismatch`] if `b.len()` differs from the
    /// system size.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.l.rows();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch(format!(
                "cholesky solve: rhs length {} against size {n}",
                b.len()
            )));
        }
        // L y = b
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut acc = b[i];
            for k in 0..i {
                acc -= self.l.get(i, k) * y[k];
            }
            y[i] = acc / self.l.get(i, i);
        }
        // Lᵀ x = y
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut acc = y[i];
            for k in i + 1..n {
                acc -= self.l.get(k, i) * x[k];
            }
            x[i] = acc / self.l.get(i, i);
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factors_known_spd() {
        let a = Matrix::from_rows(&[vec![4.0, 2.0], vec![2.0, 3.0]]);
        let ch = Cholesky::new(&a).unwrap();
        let recon = ch.l().matmul(&ch.l().transpose()).unwrap();
        assert!(recon.max_abs_diff(&a) < 1e-12);
    }

    #[test]
    fn solve_matches_direct() {
        let a = Matrix::from_rows(&[
            vec![6.0, 2.0, 1.0],
            vec![2.0, 5.0, 2.0],
            vec![1.0, 2.0, 4.0],
        ]);
        let b = vec![1.0, -2.0, 3.0];
        let x = Cholesky::new(&a).unwrap().solve(&b).unwrap();
        let bx = a.matvec(&x).unwrap();
        for (u, v) in bx.iter().zip(b.iter()) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]);
        assert!(matches!(
            Cholesky::new(&a),
            Err(LinalgError::NotPositiveDefinite)
        ));
    }

    #[test]
    fn rejects_bad_shapes() {
        assert!(Cholesky::new(&Matrix::zeros(2, 3)).is_err());
        assert!(Cholesky::new(&Matrix::zeros(0, 0)).is_err());
        let ch = Cholesky::new(&Matrix::identity(2)).unwrap();
        assert!(ch.solve(&[1.0]).is_err());
    }

    #[test]
    fn identity_solve_is_identity() {
        let ch = Cholesky::new(&Matrix::identity(3)).unwrap();
        let x = ch.solve(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
    }
}

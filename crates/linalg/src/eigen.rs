//! Cyclic Jacobi eigensolver for small symmetric matrices.
//!
//! The LSFD metric (paper Def. 1) needs the singular values of an `m×4`
//! matrix, which are the square roots of the eigenvalues of its `4×4` Gram
//! matrix. Jacobi rotation is the method of choice at this size: simple,
//! backward-stable and accurate for tiny eigenvalues relative to the norm.

use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::Result;

/// Result of a symmetric eigendecomposition `A = V Λ Vᵀ`.
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    /// Eigenvalues in descending order.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors; column `i` pairs with `values[i]`.
    pub vectors: Matrix,
}

/// Maximum number of full Jacobi sweeps before giving up.
const MAX_SWEEPS: usize = 64;

/// Eigendecomposition of a symmetric matrix via cyclic Jacobi rotations.
///
/// Symmetry is assumed, not checked: the strictly lower triangle is read
/// together with the upper one through symmetric updates. Eigenvalues are
/// returned in descending order with matching eigenvector columns.
///
/// # Errors
/// * [`LinalgError::DimensionMismatch`] if `a` is not square;
/// * [`LinalgError::Empty`] for an empty matrix;
/// * [`LinalgError::NoConvergence`] if off-diagonals do not vanish after
///   `MAX_SWEEPS` (64) sweeps — practically unreachable for sane input.
pub fn symmetric_eigen(a: &Matrix) -> Result<SymmetricEigen> {
    if a.is_empty() {
        return Err(LinalgError::Empty);
    }
    if a.rows() != a.cols() {
        return Err(LinalgError::DimensionMismatch(format!(
            "symmetric_eigen on {}x{}",
            a.rows(),
            a.cols()
        )));
    }
    let n = a.rows();
    let mut m = a.clone();
    let mut v = Matrix::identity(n);

    let off = |m: &Matrix| -> f64 {
        let mut s = 0.0;
        for i in 0..n {
            for j in i + 1..n {
                s += m.get(i, j) * m.get(i, j);
            }
        }
        s
    };
    let norm = m.frobenius_norm().max(f64::MIN_POSITIVE);
    let tol = (norm * 1e-15) * (norm * 1e-15) * n as f64;

    let mut sweeps = 0;
    while off(&m) > tol {
        sweeps += 1;
        if sweeps > MAX_SWEEPS {
            return Err(LinalgError::NoConvergence { iterations: sweeps });
        }
        for p in 0..n {
            for q in p + 1..n {
                let apq = m.get(p, q);
                if apq.abs() <= norm * 1e-18 {
                    continue;
                }
                let app = m.get(p, p);
                let aqq = m.get(q, q);
                // Classic Jacobi rotation angle.
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Update rows/columns p and q of the symmetric matrix.
                for k in 0..n {
                    let akp = m.get(k, p);
                    let akq = m.get(k, q);
                    m.set(k, p, c * akp - s * akq);
                    m.set(k, q, s * akp + c * akq);
                }
                for k in 0..n {
                    let apk = m.get(p, k);
                    let aqk = m.get(q, k);
                    m.set(p, k, c * apk - s * aqk);
                    m.set(q, k, s * apk + c * aqk);
                }
                // Accumulate eigenvectors.
                for k in 0..n {
                    let vkp = v.get(k, p);
                    let vkq = v.get(k, q);
                    v.set(k, p, c * vkp - s * vkq);
                    v.set(k, q, s * vkp + c * vkq);
                }
            }
        }
    }

    // Extract and sort descending.
    let mut order: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| m.get(i, i)).collect();
    order.sort_by(|&i, &j| diag[j].partial_cmp(&diag[i]).unwrap());
    let values: Vec<f64> = order.iter().map(|&i| diag[i]).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (dst, &src) in order.iter().enumerate() {
        let col: Vec<f64> = (0..n).map(|r| v.get(r, src)).collect();
        vectors.col_mut(dst).copy_from_slice(&col);
    }
    Ok(SymmetricEigen { values, vectors })
}

/// Eigenvalues only, in descending order.
///
/// # Errors
/// Same as [`symmetric_eigen`].
pub fn symmetric_eigenvalues(a: &Matrix) -> Result<Vec<f64>> {
    Ok(symmetric_eigen(a)?.values)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b}");
    }

    #[test]
    fn diagonal_matrix_is_its_own_decomposition() {
        let a = Matrix::from_rows(&[
            vec![3.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 2.0],
        ]);
        let e = symmetric_eigen(&a).unwrap();
        assert_eq!(e.values.len(), 3);
        assert_close(e.values[0], 3.0, 1e-12);
        assert_close(e.values[1], 2.0, 1e-12);
        assert_close(e.values[2], 1.0, 1e-12);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
        let e = symmetric_eigen(&a).unwrap();
        assert_close(e.values[0], 3.0, 1e-12);
        assert_close(e.values[1], 1.0, 1e-12);
        // Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
        let v0 = e.vectors.col(0);
        assert_close(v0[0].abs(), std::f64::consts::FRAC_1_SQRT_2, 1e-10);
        assert_close(v0[0], v0[1], 1e-10);
    }

    #[test]
    fn reconstruction_holds() {
        let a = Matrix::from_rows(&[
            vec![4.0, 1.0, -2.0, 0.5],
            vec![1.0, 3.0, 0.0, 1.0],
            vec![-2.0, 0.0, 5.0, -1.0],
            vec![0.5, 1.0, -1.0, 2.0],
        ]);
        let e = symmetric_eigen(&a).unwrap();
        // A ≈ V Λ Vᵀ
        let mut lam = Matrix::zeros(4, 4);
        for i in 0..4 {
            lam.set(i, i, e.values[i]);
        }
        let recon = e
            .vectors
            .matmul(&lam)
            .unwrap()
            .matmul(&e.vectors.transpose())
            .unwrap();
        assert!(recon.max_abs_diff(&a) < 1e-10);
        // V orthonormal.
        let vtv = e.vectors.gram();
        assert!(vtv.max_abs_diff(&Matrix::identity(4)) < 1e-12);
    }

    #[test]
    fn trace_and_det_invariants() {
        let a = Matrix::from_rows(&[vec![2.0, -1.0], vec![-1.0, 2.0]]);
        let vals = symmetric_eigenvalues(&a).unwrap();
        assert_close(vals.iter().sum::<f64>(), 4.0, 1e-12);
        assert_close(vals.iter().product::<f64>(), 3.0, 1e-12);
    }

    #[test]
    fn rank_one_gram_has_one_nonzero_eigenvalue() {
        let x = Matrix::from_columns(&[vec![1.0, 2.0, 3.0], vec![2.0, 4.0, 6.0]]);
        let g = x.gram();
        let vals = symmetric_eigenvalues(&g).unwrap();
        assert!(vals[0] > 1.0);
        assert!(vals[1].abs() < 1e-10 * vals[0]);
    }

    #[test]
    fn shape_errors() {
        assert!(symmetric_eigen(&Matrix::zeros(2, 3)).is_err());
        assert!(symmetric_eigen(&Matrix::zeros(0, 0)).is_err());
    }

    #[test]
    fn one_by_one() {
        let a = Matrix::from_rows(&[vec![7.5]]);
        let e = symmetric_eigen(&a).unwrap();
        assert_eq!(e.values, vec![7.5]);
    }
}

//! Property tests for the solvers: least-squares optimality conditions
//! and factorization identities on arbitrary (well-scaled) inputs.

use affinity_linalg::qr::QrFactorization;
use affinity_linalg::{vector, LinalgError, Matrix};
use proptest::prelude::*;

fn tall_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(proptest::collection::vec(-10.0f64..10.0, rows), cols..=cols)
        .prop_map(|cols| Matrix::from_columns(&cols))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The LS residual is orthogonal to every design column (normal
    /// equations), for any full-rank design.
    #[test]
    fn residual_orthogonality(
        a in tall_matrix(20, 3),
        b in proptest::collection::vec(-10.0f64..10.0, 20),
    ) {
        let qr = QrFactorization::new(&a).unwrap();
        match qr.solve(&b) {
            Ok(x) => {
                let fitted = a.matvec(&x).unwrap();
                let r: Vec<f64> = b.iter().zip(&fitted).map(|(u, v)| u - v).collect();
                let scale = vector::norm(&b).max(1.0) * a.frobenius_norm().max(1.0);
                for c in 0..a.cols() {
                    prop_assert!(vector::dot(&r, a.col(c)).abs() <= 1e-9 * scale);
                }
            }
            Err(LinalgError::RankDeficient { .. }) => {} // legal for random input
            Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
        }
    }

    /// Q from the factorization has orthonormal columns and QR = A.
    #[test]
    fn qr_identities(a in tall_matrix(12, 4)) {
        let qr = QrFactorization::new(&a).unwrap();
        let q = qr.q_thin();
        let qtq = q.gram();
        prop_assert!(qtq.max_abs_diff(&Matrix::identity(4)) < 1e-10);
        let recon = q.matmul(&qr.r()).unwrap();
        prop_assert!(recon.max_abs_diff(&a) < 1e-9 * a.frobenius_norm().max(1.0));
    }

    /// Singular values are permutation/sign invariants: σ(A) = σ(AP) for
    /// a column swap, and Σσ² = ‖A‖_F².
    #[test]
    fn singular_value_invariants(a in tall_matrix(10, 3)) {
        use affinity_linalg::svd::singular_values;
        let sv = singular_values(&a).unwrap();
        let swapped = Matrix::from_columns(&[
            a.col(1).to_vec(), a.col(0).to_vec(), a.col(2).to_vec(),
        ]);
        let sv2 = singular_values(&swapped).unwrap();
        let f = a.frobenius_norm();
        let ss: f64 = sv.iter().map(|s| s * s).sum();
        prop_assert!((ss - f * f).abs() <= 1e-8 * (f * f).max(1.0));
        for (x, y) in sv.iter().zip(sv2.iter()) {
            prop_assert!((x - y).abs() <= 1e-8 * f.max(1.0));
        }
    }
}

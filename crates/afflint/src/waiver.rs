//! Inline waiver parsing and matching.
//!
//! Syntax, inside any comment:
//!
//! ```text
//! // afflint: allow(rule[, rule...]) -- justification text
//! ```
//!
//! A waiver silences matching findings on the comment's own line(s)
//! and on the line immediately after it ends, so it can ride at the
//! end of the offending line or sit alone above it. The justification
//! is mandatory: a waiver without a non-empty `--`-separated tail, or
//! naming an unknown rule, produces a `waiver` finding — which cannot
//! itself be waived. `afflint --list-waivers` prints the inventory so
//! reviews can audit every accepted exception.

use crate::lexer::Comment;
use crate::{Finding, Rule};

/// One well-formed waiver.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line the waiver comment starts on.
    pub line: u32,
    /// Last line the waiver applies to (comment end + 1).
    pub last_covered_line: u32,
    /// Rules this waiver silences.
    pub rules: Vec<Rule>,
    /// The mandatory justification.
    pub justification: String,
}

const MARKER: &str = "afflint: allow(";

/// Extract waivers (and malformed-waiver findings) from a file's
/// comments.
pub fn collect(file: &str, comments: &[Comment]) -> (Vec<Waiver>, Vec<Finding>) {
    let mut waivers = Vec::new();
    let mut findings = Vec::new();
    for c in comments {
        // Doc comments describe the waiver syntax; only plain `//` and
        // `/* */` comments can carry a live waiver.
        let doc = c.text.starts_with("///")
            || c.text.starts_with("//!")
            || c.text.starts_with("/**")
            || c.text.starts_with("/*!");
        if doc {
            continue;
        }
        let Some(start) = c.text.find(MARKER) else {
            continue;
        };
        let after = c.text.get(start + MARKER.len()..).unwrap_or("");
        let Some(close) = after.find(')') else {
            findings.push(malformed(file, c.line, "unterminated allow(...) list"));
            continue;
        };
        let list = after.get(..close).unwrap_or("");
        let tail = after.get(close + 1..).unwrap_or("");

        let mut rules = Vec::new();
        let mut bad_name = None;
        for name in list.split(',') {
            let name = name.trim();
            if name.is_empty() {
                continue;
            }
            match Rule::from_name(name) {
                Some(r) => rules.push(r),
                None => bad_name = Some(name.to_string()),
            }
        }
        if let Some(bad) = bad_name {
            findings.push(malformed(
                file,
                c.line,
                &format!("unknown rule `{bad}` in waiver (known: panic, safety, float-eq, lock-io, len-arith, relaxed)"),
            ));
            continue;
        }
        if rules.is_empty() {
            findings.push(malformed(file, c.line, "waiver names no rules"));
            continue;
        }
        let justification = match tail.trim_start().strip_prefix("--") {
            Some(j) if !j.trim().is_empty() => j.trim().to_string(),
            _ => {
                findings.push(malformed(
                    file,
                    c.line,
                    "waiver has no justification — write `-- <why this is sound>`",
                ));
                continue;
            }
        };
        waivers.push(Waiver {
            file: file.to_string(),
            line: c.line,
            last_covered_line: c.end_line.saturating_add(1),
            rules,
            justification,
        });
    }
    (waivers, findings)
}

fn malformed(file: &str, line: u32, msg: &str) -> Finding {
    Finding {
        file: file.to_string(),
        line,
        rule: Rule::Waiver,
        message: msg.to_string(),
    }
}

/// Does any waiver cover this finding?
pub fn is_waived(waivers: &[Waiver], f: &Finding) -> bool {
    waivers
        .iter()
        .any(|w| w.rules.contains(&f.rule) && f.line >= w.line && f.line <= w.last_covered_line)
}

//! Path classification: which rule families apply to which files.
//!
//! R2/R3/R4/R6 and waiver validation run on every workspace `.rs`
//! file. R1 (panic-freedom) and R5 (checked length arithmetic) are
//! scoped to the modules that untrusted bytes actually reach — the
//! storage persist/journal/column readers, the QL parser/session, the
//! serve server/queue, and the model decode paths — where a panic is a
//! remote crash, not a programmer error. To put a new module under
//! R1/R5 protection, add its path here; to add a whole rule, see the
//! "Static analysis" section of ARCHITECTURE.md.

/// Directories walked from the workspace root.
pub const WALK_ROOTS: &[&str] = &["crates", "tests", "examples", "vendor"];

/// Directory names skipped anywhere in the walk. `fixtures` holds the
/// afflint self-test corpus — deliberately-bad snippets that must be
/// lintable on demand but not part of the workspace gate.
pub const SKIP_DIRS: &[&str] = &["target", "fixtures", ".git"];

/// R1: untrusted-input modules — network bytes (serve/ql) or possibly
/// corrupt disk bytes (storage readers, model decode) flow through
/// these; every reachable panic is a crash an adversary or a bad
/// sector can trigger.
const UNTRUSTED: &[&str] = &[
    "crates/storage/src/snapshot.rs",
    "crates/storage/src/journal.rs",
    "crates/storage/src/store.rs",
    "crates/storage/src/layout.rs",
    "crates/ql/src/parser.rs",
    "crates/ql/src/session.rs",
    "crates/ql/src/cancel.rs",
    "crates/serve/src/server.rs",
    "crates/serve/src/queue.rs",
    "crates/coord/src/proto.rs",
    "crates/coord/src/backend.rs",
    "crates/coord/src/server.rs",
    "crates/core/src/persist.rs",
    "crates/scape/src/persist.rs",
    "crates/shard/src/persist.rs",
    "crates/stream/src/persist.rs",
];

/// R5: reader modules that parse length-prefixed headers — sizes read
/// from bytes must flow through `SizeCheck`/`checked_*`, never raw
/// `*`/`+` that can overflow into a bogus allocation.
const READERS: &[&str] = &[
    "crates/storage/src/store.rs",
    "crates/coord/src/proto.rs",
    "crates/storage/src/snapshot.rs",
    "crates/storage/src/journal.rs",
    "crates/storage/src/layout.rs",
    "crates/core/src/persist.rs",
    "crates/scape/src/persist.rs",
    "crates/shard/src/persist.rs",
    "crates/stream/src/persist.rs",
];

/// Per-file rule applicability.
#[derive(Debug, Clone, Copy, Default)]
pub struct FileClass {
    /// R1 applies (outside `#[cfg(test)]`/`#[test]` regions).
    pub untrusted: bool,
    /// R5 applies (outside test regions).
    pub reader: bool,
    /// File is test code as a whole (`tests/` trees): R3 is exempt —
    /// bit-determinism suites compare exact values by design.
    pub test_file: bool,
}

/// Classify a workspace-relative path (always `/`-separated).
pub fn classify(rel_path: &str) -> FileClass {
    FileClass {
        untrusted: UNTRUSTED.contains(&rel_path),
        reader: READERS.contains(&rel_path),
        test_file: rel_path.starts_with("tests/") || rel_path.contains("/tests/"),
    }
}

//! A hand-rolled, zero-dependency Rust tokenizer.
//!
//! The lexer exists so the rule passes can reason about *code* without
//! being fooled by comments, strings, raw strings, byte strings, or char
//! literals — the places `grep`-grade linting falls over. It is not a
//! full Rust lexer: it produces a flat token stream (identifiers,
//! numbers split into int/float, string-ish literals, lifetimes, and
//! punctuation with maximal-munch multi-char operators) plus a parallel
//! list of comments with line spans, which is exactly what the rules
//! need and nothing more.
//!
//! Robustness contract (proptested in `tests/lexer_prop.rs`): `lex`
//! never panics on any input, and content inside strings, raw strings,
//! char literals, and comments never surfaces as code tokens. All
//! cursor movement is bounds-checked via `Cursor::peek`; there is no
//! slice indexing anywhere in this module.

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unsafe`, `let`, `unwrap`, ...).
    Ident,
    /// Lifetime (`'a`, `'static`) — distinguished from char literals.
    Lifetime,
    /// Integer literal, including hex/octal/binary forms.
    Int,
    /// Float literal (`1.0`, `2e9`, `1f64`).
    Float,
    /// Any string-like literal: `"…"`, `r#"…"#`, `b"…"`, `c"…"`.
    Str,
    /// Char or byte-char literal: `'x'`, `b'\n'`.
    Char,
    /// Punctuation / operator, possibly multi-char (`==`, `::`, `->`).
    Punct,
}

/// One code token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// Lexeme kind.
    pub kind: TokKind,
    /// Lexeme text. For `Str` tokens this is the raw literal body and
    /// is never consulted by rules; for idents/puncts it is the lexeme.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
}

/// One comment (line `//…` or block `/*…*/`, doc forms included).
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (== `line` for line comments).
    pub end_line: u32,
    /// Comment text including its delimiters.
    pub text: String,
}

/// Result of lexing one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order, off to the side of the token stream.
    pub comments: Vec<Comment>,
}

struct Cursor {
    chars: Vec<char>,
    pos: usize,
    line: u32,
}

impl Cursor {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.pos
            .checked_add(ahead)
            .and_then(|i| self.chars.get(i))
            .copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Multi-char operators, longest first so maximal munch works by
/// trying them in order.
const MULTI_PUNCT: &[&str] = &[
    "..=", "...", "<<=", ">>=", "==", "!=", "<=", ">=", "&&", "||", "::", "->", "=>", "..", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

/// Lex `src` into tokens + comments. Never panics; invalid input
/// degrades to punctuation tokens, never into lost string/comment
/// boundaries that would let quoted text masquerade as code.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
    };
    let mut out = Lexed::default();

    while let Some(c) = cur.peek(0) {
        if c == '\n' || c.is_whitespace() {
            cur.bump();
            continue;
        }
        if c == '/' && cur.peek(1) == Some('/') {
            lex_line_comment(&mut cur, &mut out);
            continue;
        }
        if c == '/' && cur.peek(1) == Some('*') {
            lex_block_comment(&mut cur, &mut out);
            continue;
        }
        if c == '"' {
            lex_string(&mut cur, &mut out, 0);
            continue;
        }
        if c == '\'' {
            lex_quote(&mut cur, &mut out);
            continue;
        }
        if is_ident_start(c) {
            lex_ident_or_prefixed(&mut cur, &mut out);
            continue;
        }
        if c.is_ascii_digit() {
            lex_number(&mut cur, &mut out);
            continue;
        }
        lex_punct(&mut cur, &mut out);
    }
    out
}

fn lex_line_comment(cur: &mut Cursor, out: &mut Lexed) {
    let line = cur.line;
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        if c == '\n' {
            break;
        }
        text.push(c);
        cur.bump();
    }
    out.comments.push(Comment {
        line,
        end_line: line,
        text,
    });
}

fn lex_block_comment(cur: &mut Cursor, out: &mut Lexed) {
    let line = cur.line;
    let mut text = String::new();
    let mut depth = 0usize;
    while let Some(c) = cur.peek(0) {
        if c == '/' && cur.peek(1) == Some('*') {
            depth += 1;
            text.push_str("/*");
            cur.bump();
            cur.bump();
            continue;
        }
        if c == '*' && cur.peek(1) == Some('/') {
            text.push_str("*/");
            cur.bump();
            cur.bump();
            depth = depth.saturating_sub(1);
            if depth == 0 {
                break;
            }
            continue;
        }
        text.push(c);
        cur.bump();
    }
    out.comments.push(Comment {
        line,
        end_line: cur.line,
        text,
    });
}

/// Lex a (non-raw) string literal body; `hashes` is unused here but
/// keeps the signature parallel with [`lex_raw_string`].
fn lex_string(cur: &mut Cursor, out: &mut Lexed, _hashes: usize) {
    let line = cur.line;
    let mut text = String::new();
    cur.bump(); // opening quote
    while let Some(c) = cur.peek(0) {
        if c == '\\' {
            cur.bump();
            cur.bump(); // escaped char, whatever it is
            continue;
        }
        if c == '"' {
            cur.bump();
            break;
        }
        text.push(c);
        cur.bump();
    }
    out.tokens.push(Token {
        kind: TokKind::Str,
        text,
        line,
    });
}

/// Lex `r"…"` / `r#"…"#` bodies after the prefix ident was consumed.
/// The cursor sits on the first `#` or the opening quote.
fn lex_raw_string(cur: &mut Cursor, out: &mut Lexed) {
    let line = cur.line;
    let mut hashes = 0usize;
    while cur.peek(0) == Some('#') {
        hashes += 1;
        cur.bump();
    }
    if cur.peek(0) != Some('"') {
        // Not actually a raw string (e.g. `r#ident` raw identifier):
        // re-emit the hashes as punctuation and continue normally.
        for _ in 0..hashes {
            out.tokens.push(Token {
                kind: TokKind::Punct,
                text: "#".into(),
                line,
            });
        }
        return;
    }
    cur.bump(); // opening quote
    let mut text = String::new();
    'outer: while let Some(c) = cur.peek(0) {
        if c == '"' {
            // A quote closes the literal only when followed by the
            // right number of hashes.
            let mut ok = true;
            for k in 0..hashes {
                if cur.peek(1 + k) != Some('#') {
                    ok = false;
                    break;
                }
            }
            if ok {
                cur.bump();
                for _ in 0..hashes {
                    cur.bump();
                }
                break 'outer;
            }
        }
        text.push(c);
        cur.bump();
    }
    out.tokens.push(Token {
        kind: TokKind::Str,
        text,
        line,
    });
}

/// `'` starts either a lifetime or a char literal.
fn lex_quote(cur: &mut Cursor, out: &mut Lexed) {
    let line = cur.line;
    match (cur.peek(1), cur.peek(2)) {
        // Escaped char: '\n', '\'', '\u{…}'.
        (Some('\\'), _) => {
            cur.bump(); // '
            cur.bump(); // backslash
            cur.bump(); // escaped char
                        // Consume to the closing quote (covers '\u{1F600}').
            let mut guard = 0usize;
            while let Some(c) = cur.peek(0) {
                guard += 1;
                if c == '\'' || c == '\n' || guard > 12 {
                    break;
                }
                cur.bump();
            }
            if cur.peek(0) == Some('\'') {
                cur.bump();
            }
            out.tokens.push(Token {
                kind: TokKind::Char,
                text: String::new(),
                line,
            });
        }
        // 'x' — a one-char literal.
        (Some(_), Some('\'')) => {
            cur.bump();
            cur.bump();
            cur.bump();
            out.tokens.push(Token {
                kind: TokKind::Char,
                text: String::new(),
                line,
            });
        }
        // 'ident — a lifetime.
        (Some(c), _) if is_ident_start(c) => {
            cur.bump(); // '
            let mut text = String::from("'");
            while let Some(c) = cur.peek(0) {
                if !is_ident_continue(c) {
                    break;
                }
                text.push(c);
                cur.bump();
            }
            out.tokens.push(Token {
                kind: TokKind::Lifetime,
                text,
                line,
            });
        }
        // Lone / malformed quote: emit as punctuation and move on.
        _ => {
            cur.bump();
            out.tokens.push(Token {
                kind: TokKind::Punct,
                text: "'".into(),
                line,
            });
        }
    }
}

fn lex_ident_or_prefixed(cur: &mut Cursor, out: &mut Lexed) {
    let line = cur.line;
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        if !is_ident_continue(c) {
            break;
        }
        text.push(c);
        cur.bump();
    }
    // String-literal prefixes: r"", r#""#, b"", br#""#, c"", cr#""#.
    let is_raw_prefix = matches!(text.as_str(), "r" | "br" | "cr" | "rb");
    let is_plain_prefix = matches!(text.as_str(), "b" | "c");
    match cur.peek(0) {
        Some('"') if is_raw_prefix => {
            lex_raw_string(cur, out);
            return;
        }
        Some('#') if is_raw_prefix => {
            lex_raw_string(cur, out);
            return;
        }
        Some('"') if is_plain_prefix => {
            lex_string(cur, out, 0);
            return;
        }
        Some('\'') if text == "b" => {
            lex_quote(cur, out);
            return;
        }
        _ => {}
    }
    out.tokens.push(Token {
        kind: TokKind::Ident,
        text,
        line,
    });
}

fn lex_number(cur: &mut Cursor, out: &mut Lexed) {
    let line = cur.line;
    let mut text = String::new();
    let mut is_float = false;

    // Radix-prefixed integers can never be floats; hex digits would
    // otherwise confuse the exponent scan (`0x1E`).
    if cur.peek(0) == Some('0') && matches!(cur.peek(1), Some('x' | 'X' | 'o' | 'O' | 'b' | 'B')) {
        text.push(cur.bump().unwrap_or('0'));
        text.push(cur.bump().unwrap_or('0'));
        while let Some(c) = cur.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' {
                text.push(c);
                cur.bump();
            } else {
                break;
            }
        }
        out.tokens.push(Token {
            kind: TokKind::Int,
            text,
            line,
        });
        return;
    }

    while let Some(c) = cur.peek(0) {
        if c.is_ascii_digit() || c == '_' {
            text.push(c);
            cur.bump();
        } else {
            break;
        }
    }
    // Fractional part: `.` followed by a digit (`1..` is a range and
    // `1.max()` is a method call — neither makes this a float).
    if cur.peek(0) == Some('.') {
        match cur.peek(1) {
            Some(c) if c.is_ascii_digit() => {
                is_float = true;
                text.push('.');
                cur.bump();
                while let Some(c) = cur.peek(0) {
                    if c.is_ascii_digit() || c == '_' {
                        text.push(c);
                        cur.bump();
                    } else {
                        break;
                    }
                }
            }
            Some(c) if c == '.' || is_ident_start(c) => {}
            _ => {
                // Trailing-dot float like `1.`
                is_float = true;
                text.push('.');
                cur.bump();
            }
        }
    }
    // Exponent.
    if matches!(cur.peek(0), Some('e' | 'E')) {
        let sign = matches!(cur.peek(1), Some('+' | '-'));
        let digit_at = if sign { 2 } else { 1 };
        if matches!(cur.peek(digit_at), Some(c) if c.is_ascii_digit()) {
            is_float = true;
            text.push(cur.bump().unwrap_or('e'));
            if sign {
                text.push(cur.bump().unwrap_or('+'));
            }
            while let Some(c) = cur.peek(0) {
                if c.is_ascii_digit() || c == '_' {
                    text.push(c);
                    cur.bump();
                } else {
                    break;
                }
            }
        }
    }
    // Type suffix (`1f64`, `3usize`).
    let mut suffix = String::new();
    while let Some(c) = cur.peek(0) {
        if is_ident_continue(c) {
            suffix.push(c);
            cur.bump();
        } else {
            break;
        }
    }
    if suffix == "f32" || suffix == "f64" {
        is_float = true;
    }
    text.push_str(&suffix);
    out.tokens.push(Token {
        kind: if is_float {
            TokKind::Float
        } else {
            TokKind::Int
        },
        text,
        line,
    });
}

fn lex_punct(cur: &mut Cursor, out: &mut Lexed) {
    let line = cur.line;
    for op in MULTI_PUNCT {
        let mut matches = true;
        for (k, oc) in op.chars().enumerate() {
            if cur.peek(k) != Some(oc) {
                matches = false;
                break;
            }
        }
        if matches {
            for _ in 0..op.chars().count() {
                cur.bump();
            }
            out.tokens.push(Token {
                kind: TokKind::Punct,
                text: (*op).into(),
                line,
            });
            return;
        }
    }
    if let Some(c) = cur.bump() {
        out.tokens.push(Token {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
        });
    }
}

//! The six rule families, run over one file's token stream.
//!
//! All rules share a scope prepass that (a) tracks brace depth and (b)
//! marks the token ranges gated behind `#[cfg(test)]` / `#[test]`
//! attributes, because test code is allowed to assert and to compare
//! floats exactly — the invariants protect production paths. Each rule
//! is a linear scan; the whole workspace lints in well under a second.

use crate::config::FileClass;
use crate::lexer::{Comment, Lexed, TokKind, Token};
use crate::{Finding, Rule};

/// Run every applicable rule family over one lexed file.
pub fn run(file: &str, lexed: &Lexed, class: &FileClass) -> Vec<Finding> {
    let ctx = Ctx {
        file,
        toks: &lexed.tokens,
        comments: &lexed.comments,
        in_test: test_regions(&lexed.tokens),
    };
    let mut out = Vec::new();
    if class.untrusted {
        r1_panic(&ctx, &mut out);
    }
    r2_safety(&ctx, &mut out);
    if !class.test_file {
        r3_float_eq(&ctx, &mut out);
    }
    r4_lock_io(&ctx, &mut out);
    if class.reader {
        r5_len_arith(&ctx, &mut out);
    }
    r6_relaxed(&ctx, &mut out);
    out
}

struct Ctx<'a> {
    file: &'a str,
    toks: &'a [Token],
    comments: &'a [Comment],
    in_test: Vec<bool>,
}

impl Ctx<'_> {
    fn tok(&self, i: usize) -> Option<&Token> {
        self.toks.get(i)
    }
    fn kind(&self, i: usize) -> Option<TokKind> {
        self.toks.get(i).map(|t| t.kind)
    }
    fn text(&self, i: usize) -> &str {
        self.toks.get(i).map(|t| t.text.as_str()).unwrap_or("")
    }
    fn is_test(&self, i: usize) -> bool {
        self.in_test.get(i).copied().unwrap_or(false)
    }
    fn finding(&self, out: &mut Vec<Finding>, i: usize, rule: Rule, msg: String) {
        let line = self.tok(i).map(|t| t.line).unwrap_or(0);
        out.push(Finding {
            file: self.file.to_string(),
            line,
            rule,
            message: msg,
        });
    }
}

/// Mark every token inside a `#[cfg(test)]`- or `#[test]`-gated item's
/// brace block. The attribute scan treats any bare `test` identifier
/// inside the attribute brackets as test-gating, which also covers
/// `#[cfg(all(test, ...))]`.
fn test_regions(toks: &[Token]) -> Vec<bool> {
    let mut in_test = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        let is_attr_start = toks.get(i).map(|t| t.text == "#").unwrap_or(false)
            && toks.get(i + 1).map(|t| t.text == "[").unwrap_or(false);
        if !is_attr_start {
            i += 1;
            continue;
        }
        // Scan the attribute's bracket span.
        let mut j = i + 2;
        let mut depth = 1usize;
        let mut gated = false;
        while j < toks.len() && depth > 0 {
            match toks.get(j) {
                Some(t) if t.text == "[" => depth += 1,
                Some(t) if t.text == "]" => depth -= 1,
                Some(t) if t.kind == TokKind::Ident && t.text == "test" => gated = true,
                _ => {}
            }
            j += 1;
        }
        if !gated {
            i = j;
            continue;
        }
        // Find the gated item's body: first `{` before a top-level `;`.
        let mut k = j;
        let mut body_open = None;
        while k < toks.len() {
            match toks.get(k).map(|t| t.text.as_str()) {
                Some("{") => {
                    body_open = Some(k);
                    break;
                }
                Some(";") => break,
                _ => {}
            }
            k += 1;
        }
        if let Some(open) = body_open {
            let mut braces = 0usize;
            let mut m = open;
            while m < toks.len() {
                match toks.get(m).map(|t| t.text.as_str()) {
                    Some("{") => braces += 1,
                    Some("}") => {
                        braces = braces.saturating_sub(1);
                        if braces == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                if let Some(slot) = in_test.get_mut(m) {
                    *slot = true;
                }
                m += 1;
            }
            if let Some(slot) = in_test.get_mut(m) {
                *slot = true;
            }
        }
        i = j;
    }
    in_test
}

/// R1 — panic-freedom in untrusted-input modules.
fn r1_panic(ctx: &Ctx, out: &mut Vec<Finding>) {
    const PANIC_MACROS: &[&str] = &[
        "panic",
        "unreachable",
        "todo",
        "unimplemented",
        "assert",
        "assert_eq",
        "assert_ne",
        "debug_assert",
        "debug_assert_eq",
        "debug_assert_ne",
    ];
    for i in 0..ctx.toks.len() {
        if ctx.is_test(i) {
            continue;
        }
        let t = match ctx.tok(i) {
            Some(t) => t,
            None => continue,
        };
        match t.kind {
            TokKind::Ident
                if (t.text == "unwrap" || t.text == "expect")
                    && ctx.text(i.wrapping_sub(1)) == "."
                    && ctx.text(i + 1) == "(" =>
            {
                ctx.finding(
                    out,
                    i,
                    Rule::Panic,
                    format!(
                        "`.{}()` in an untrusted-input module — corrupt bytes reach this path; return a typed error instead",
                        t.text
                    ),
                );
            }
            TokKind::Ident if PANIC_MACROS.contains(&t.text.as_str()) && ctx.text(i + 1) == "!" => {
                ctx.finding(
                    out,
                    i,
                    Rule::Panic,
                    format!(
                        "`{}!` in an untrusted-input module — this is a remotely reachable crash; return a typed error instead",
                        t.text
                    ),
                );
            }
            TokKind::Punct if t.text == "[" && i > 0 => {
                let prev = ctx.tok(i - 1);
                let indexing = match prev {
                    Some(p) if p.kind == TokKind::Ident => !is_keyword(&p.text),
                    Some(p) if p.text == ")" || p.text == "]" || p.text == "?" => true,
                    _ => false,
                };
                if indexing {
                    ctx.finding(
                        out,
                        i,
                        Rule::Panic,
                        format!(
                            "slice indexing `{}[..]` in an untrusted-input module can panic on corrupt lengths — use `.get(..)` or a checked helper",
                            ctx.text(i - 1)
                        ),
                    );
                }
            }
            _ => {}
        }
    }
}

/// Keywords that can directly precede `[` without it being an index
/// expression (`return [..]`, `break`, `in [..]`, …).
fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "return"
            | "break"
            | "in"
            | "if"
            | "else"
            | "match"
            | "as"
            | "mut"
            | "ref"
            | "move"
            | "const"
            | "static"
            | "let"
            | "where"
            | "for"
            | "while"
            | "loop"
            | "impl"
            | "dyn"
    )
}

/// R2 — every `unsafe` needs an adjacent `SAFETY:` comment (or a
/// rustdoc `# Safety` section for `unsafe fn` declarations).
fn r2_safety(ctx: &Ctx, out: &mut Vec<Finding>) {
    for i in 0..ctx.toks.len() {
        let t = match ctx.tok(i) {
            Some(t) if t.kind == TokKind::Ident && t.text == "unsafe" => t,
            _ => continue,
        };
        if has_safety_comment(ctx, t.line) {
            continue;
        }
        ctx.finding(
            out,
            i,
            Rule::Safety,
            "`unsafe` without an adjacent `// SAFETY:` comment stating the invariant that makes it sound".to_string(),
        );
    }
}

fn has_safety_comment(ctx: &Ctx, unsafe_line: u32) -> bool {
    let marks = |c: &Comment| c.text.contains("SAFETY") || c.text.contains("# Safety");
    // Trailing comment on the same line, or a comment whose span ends
    // on the line itself (multi-line block comment).
    if ctx
        .comments
        .iter()
        .any(|c| c.line <= unsafe_line && c.end_line >= unsafe_line && marks(c))
    {
        return true;
    }
    // Walk upward through the contiguous block of comment / attribute /
    // blank lines directly above (a doc block may be long).
    let mut line = unsafe_line.saturating_sub(1);
    let mut budget = 40u32;
    while line > 0 && budget > 0 {
        budget -= 1;
        if let Some(c) = ctx
            .comments
            .iter()
            .find(|c| c.line <= line && c.end_line >= line)
        {
            if marks(c) {
                return true;
            }
            line = c.line.saturating_sub(1);
            continue;
        }
        // Attribute lines (`#[inline]`) between doc and item are ok.
        let code_on_line: Vec<&Token> = ctx.toks.iter().filter(|t| t.line == line).collect();
        if code_on_line.is_empty() {
            line = line.saturating_sub(1);
            continue;
        }
        if code_on_line.first().map(|t| t.text == "#").unwrap_or(false) {
            line = line.saturating_sub(1);
            continue;
        }
        return false;
    }
    false
}

/// R3 — `==`/`!=` with a float-literal operand.
fn r3_float_eq(ctx: &Ctx, out: &mut Vec<Finding>) {
    for i in 0..ctx.toks.len() {
        if ctx.is_test(i) {
            continue;
        }
        let t = match ctx.tok(i) {
            Some(t) if t.kind == TokKind::Punct && (t.text == "==" || t.text == "!=") => t,
            _ => continue,
        };
        let lhs_float = i > 0 && ctx.kind(i - 1) == Some(TokKind::Float);
        let rhs_float = ctx.kind(i + 1) == Some(TokKind::Float)
            || (ctx.text(i + 1) == "-" && ctx.kind(i + 2) == Some(TokKind::Float));
        if lhs_float || rhs_float {
            ctx.finding(
                out,
                i,
                Rule::FloatEq,
                format!(
                    "float `{}` comparison — compare `.to_bits()` or use an epsilon/exact-zero helper so intent is explicit",
                    t.text
                ),
            );
        }
    }
}

/// R4 — I/O while a lock guard is live. A guard is born from a
/// zero-argument `.lock()` / `.read()` / `.write()` call (Mutex and
/// RwLock; the zero-arg requirement keeps `io::Read::read(&mut buf)`
/// out), either `let`-bound (lives to the end of its block or an
/// explicit `drop(guard)`) or temporary (lives to the end of the
/// statement).
fn r4_lock_io(ctx: &Ctx, out: &mut Vec<Finding>) {
    struct Guard {
        name: String,
        depth: usize,
        line: u32,
        /// For un-bound (temporary) guards: the guard dies at the next
        /// `;` at its birth depth.
        temp: bool,
    }
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0usize;
    // Track the most recent `let` binding name at each point so a
    // guard-producing call can be attributed to it.
    let mut pending_let: Option<String> = None;

    for i in 0..ctx.toks.len() {
        let t = match ctx.tok(i) {
            Some(t) => t,
            None => continue,
        };
        match t.text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth = depth.saturating_sub(1);
                guards.retain(|g| g.depth <= depth);
            }
            ";" => {
                guards.retain(|g| !(g.temp && g.depth == depth));
                pending_let = None;
            }
            "let" if t.kind == TokKind::Ident => {
                // `let [mut] name`
                let mut j = i + 1;
                if ctx.text(j) == "mut" {
                    j += 1;
                }
                if ctx.kind(j) == Some(TokKind::Ident) {
                    pending_let = Some(ctx.text(j).to_string());
                }
            }
            "lock" | "read" | "write" if t.kind == TokKind::Ident => {
                let zero_arg_method = i > 0
                    && ctx.text(i - 1) == "."
                    && ctx.text(i + 1) == "("
                    && ctx.text(i + 2) == ")";
                if zero_arg_method {
                    guards.push(Guard {
                        name: pending_let.clone().unwrap_or_else(|| "<temporary>".into()),
                        depth,
                        line: t.line,
                        temp: pending_let.is_none(),
                    });
                }
            }
            "drop"
                if t.kind == TokKind::Ident && ctx.text(i + 1) == "(" && ctx.text(i + 3) == ")" =>
            {
                let dropped = ctx.text(i + 2).to_string();
                guards.retain(|g| g.name != dropped);
            }
            _ => {}
        }
        // I/O detection while any guard is live.
        if guards.is_empty() || t.kind != TokKind::Ident {
            continue;
        }
        let is_io = ((t.text.starts_with("read_") || t.text.starts_with("write_"))
            && ctx.text(i + 1) == "(")
            || ((t.text == "fsync" || t.text == "sync_all" || t.text == "sync_data")
                && ctx.text(i + 1) == "(")
            || (t.text == "File" && ctx.text(i + 1) == "::")
            || t.text == "OpenOptions";
        if is_io {
            let msg_guards: Vec<String> = guards
                .iter()
                .map(|g| format!("`{}` (line {})", g.name, g.line))
                .collect();
            ctx.finding(
                out,
                i,
                Rule::LockIo,
                format!(
                    "`{}` runs while lock guard {} is live — do the I/O and decode outside the critical section, then re-lock to publish",
                    t.text,
                    msg_guards.join(", ")
                ),
            );
        }
    }
}

/// R5 — raw `*`/`+` on length-typed operands in reader modules.
/// Suppressed when the enclosing statement visibly uses `SizeCheck` or
/// `checked_*` arithmetic.
fn r5_len_arith(ctx: &Ctx, out: &mut Vec<Finding>) {
    const LENGTHY: &[&str] = &[
        "len", "size", "count", "samples", "series", "rows", "cols", "bytes", "entries",
    ];
    let lengthish = |s: &str| {
        let low = s.to_ascii_lowercase();
        LENGTHY.iter().any(|k| low.contains(k))
    };
    for i in 0..ctx.toks.len() {
        if ctx.is_test(i) {
            continue;
        }
        let t = match ctx.tok(i) {
            Some(t) if t.kind == TokKind::Punct && (t.text == "*" || t.text == "+") => t,
            _ => continue,
        };
        // Binary position: something value-like on the left.
        let prev = match ctx.tok(i.wrapping_sub(1)) {
            Some(p) => p,
            None => continue,
        };
        let binary = matches!(prev.kind, TokKind::Ident | TokKind::Int | TokKind::Float)
            || prev.text == ")"
            || prev.text == "]";
        if !binary || i == 0 {
            continue;
        }
        let next = ctx.tok(i + 1);
        let prev_hit =
            prev.kind == TokKind::Ident && (lengthish(&prev.text) || prev.text == "usize");
        let next_hit = next
            .map(|n| n.kind == TokKind::Ident && lengthish(&n.text))
            .unwrap_or(false);
        if !(prev_hit || next_hit) {
            continue;
        }
        if statement_is_checked(ctx, i) {
            continue;
        }
        ctx.finding(
            out,
            i,
            Rule::LenArith,
            format!(
                "raw `{}` on length-typed operands in a reader module — route header sizes through `SizeCheck`/`checked_*` before trusting them",
                t.text
            ),
        );
    }
}

/// Does the statement containing token `i` visibly use checked
/// arithmetic? Scans to the surrounding `;`/`{`/`}` boundaries.
fn statement_is_checked(ctx: &Ctx, i: usize) -> bool {
    let checked = |t: &Token| {
        t.kind == TokKind::Ident
            && (t.text == "SizeCheck"
                || t.text.starts_with("checked_")
                || t.text == "add_mul"
                || t.text == "add_mul3"
                || t.text == "saturating_add"
                || t.text == "saturating_mul")
    };
    let boundary = |t: &Token| t.text == ";" || t.text == "{" || t.text == "}";
    let mut j = i;
    while j > 0 {
        let Some(t) = ctx.tok(j - 1) else { break };
        if boundary(t) {
            break;
        }
        if checked(t) {
            return true;
        }
        j -= 1;
    }
    let mut k = i + 1;
    while let Some(t) = ctx.tok(k) {
        if boundary(t) {
            break;
        }
        if checked(t) {
            return true;
        }
        k += 1;
    }
    false
}

/// R6 — `Ordering::Relaxed` inside a publish operation (`store`,
/// `swap`, `compare_exchange[_weak]`, `fetch_update`). Loads and
/// counter `fetch_add`s are out of scope by design: the invariant is
/// that *published* data is ordered, enforced at the writer.
fn r6_relaxed(ctx: &Ctx, out: &mut Vec<Finding>) {
    const PUBLISH: &[&str] = &[
        "store",
        "swap",
        "compare_exchange",
        "compare_exchange_weak",
        "fetch_update",
    ];
    for i in 0..ctx.toks.len() {
        let relaxed = ctx.kind(i) == Some(TokKind::Ident)
            && ctx.text(i) == "Relaxed"
            && i >= 2
            && ctx.text(i - 1) == "::"
            && ctx.text(i - 2) == "Ordering";
        if !relaxed {
            continue;
        }
        // Walk backwards to the opening paren of the enclosing call.
        let mut bal = 0i64;
        let mut j = i;
        let mut callee = None;
        while j > 0 {
            j -= 1;
            match ctx.text(j) {
                ")" => bal += 1,
                "(" => {
                    bal -= 1;
                    if bal < 0 {
                        if ctx.kind(j.wrapping_sub(1)) == Some(TokKind::Ident) {
                            callee = Some(ctx.text(j - 1).to_string());
                        }
                        break;
                    }
                }
                ";" | "{" | "}" => break,
                _ => {}
            }
        }
        if let Some(name) = callee {
            if PUBLISH.contains(&name.as_str()) {
                ctx.finding(
                    out,
                    i,
                    Rule::Relaxed,
                    format!(
                        "`Ordering::Relaxed` on `{name}` — publish operations must use Release/AcqRel (or carry an allowlist waiver explaining why no data is ordered after this write)"
                    ),
                );
            }
        }
    }
}

//! `afflint` — workspace-native static analysis for AFFINITY.
//!
//! Enforces the project-specific safety invariants that `clippy -D
//! warnings` cannot see, on every path of every file, statically:
//!
//! | rule          | invariant |
//! |---------------|-----------|
//! | `panic`       | R1: no `unwrap`/`expect`/`panic!`/`assert!`/slice indexing in untrusted-input modules (the paths network bytes and disk corruption reach) |
//! | `safety`      | R2: every `unsafe` is preceded by a `// SAFETY:` comment |
//! | `float-eq`    | R3: no `==`/`!=` against float literals outside test code |
//! | `lock-io`     | R4: no `read_*`/`write_*`/`fsync`/`File::` while a lock guard is live |
//! | `len-arith`   | R5: no raw `*`/`+` on length-typed values in reader modules — use `SizeCheck` |
//! | `relaxed`     | R6: no `Ordering::Relaxed` on `store`/`swap`/`compare_exchange` publishes |
//! | `waiver`      | meta: waivers must name a known rule and carry a `-- justification` |
//!
//! Findings print as `file:line:rule: message` and the binary exits
//! nonzero when any survive. A finding is silenced by an inline waiver
//!
//! ```text
//! // afflint: allow(rule) -- why this occurrence is sound
//! ```
//!
//! on the same line as the flagged token or alone on the line above
//! it. A waiver without the `-- justification` tail is itself a
//! finding, so the waiver inventory (`afflint --list-waivers`) is
//! always fully justified and auditable in review.

pub mod config;
pub mod lexer;
pub mod rules;
pub mod waiver;

use std::fmt;
use std::path::{Path, PathBuf};

/// The rule families. `Waiver` covers malformed waiver comments and is
/// not itself waivable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// R1 — panic-freedom in untrusted-input modules.
    Panic,
    /// R2 — `unsafe` requires an adjacent `// SAFETY:` comment.
    Safety,
    /// R3 — float equality ban.
    FloatEq,
    /// R4 — no I/O under a live lock guard.
    LockIo,
    /// R5 — unchecked length arithmetic in reader modules.
    LenArith,
    /// R6 — `Ordering::Relaxed` on publish operations.
    Relaxed,
    /// Meta — malformed waiver (unknown rule / missing justification).
    Waiver,
}

impl Rule {
    /// The name used in output and in `allow(...)` waivers.
    pub fn name(self) -> &'static str {
        match self {
            Rule::Panic => "panic",
            Rule::Safety => "safety",
            Rule::FloatEq => "float-eq",
            Rule::LockIo => "lock-io",
            Rule::LenArith => "len-arith",
            Rule::Relaxed => "relaxed",
            Rule::Waiver => "waiver",
        }
    }

    /// Parse a waiver rule name.
    pub fn from_name(name: &str) -> Option<Rule> {
        match name {
            "panic" => Some(Rule::Panic),
            "safety" => Some(Rule::Safety),
            "float-eq" => Some(Rule::FloatEq),
            "lock-io" => Some(Rule::LockIo),
            "len-arith" => Some(Rule::LenArith),
            "relaxed" => Some(Rule::Relaxed),
            _ => None,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One confirmed violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line of the flagged token.
    pub line: u32,
    /// Which rule fired.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Result of linting a tree: surviving findings plus the waivers that
/// were honored (for `--list-waivers`).
#[derive(Debug, Default)]
pub struct Report {
    /// Findings that survived waiver filtering, in path/line order.
    pub findings: Vec<Finding>,
    /// Every well-formed waiver encountered, used or not.
    pub waivers: Vec<waiver::Waiver>,
    /// Files visited, workspace-relative.
    pub files_scanned: Vec<String>,
}

/// Lint a single source text under `rel_path`'s classification.
/// Exposed for the fixture tests; `lint_workspace` is the real entry.
pub fn lint_source(rel_path: &str, src: &str) -> (Vec<Finding>, Vec<waiver::Waiver>) {
    let class = config::classify(rel_path);
    let lexed = lexer::lex(src);
    let (waivers, mut waiver_findings) = waiver::collect(rel_path, &lexed.comments);
    let mut findings = rules::run(rel_path, &lexed, &class);
    findings.retain(|f| !waiver::is_waived(&waivers, f));
    findings.append(&mut waiver_findings);
    findings.sort_by_key(|f| f.line);
    (findings, waivers)
}

/// Walk every workspace `.rs` file under `root` and lint it.
pub fn lint_workspace(root: &Path) -> std::io::Result<Report> {
    let mut files = Vec::new();
    for top in config::WALK_ROOTS {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs(&dir, &mut files)?;
        }
    }
    files.sort();
    let mut report = Report::default();
    for path in &files {
        let rel = rel_path(root, path);
        let src = std::fs::read(path)?;
        let src = String::from_utf8_lossy(&src);
        let (findings, waivers) = lint_source(&rel, &src);
        report.findings.extend(findings);
        report.waivers.extend(waivers);
        report.files_scanned.push(rel);
    }
    Ok(report)
}

fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.to_string_lossy().replace('\\', "/")
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if config::SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Locate the workspace root: walk up from `start` until a directory
/// containing a `Cargo.toml` with a `[workspace]` table.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

//! `afflint` CLI — lint the workspace, print findings, exit nonzero.
//!
//! ```text
//! afflint [--root <dir>] [--json <file>] [--list-waivers]
//! ```
//!
//! Default mode walks every workspace `.rs` file (crates/, tests/,
//! examples/, vendor/), prints `file:line:rule: message` per finding,
//! and exits 1 when any survive their waivers (0 when clean, 2 on
//! usage or I/O errors). `--json <file>` additionally writes the
//! findings as a JSON array — the CI artifact. `--list-waivers` prints
//! the waiver inventory (file, line, rules, justification) and exits 0
//! so reviews can audit every accepted exception.

use std::path::PathBuf;
use std::process::ExitCode;

use afflint::{find_workspace_root, lint_workspace, Report};

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json_path: Option<PathBuf> = None;
    let mut list_waivers = false;

    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--root" => match argv.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage("--root needs a directory"),
            },
            "--json" => match argv.next() {
                Some(p) => json_path = Some(PathBuf::from(p)),
                None => return usage("--json needs an output file"),
            },
            "--list-waivers" => list_waivers = true,
            "--help" | "-h" => {
                println!("usage: afflint [--root <dir>] [--json <file>] [--list-waivers]");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let root = match root.or_else(|| {
        std::env::current_dir().ok().and_then(|d| find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => return usage("could not locate a workspace root (no Cargo.toml with [workspace] above cwd); pass --root"),
    };

    let report = match lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("afflint: i/o error walking {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if list_waivers {
        print_waivers(&report);
        return ExitCode::SUCCESS;
    }

    for f in &report.findings {
        println!("{f}");
    }
    if let Some(path) = json_path {
        if let Err(e) = std::fs::write(&path, findings_json(&report)) {
            eprintln!("afflint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if report.findings.is_empty() {
        eprintln!(
            "afflint: clean — {} files, {} waivers (audit with --list-waivers)",
            report.files_scanned.len(),
            report.waivers.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "afflint: {} finding(s) across {} files — fix, or waive with `// afflint: allow(rule) -- justification`",
            report.findings.len(),
            report.files_scanned.len()
        );
        ExitCode::FAILURE
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("afflint: {msg}");
    eprintln!("usage: afflint [--root <dir>] [--json <file>] [--list-waivers]");
    ExitCode::from(2)
}

fn print_waivers(report: &Report) {
    if report.waivers.is_empty() {
        println!("no waivers in the workspace");
        return;
    }
    for w in &report.waivers {
        let rules: Vec<&str> = w.rules.iter().map(|r| r.name()).collect();
        println!(
            "{}:{}: allow({}) -- {}",
            w.file,
            w.line,
            rules.join(", "),
            w.justification
        );
    }
    println!("{} waiver(s), every one justified", report.waivers.len());
}

/// Hand-rolled JSON (the tool is zero-dependency by design).
fn findings_json(report: &Report) -> String {
    let mut s = String::from("[\n");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            s.push_str(",\n");
        }
        s.push_str(&format!(
            "  {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}}}",
            json_str(&f.file),
            f.line,
            json_str(f.rule.name()),
            json_str(&f.message)
        ));
    }
    s.push_str("\n]\n");
    s
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

//! Self-test corpus: every rule family must fire on its bad fixture
//! and stay silent on its good fixture, so a rule regression (or an
//! over-eager heuristic) fails this suite before it reaches CI as a
//! false workspace gate.

use afflint::waiver::Waiver;
use afflint::{lint_source, Finding, Rule};
use std::path::Path;

/// An UNTRUSTED, non-reader path — R1 applies, R5 does not.
const UNTRUSTED_PATH: &str = "crates/ql/src/parser.rs";
/// A READER path — both R1 and R5 apply.
const READER_PATH: &str = "crates/storage/src/layout.rs";
/// A path with no special classification — R2/R3/R4/R6 only.
const PLAIN_PATH: &str = "crates/demo/src/lib.rs";

fn lint_fixture(rel_path: &str, fixture: &str) -> (Vec<Finding>, Vec<Waiver>) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(fixture);
    let src =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read fixture {fixture}: {e}"));
    lint_source(rel_path, &src)
}

fn assert_all_rule(findings: &[Finding], rule: Rule, expected: usize, fixture: &str) {
    assert_eq!(
        findings.len(),
        expected,
        "{fixture}: expected {expected} findings, got {findings:#?}"
    );
    for f in findings {
        assert_eq!(f.rule, rule, "{fixture}: unexpected rule in {f}");
    }
}

fn assert_clean(findings: &[Finding], fixture: &str) {
    assert!(
        findings.is_empty(),
        "{fixture}: expected no findings, got {findings:#?}"
    );
}

#[test]
fn r1_panic_fires_on_bad_and_not_on_good() {
    let (bad, _) = lint_fixture(UNTRUSTED_PATH, "panic_bad.rs");
    // input[0], unwrap, expect, assert!, panic!, ?[0]
    assert_all_rule(&bad, Rule::Panic, 6, "panic_bad.rs");
    assert!(
        bad.iter().any(|f| f.message.contains("slice indexing")),
        "panic_bad.rs: indexing form not reported: {bad:#?}"
    );

    let (good, _) = lint_fixture(UNTRUSTED_PATH, "panic_good.rs");
    assert_clean(&good, "panic_good.rs");
}

#[test]
fn r2_safety_fires_on_bad_and_not_on_good() {
    let (bad, _) = lint_fixture(PLAIN_PATH, "safety_bad.rs");
    assert_all_rule(&bad, Rule::Safety, 1, "safety_bad.rs");

    let (good, _) = lint_fixture(PLAIN_PATH, "safety_good.rs");
    assert_clean(&good, "safety_good.rs");
}

#[test]
fn r3_float_eq_fires_on_bad_and_not_on_good() {
    let (bad, _) = lint_fixture(PLAIN_PATH, "float_eq_bad.rs");
    // == 0.0, != 1.5, == -0.5
    assert_all_rule(&bad, Rule::FloatEq, 3, "float_eq_bad.rs");

    let (good, _) = lint_fixture(PLAIN_PATH, "float_eq_good.rs");
    assert_clean(&good, "float_eq_good.rs");
}

#[test]
fn r3_is_exempt_in_test_tree_files() {
    let (findings, _) = lint_fixture("crates/demo/tests/bits.rs", "float_eq_bad.rs");
    assert_clean(&findings, "float_eq_bad.rs under tests/");
}

#[test]
fn r4_lock_io_fires_on_bad_and_not_on_good() {
    let (bad, _) = lint_fixture(PLAIN_PATH, "lock_io_bad.rs");
    assert_all_rule(&bad, Rule::LockIo, 1, "lock_io_bad.rs");

    let (good, _) = lint_fixture(PLAIN_PATH, "lock_io_good.rs");
    assert_clean(&good, "lock_io_good.rs");
}

#[test]
fn r5_len_arith_fires_on_bad_and_not_on_good() {
    let (bad, _) = lint_fixture(READER_PATH, "len_arith_bad.rs");
    // count * entry_size, … + header_len
    assert_all_rule(&bad, Rule::LenArith, 2, "len_arith_bad.rs");

    let (good, _) = lint_fixture(READER_PATH, "len_arith_good.rs");
    assert_clean(&good, "len_arith_good.rs");
}

#[test]
fn r5_is_scoped_to_reader_modules() {
    let (findings, _) = lint_fixture(PLAIN_PATH, "len_arith_bad.rs");
    assert_clean(&findings, "len_arith_bad.rs outside a reader module");
}

#[test]
fn r6_relaxed_fires_on_bad_and_not_on_good() {
    let (bad, _) = lint_fixture(PLAIN_PATH, "relaxed_bad.rs");
    // store + swap; loads and fetch_add stay legal.
    assert_all_rule(&bad, Rule::Relaxed, 2, "relaxed_bad.rs");

    let (good, _) = lint_fixture(PLAIN_PATH, "relaxed_good.rs");
    assert_clean(&good, "relaxed_good.rs");
}

#[test]
fn malformed_waivers_are_findings_and_do_not_suppress() {
    let (findings, waivers) = lint_fixture(UNTRUSTED_PATH, "waiver_bad.rs");
    assert!(waivers.is_empty(), "malformed waivers must not be honored");
    let waiver_findings = findings.iter().filter(|f| f.rule == Rule::Waiver).count();
    let panic_findings = findings.iter().filter(|f| f.rule == Rule::Panic).count();
    assert_eq!(
        waiver_findings, 2,
        "missing-justification + unknown-rule: {findings:#?}"
    );
    assert_eq!(
        panic_findings, 2,
        "both xs[0] sites stay unwaived: {findings:#?}"
    );
}

#[test]
fn justified_waiver_suppresses_and_is_inventoried() {
    let (findings, waivers) = lint_fixture(UNTRUSTED_PATH, "waiver_good.rs");
    assert_clean(&findings, "waiver_good.rs");
    assert_eq!(waivers.len(), 1);
    let w = &waivers[0];
    assert_eq!(w.rules, vec![Rule::Panic]);
    assert!(
        w.justification.contains("justified waiver"),
        "justification captured verbatim: {w:#?}"
    );
}

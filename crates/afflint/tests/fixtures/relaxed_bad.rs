// R6 fixture (bad): Relaxed ordering on publish operations.
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

pub fn publish(flag: &AtomicBool) {
    flag.store(true, Ordering::Relaxed);
}

pub fn replace(v: &AtomicU64) -> u64 {
    v.swap(7, Ordering::Relaxed)
}

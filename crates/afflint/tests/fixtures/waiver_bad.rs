// Waiver fixture (bad): a waiver without a justification and a waiver
// naming an unknown rule are both findings themselves.
pub fn first(xs: &[u8]) -> u8 {
    // afflint: allow(panic)
    xs[0]
}

pub fn second(xs: &[u8]) -> u8 {
    // afflint: allow(warp-core) -- no such rule exists
    xs[0]
}

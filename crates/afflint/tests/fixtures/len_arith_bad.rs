// R5 fixture (bad): raw arithmetic on header-declared sizes in a
// reader module. Linted under a READERS path.
pub fn payload_len(count: usize, entry_size: usize, header_len: usize) -> usize {
    count * entry_size + header_len
}

// R3 fixture (good): explicit-intent comparisons, and a test region
// where exact comparison is allowed (bit-determinism suites).
const ZERO_BITS: u64 = 0;

pub fn is_zero(x: f64) -> bool {
    x.to_bits() == ZERO_BITS
}

pub fn close(a: f64, b: f64) -> bool {
    (a - b).abs() < 1e-9
}

#[cfg(test)]
mod tests {
    #[test]
    fn exact_comparison_is_fine_in_tests() {
        assert!(super::close(1.0, 1.0));
        let x = 0.5;
        assert!(x == 0.5);
    }
}

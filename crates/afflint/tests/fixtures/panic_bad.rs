// R1 fixture (bad): every construct the panic rule bans in an
// untrusted-input module. Linted under an UNTRUSTED path.
pub fn parse(input: &[u8]) -> u32 {
    let first = input[0];
    let text = std::str::from_utf8(input).unwrap();
    let v: u32 = text.parse().expect("number");
    assert!(v > 0);
    if input.is_empty() {
        panic!("empty");
    }
    let tail = input.get(1..)?[0];
    u32::from(first) + u32::from(tail) + v
}

// R5 fixture (good): header sizes flow through checked arithmetic; the
// statement-level suppression recognizes `checked_*` and `SizeCheck`.
pub fn payload_len(count: u64, entry_size: u64, header_len: u64) -> Option<u64> {
    count.checked_mul(entry_size)?.checked_add(header_len)
}

pub fn non_length_math(x: f64, y: f64) -> f64 {
    x * y + 1.0
}

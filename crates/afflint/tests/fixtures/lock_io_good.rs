// R4 fixture (good): copy out under the lock, do the I/O outside the
// critical section.
use std::io::Write;

pub fn flush(m: &std::sync::Mutex<Vec<u8>>, f: &mut std::fs::File) -> std::io::Result<()> {
    let payload = {
        let guard = m.lock();
        guard.clone()
    };
    f.write_all(&payload)?;
    Ok(())
}

pub fn flush_with_drop(
    m: &std::sync::Mutex<Vec<u8>>,
    f: &mut std::fs::File,
) -> std::io::Result<()> {
    let guard = m.lock();
    let payload = guard.clone();
    drop(guard);
    f.write_all(&payload)?;
    Ok(())
}

// R2 fixture (bad): `unsafe` with no SAFETY comment anywhere near it.
pub fn read_first(p: *const u8) -> u8 {
    unsafe { *p }
}

// R6 fixture (good): publishes use Release; Relaxed is fine on loads
// and on pure counters (fetch_add is not a publish operation).
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

pub fn publish(flag: &AtomicBool) {
    flag.store(true, Ordering::Release);
}

pub fn observe(flag: &AtomicBool) -> bool {
    flag.load(Ordering::Relaxed)
}

pub fn count(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed);
}

// R2 fixture (good): every `unsafe` carries an adjacent invariant.
pub fn read_first(p: *const u8) -> u8 {
    // SAFETY: caller guarantees `p` points to at least one readable byte.
    unsafe { *p }
}

/// Reads one byte.
///
/// # Safety
/// `p` must be valid for reads of one byte.
pub unsafe fn read_raw(p: *const u8) -> u8 {
    // SAFETY: forwarded contract — see the `# Safety` section above.
    unsafe { *p }
}

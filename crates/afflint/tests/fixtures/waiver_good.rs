// Waiver fixture (good): a justified waiver suppresses exactly the
// finding on the next line, and is reported in the waiver inventory.
pub fn first(xs: &[u8]) -> u8 {
    // afflint: allow(panic) -- fixture: demonstrates a justified waiver suppressing R1
    xs[0]
}

// R3 fixture (bad): bare float-literal equality in production code.
pub fn is_zero(x: f64) -> bool {
    x == 0.0
}

pub fn differs(a: f64) -> bool {
    a != 1.5
}

pub fn negative_literal(a: f64) -> bool {
    a == -0.5
}

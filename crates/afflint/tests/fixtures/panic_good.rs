// R1 fixture (good): the checked forms the panic rule accepts, plus a
// test region where asserting and indexing are allowed.
pub fn parse(input: &[u8]) -> Option<u32> {
    let first = input.first().copied()?;
    let text = std::str::from_utf8(input).ok()?;
    let v: u32 = text.parse().ok()?;
    Some(u32::from(first).checked_add(v)?)
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_assert_and_index() {
        let v = super::parse(b"7").unwrap();
        assert!(v > 0);
        let xs = [1, 2, 3];
        assert_eq!(xs[0], 1);
    }
}

// R4 fixture (bad): file I/O while a mutex guard is live.
use std::io::Write;

pub fn flush(m: &std::sync::Mutex<Vec<u8>>, f: &mut std::fs::File) -> std::io::Result<()> {
    let guard = m.lock();
    f.write_all(b"data")?;
    drop(guard);
    Ok(())
}

//! The end-to-end gate, run as a test: the real workspace must lint
//! clean, the walk must cover the trees the CI step claims it covers
//! (including afflint itself, tests/ and examples/), and the whole run
//! must stay fast enough to sit in the inner loop.

use afflint::{find_workspace_root, lint_workspace};
use std::path::Path;
use std::time::{Duration, Instant};

#[test]
fn workspace_lints_clean_with_full_coverage_in_budget() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above CARGO_MANIFEST_DIR");

    let start = Instant::now();
    let report = lint_workspace(&root).expect("workspace walk");
    let elapsed = start.elapsed();

    assert!(
        report.findings.is_empty(),
        "workspace must lint clean; findings:\n{}",
        report
            .findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );

    // Coverage: the tool lints its own sources and test harnesses, the
    // workspace integration tests, and the examples.
    for prefix in [
        "crates/afflint/src/",
        "crates/afflint/tests/",
        "crates/storage/src/",
        "tests/",
        "examples/",
    ] {
        assert!(
            report.files_scanned.iter().any(|f| f.starts_with(prefix)),
            "walk missed {prefix}; scanned: {:?}",
            report.files_scanned
        );
    }
    // The deliberately-bad fixture corpus must NOT be part of the gate.
    assert!(
        !report
            .files_scanned
            .iter()
            .any(|f| f.contains("/fixtures/")),
        "fixtures leaked into the workspace gate"
    );

    // Every accepted waiver carries its mandatory justification.
    assert!(
        !report.waivers.is_empty(),
        "waiver inventory unexpectedly empty"
    );
    for w in &report.waivers {
        assert!(
            !w.justification.trim().is_empty(),
            "unjustified waiver at {}:{}",
            w.file,
            w.line
        );
    }

    assert!(
        elapsed < Duration::from_secs(2),
        "workspace lint took {elapsed:?} (budget 2s, {} files)",
        report.files_scanned.len()
    );
}

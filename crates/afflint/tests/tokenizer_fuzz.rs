//! Tokenizer hardening: the lexer underpins every rule, so it must (a)
//! never panic, on any byte soup, and (b) never leak text out of
//! quarantined contexts — strings, raw strings, char literals and
//! comments must not contribute identifier tokens, or a rule could
//! fire on (or a waiver be parsed from) text that the compiler never
//! sees as code.

use afflint::lexer::{lex, TokKind};
use proptest::collection::vec;
use proptest::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// The marker ident planted inside quarantined contexts. Never appears
/// in the scaffolding, so any token with this text is a leak.
const MARKER: &str = "QUARANTINE";

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Arbitrary (lossily decoded) bytes never panic the lexer — the
    /// same guarantee the QL parser fuzz suite demands of the parser.
    #[test]
    fn lexer_never_panics_on_byte_soup(bytes in vec(0u32..=255, 0..240)) {
        let bytes: Vec<u8> = bytes.iter().map(|&b| b as u8).collect();
        let src = String::from_utf8_lossy(&bytes).into_owned();
        let ok = catch_unwind(AssertUnwindSafe(|| {
            let _ = lex(&src);
            true
        }))
        .unwrap_or(false);
        prop_assert!(ok, "lexer panicked on {src:?}");
    }

    /// A marker planted at the *start* of a string / raw string / line
    /// comment / block comment never appears as a token, no matter what
    /// random payload follows it (the payload may close the context
    /// early — then the tail becomes code, but the marker itself was
    /// emitted before any close and must stay quarantined).
    #[test]
    fn quarantined_text_never_leaks_tokens(
        context in 0u32..4,
        payload in vec(32u32..127, 0..48),
    ) {
        let payload: String = payload
            .iter()
            .filter_map(|&c| char::from_u32(c))
            .collect();
        let src = match context {
            0 => format!("let x = \"{MARKER} {payload}\";"),
            1 => format!("let x = 1; // {MARKER} {payload}"),
            2 => format!("let x = 1; /* {MARKER} {payload} */"),
            _ => format!("let x = r#\"{MARKER} {payload}\"#;"),
        };
        let lexed = lex(&src);
        let leaked = lexed
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text == MARKER);
        prop_assert!(!leaked, "marker leaked out of context {context}: {src:?}");
    }
}

/// Deterministic spot checks of the disambiguation corners the fuzz
/// strategies cannot target precisely.
#[test]
fn lexer_disambiguation_corners() {
    // Char literal vs lifetime.
    let lexed = lex("let c: char = 'a'; fn f<'a>(x: &'a str) {}");
    assert!(lexed.tokens.iter().any(|t| t.kind == TokKind::Char));
    assert!(lexed
        .tokens
        .iter()
        .any(|t| t.kind == TokKind::Lifetime && t.text == "'a"));
    // Raw identifier is not a raw string.
    let lexed = lex("let r#type = 1;");
    assert!(lexed
        .tokens
        .iter()
        .any(|t| t.kind == TokKind::Ident && t.text == "type"));
    // Hex literal with `E` is an int, not a float exponent.
    let lexed = lex("let x = 0x1E;");
    assert!(lexed
        .tokens
        .iter()
        .any(|t| t.kind == TokKind::Int && t.text == "0x1E"));
    // A float literal is a float.
    let lexed = lex("let x = 1.5e-3;");
    assert!(lexed.tokens.iter().any(|t| t.kind == TokKind::Float));
    // Comments land in the side channel with their text intact.
    let lexed = lex("// SAFETY: fine\nunsafe {}");
    assert!(lexed.comments.iter().any(|c| c.text.contains("SAFETY")));
}

//! # affinity-dft
//!
//! From-scratch discrete Fourier transform substrate backing the **WF**
//! baseline of the AFFINITY paper (Sathe & Aberer, ICDE 2013, Sec. 6):
//! *"an approach that uses the five largest DFT coefficients for
//! approximating the correlation coefficient"* (StatStream / HierarchyScan /
//! Mueen et al. lineage, refs [1–3] in the paper).
//!
//! Contents:
//!
//! * [`complex`] — minimal `Complex64` arithmetic;
//! * [`mod@fft`] — iterative radix-2 Cooley–Tukey FFT plus Bluestein's
//!   algorithm so *any* series length (e.g. the stock dataset's `m = 1950`)
//!   gets an `O(m log m)` transform;
//! * [`sketch`] — per-series sketches retaining the `k` largest-magnitude
//!   DFT coefficients of the z-normalized series, and the Parseval-based
//!   correlation estimate between two sketches.
//!
//! ```
//! use affinity_dft::sketch::DftSketch;
//!
//! let x: Vec<f64> = (0..96).map(|i| (i as f64 * 0.3).sin()).collect();
//! let y: Vec<f64> = x.iter().map(|v| 2.0 * v + 1.0).collect(); // perfectly correlated
//! let sx = DftSketch::build(&x, 5);
//! let sy = DftSketch::build(&y, 5);
//! assert!((sx.correlation(&sy) - 1.0).abs() < 0.05);
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod complex;
pub mod fft;
pub mod sketch;

pub use complex::Complex64;
pub use fft::{fft, ifft, naive_dft};
pub use sketch::DftSketch;

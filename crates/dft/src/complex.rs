//! Minimal complex arithmetic for the FFT kernels.

use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` parts.
///
/// Only what the FFT and sketch code needs — deliberately not a general
/// complex library.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// Complex zero.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// Complex one.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };

    /// Construct from parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// Construct a real number.
    #[inline]
    pub const fn from_real(re: f64) -> Self {
        Complex64 { re, im: 0.0 }
    }

    /// `e^{iθ} = cos θ + i sin θ`.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Complex64 {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex64 {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude `re² + im²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Scale by a real factor.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Complex64 {
            re: self.re * s,
            im: self.im * s,
        }
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Complex64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex64) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        Complex64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex64) {
        *self = *self * rhs;
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: Complex64) -> Complex64 {
        let d = rhs.norm_sqr();
        Complex64::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline]
    fn neg(self) -> Complex64 {
        Complex64::new(-self.re, -self.im)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(-0.5, 3.0);
        assert_eq!(a + b, Complex64::new(0.5, 5.0));
        assert_eq!(a - b, Complex64::new(1.5, -1.0));
        // (1+2i)(-0.5+3i) = -0.5 + 3i - i + 6i² = -6.5 + 2i
        assert_eq!(a * b, Complex64::new(-6.5, 2.0));
        assert_eq!(-a, Complex64::new(-1.0, -2.0));
        let mut c = a;
        c += b;
        c -= b;
        assert_eq!(c, a);
        c *= Complex64::ONE;
        assert_eq!(c, a);
    }

    #[test]
    fn division_is_multiplication_inverse() {
        let a = Complex64::new(3.0, -4.0);
        let b = Complex64::new(1.5, 2.5);
        let q = a / b;
        let back = q * b;
        assert!((back.re - a.re).abs() < 1e-12);
        assert!((back.im - a.im).abs() < 1e-12);
    }

    #[test]
    fn conj_abs_norm() {
        let a = Complex64::new(3.0, 4.0);
        assert_eq!(a.abs(), 5.0);
        assert_eq!(a.norm_sqr(), 25.0);
        assert_eq!(a.conj(), Complex64::new(3.0, -4.0));
        assert_eq!((a * a.conj()).re, 25.0);
    }

    #[test]
    fn cis_on_unit_circle() {
        use std::f64::consts::PI;
        let z = Complex64::cis(PI / 2.0);
        assert!(z.re.abs() < 1e-15);
        assert!((z.im - 1.0).abs() < 1e-15);
        assert!((Complex64::cis(0.3).abs() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn scale_and_constants() {
        assert_eq!(
            Complex64::from_real(2.0).scale(3.0),
            Complex64::new(6.0, 0.0)
        );
        assert_eq!(Complex64::ZERO + Complex64::ONE, Complex64::ONE);
        assert_eq!(Complex64::default(), Complex64::ZERO);
    }
}

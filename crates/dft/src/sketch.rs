//! DFT coefficient sketches — the **WF** correlation baseline.
//!
//! Following the paper's refs [1–3] (StatStream, HierarchyScan, Mueen et
//! al.), each series is z-normalized and summarized by its `k`
//! largest-magnitude DFT coefficients. By Parseval's theorem the Pearson
//! correlation of two z-normalized series equals the (scaled) inner product
//! of their spectra, so correlations are approximated from the retained
//! bins only — in `O(k)` per pair instead of `O(m)`.
//!
//! This is the method AFFINITY compares against (`W_F` in Sec. 6); it
//! handles *only* the correlation coefficient, which is exactly the
//! limitation the paper highlights.

use crate::complex::Complex64;
use crate::fft::fft_real;

/// Exact IEEE zero test for the constant-series guards below (this
/// crate deliberately has no linalg dependency, so it carries its own
/// copy of `affinity_linalg::vector::exactly_zero`).
#[inline]
fn exactly_zero(x: f64) -> bool {
    // afflint: allow(float-eq) -- named exact-zero guard; a constant series has std stored as literal 0.0, not a rounding artifact
    x == 0.0
}

/// Sketch of one series: its z-normalization constants plus the retained
/// DFT bins of the normalized series.
#[derive(Debug, Clone)]
pub struct DftSketch {
    /// Series length `m`.
    len: usize,
    /// Retained bins, sorted by bin index ascending. Bin indices are in
    /// `1..=m/2` (the DC bin of a z-normalized series is zero and real
    /// input makes the upper half redundant by conjugate symmetry).
    bins: Vec<(u32, Complex64)>,
    /// Mean of the raw series (kept for inspection/tests).
    mean: f64,
    /// Standard deviation of the raw series; `0` marks a constant series.
    std: f64,
}

impl DftSketch {
    /// Build a sketch retaining the `k` largest-magnitude coefficients.
    ///
    /// A constant series (zero variance) produces an empty sketch whose
    /// correlation with anything is `0`, matching the convention used by
    /// the exact path.
    ///
    /// # Panics
    /// Panics if `x` is empty.
    pub fn build(x: &[f64], k: usize) -> Self {
        assert!(!x.is_empty(), "DftSketch::build on empty series");
        let m = x.len();
        let mean = x.iter().sum::<f64>() / m as f64;
        let var = x.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / m as f64;
        let std = var.sqrt();
        // Relative threshold: floating-point summation leaves a constant
        // series with a tiny but nonzero variance.
        if std <= 1e-12 * mean.abs().max(1.0) {
            return DftSketch {
                len: m,
                bins: Vec::new(),
                mean,
                std: 0.0,
            };
        }
        let z: Vec<f64> = x.iter().map(|v| (v - mean) / std).collect();
        let spectrum = fft_real(&z);
        // Candidate bins 1..=m/2 with their magnitudes.
        let half = m / 2;
        let mut candidates: Vec<(u32, f64)> =
            (1..=half).map(|b| (b as u32, spectrum[b].abs())).collect();
        candidates.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        let mut keep: Vec<(u32, Complex64)> = candidates
            .into_iter()
            .take(k)
            .map(|(b, _)| (b, spectrum[b as usize]))
            .collect();
        keep.sort_by_key(|(b, _)| *b);
        DftSketch {
            len: m,
            bins: keep,
            mean,
            std,
        }
    }

    /// Series length the sketch was built from.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the sketch retains no coefficients (constant series).
    pub fn is_empty(&self) -> bool {
        self.bins.is_empty()
    }

    /// Number of retained coefficients.
    pub fn retained(&self) -> usize {
        self.bins.len()
    }

    /// Mean of the raw series.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Standard deviation of the raw series.
    pub fn std(&self) -> f64 {
        self.std
    }

    /// Fraction of the normalized series' energy captured by the retained
    /// bins (`∈ [0, 1]`); a quality diagnostic.
    pub fn energy_fraction(&self) -> f64 {
        if exactly_zero(self.std) {
            return 0.0;
        }
        // Total energy of a z-normalized series is m (time domain), i.e.
        // m² in spectrum units. Retained bins count twice (conjugate
        // pairs), except a Nyquist bin for even m.
        let m = self.len as f64;
        let mut captured = 0.0;
        for &(b, c) in &self.bins {
            let w = if self.len.is_multiple_of(2) && b as usize == self.len / 2 {
                1.0
            } else {
                2.0
            };
            captured += w * c.norm_sqr();
        }
        (captured / (m * m)).min(1.0)
    }

    /// Approximate Pearson correlation against another sketch via
    /// Parseval's theorem on the intersection of retained bins.
    ///
    /// Returns `0.0` when either series was constant, and clamps to
    /// `[-1, 1]` (truncated spectra can slightly overshoot).
    ///
    /// # Panics
    /// Panics if the sketches come from different series lengths.
    pub fn correlation(&self, other: &DftSketch) -> f64 {
        assert_eq!(
            self.len, other.len,
            "correlation between sketches of different lengths"
        );
        if exactly_zero(self.std) || exactly_zero(other.std) {
            return 0.0;
        }
        let m = self.len as f64;
        // Merge-join on sorted bin index.
        let mut i = 0;
        let mut j = 0;
        let mut acc = 0.0;
        while i < self.bins.len() && j < other.bins.len() {
            let (bi, ci) = self.bins[i];
            let (bj, cj) = other.bins[j];
            match bi.cmp(&bj) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    let w = if self.len.is_multiple_of(2) && bi as usize == self.len / 2 {
                        1.0
                    } else {
                        2.0
                    };
                    acc += w * (ci * cj.conj()).re;
                    i += 1;
                    j += 1;
                }
            }
        }
        (acc / (m * m)).clamp(-1.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine_series(m: usize, freq: f64, phase: f64) -> Vec<f64> {
        (0..m)
            .map(|i| (2.0 * std::f64::consts::PI * freq * i as f64 / m as f64 + phase).sin())
            .collect()
    }

    #[test]
    fn identical_series_correlate_to_one() {
        let x = sine_series(128, 3.0, 0.1);
        let s = DftSketch::build(&x, 5);
        assert!((s.correlation(&s) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn affine_images_correlate_to_one() {
        let x = sine_series(200, 4.0, 0.0);
        let y: Vec<f64> = x.iter().map(|v| -3.0 * v + 7.0).collect();
        let sx = DftSketch::build(&x, 5);
        let sy = DftSketch::build(&y, 5);
        assert!((sx.correlation(&sy) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn orthogonal_tones_correlate_to_zero() {
        let x = sine_series(256, 3.0, 0.0);
        let y = sine_series(256, 9.0, 0.0);
        let sx = DftSketch::build(&x, 5);
        let sy = DftSketch::build(&y, 5);
        assert!(sx.correlation(&sy).abs() < 1e-6);
    }

    #[test]
    fn constant_series_yields_zero_and_empty() {
        let x = vec![4.2; 50];
        let y = sine_series(50, 2.0, 0.0);
        let sx = DftSketch::build(&x, 5);
        let sy = DftSketch::build(&y, 5);
        assert!(sx.is_empty());
        assert_eq!(sx.correlation(&sy), 0.0);
        assert_eq!(sx.energy_fraction(), 0.0);
    }

    #[test]
    fn approximation_tracks_exact_correlation() {
        // Smooth signals dominated by few harmonics: top-5 bins should get
        // close to the exact value.
        let m = 300;
        let x: Vec<f64> = (0..m)
            .map(|i| {
                let t = i as f64 / m as f64;
                (2.0 * std::f64::consts::PI * 2.0 * t).sin()
                    + 0.5 * (2.0 * std::f64::consts::PI * 5.0 * t).cos()
            })
            .collect();
        let y: Vec<f64> = (0..m)
            .map(|i| {
                let t = i as f64 / m as f64;
                0.8 * (2.0 * std::f64::consts::PI * 2.0 * t).sin()
                    - 0.2 * (2.0 * std::f64::consts::PI * 7.0 * t).sin()
            })
            .collect();
        let exact = affinity_exact_corr(&x, &y);
        let approx = DftSketch::build(&x, 5).correlation(&DftSketch::build(&y, 5));
        assert!(
            (exact - approx).abs() < 0.05,
            "exact {exact} vs approx {approx}"
        );
    }

    fn affinity_exact_corr(x: &[f64], y: &[f64]) -> f64 {
        let m = x.len() as f64;
        let mx = x.iter().sum::<f64>() / m;
        let my = y.iter().sum::<f64>() / m;
        let mut cov = 0.0;
        let mut vx = 0.0;
        let mut vy = 0.0;
        for (a, b) in x.iter().zip(y.iter()) {
            cov += (a - mx) * (b - my);
            vx += (a - mx) * (a - mx);
            vy += (b - my) * (b - my);
        }
        cov / (vx * vy).sqrt()
    }

    #[test]
    fn retains_at_most_k() {
        let x = sine_series(100, 2.0, 0.3);
        for k in [0usize, 1, 3, 5, 50, 1000] {
            let s = DftSketch::build(&x, k);
            assert!(s.retained() <= k.min(50));
        }
    }

    #[test]
    fn energy_fraction_in_unit_interval_and_meaningful() {
        let x = sine_series(128, 3.0, 0.0);
        let s = DftSketch::build(&x, 5);
        // Pure tone: nearly all energy in one bin.
        assert!(s.energy_fraction() > 0.99);
        assert!(s.energy_fraction() <= 1.0);
        let noise: Vec<f64> = (0..128)
            .map(|i| ((i * 2654435761_usize) % 101) as f64 / 101.0)
            .collect();
        let sn = DftSketch::build(&noise, 5);
        assert!(
            sn.energy_fraction() < 0.9,
            "white-ish noise is uncooperative"
        );
    }

    #[test]
    fn stats_are_recorded() {
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let s = DftSketch::build(&x, 2);
        assert_eq!(s.mean(), 2.5);
        assert!((s.std() - 1.25f64.sqrt()).abs() < 1e-12);
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn odd_lengths_work() {
        let x = sine_series(97, 3.0, 0.0);
        let y = sine_series(97, 3.0, 0.0);
        let c = DftSketch::build(&x, 5).correlation(&DftSketch::build(&y, 5));
        assert!((c - 1.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "different lengths")]
    fn length_mismatch_panics() {
        let a = DftSketch::build(&sine_series(10, 1.0, 0.0), 2);
        let b = DftSketch::build(&sine_series(12, 1.0, 0.0), 2);
        a.correlation(&b);
    }
}

//! Fast Fourier transforms: iterative radix-2 Cooley–Tukey and Bluestein's
//! chirp-z algorithm for arbitrary lengths.
//!
//! AFFINITY's datasets have lengths like `m = 720` and `m = 1950` that are
//! not powers of two; Bluestein reduces those to a power-of-two convolution
//! so the WF baseline stays `O(m log m)` without zero-padding artifacts.

use crate::complex::Complex64;
use std::f64::consts::PI;

/// Forward DFT: `X[k] = Σ_j x[j]·e^{-2πi jk/n}`.
///
/// Dispatches to radix-2 for power-of-two lengths and Bluestein otherwise.
/// Length 0 and 1 are identity transforms.
pub fn fft(x: &[Complex64]) -> Vec<Complex64> {
    let n = x.len();
    if n <= 1 {
        return x.to_vec();
    }
    if n.is_power_of_two() {
        let mut buf = x.to_vec();
        radix2_in_place(&mut buf, false);
        buf
    } else {
        bluestein(x, false)
    }
}

/// Inverse DFT: `x[j] = (1/n) Σ_k X[k]·e^{+2πi jk/n}`.
pub fn ifft(x: &[Complex64]) -> Vec<Complex64> {
    let n = x.len();
    if n <= 1 {
        return x.to_vec();
    }
    let mut out = if n.is_power_of_two() {
        let mut buf = x.to_vec();
        radix2_in_place(&mut buf, true);
        buf
    } else {
        bluestein(x, true)
    };
    let inv = 1.0 / n as f64;
    for v in &mut out {
        *v = v.scale(inv);
    }
    out
}

/// Forward DFT of a real-valued signal (convenience wrapper).
pub fn fft_real(x: &[f64]) -> Vec<Complex64> {
    let buf: Vec<Complex64> = x.iter().map(|&v| Complex64::from_real(v)).collect();
    fft(&buf)
}

/// Quadratic-time reference DFT used as a correctness oracle in tests and
/// available for tiny inputs.
pub fn naive_dft(x: &[Complex64]) -> Vec<Complex64> {
    let n = x.len();
    let mut out = vec![Complex64::ZERO; n];
    for (k, o) in out.iter_mut().enumerate() {
        let mut acc = Complex64::ZERO;
        for (j, &v) in x.iter().enumerate() {
            let angle = -2.0 * PI * (j as f64) * (k as f64) / n as f64;
            acc += v * Complex64::cis(angle);
        }
        *o = acc;
    }
    out
}

/// In-place iterative radix-2 Cooley–Tukey.
///
/// `inverse` flips the twiddle sign; scaling is the caller's business.
///
/// # Panics
/// Debug-asserts the length is a power of two (enforced by dispatchers).
fn radix2_in_place(buf: &mut [Complex64], inverse: bool) {
    let n = buf.len();
    debug_assert!(n.is_power_of_two());
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u32).reverse_bits() >> (32 - bits);
        let j = j as usize;
        if j > i {
            buf.swap(i, j);
        }
    }
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * PI / len as f64;
        let wlen = Complex64::cis(ang);
        let mut i = 0;
        while i < n {
            let mut w = Complex64::ONE;
            for j in 0..len / 2 {
                let u = buf[i + j];
                let v = buf[i + j + len / 2] * w;
                buf[i + j] = u + v;
                buf[i + j + len / 2] = u - v;
                w *= wlen;
            }
            i += len;
        }
        len <<= 1;
    }
}

/// Bluestein's algorithm: express an arbitrary-length DFT as a convolution
/// of chirped sequences, evaluated with power-of-two FFTs.
fn bluestein(x: &[Complex64], inverse: bool) -> Vec<Complex64> {
    let n = x.len();
    let sign = if inverse { 1.0 } else { -1.0 };
    // Chirp: w[j] = e^{sign·πi j²/n}; use j² mod 2n to keep angles accurate
    // for large j.
    let two_n = 2 * n as u64;
    let chirp: Vec<Complex64> = (0..n)
        .map(|j| {
            let j = j as u64;
            let e = (j * j) % two_n;
            Complex64::cis(sign * PI * e as f64 / n as f64)
        })
        .collect();

    let m = (2 * n - 1).next_power_of_two();
    let mut a = vec![Complex64::ZERO; m];
    let mut b = vec![Complex64::ZERO; m];
    for j in 0..n {
        a[j] = x[j] * chirp[j];
        b[j] = chirp[j].conj();
    }
    for j in 1..n {
        b[m - j] = chirp[j].conj();
    }
    radix2_in_place(&mut a, false);
    radix2_in_place(&mut b, false);
    for (av, bv) in a.iter_mut().zip(b.iter()) {
        *av *= *bv;
    }
    radix2_in_place(&mut a, true);
    let scale = 1.0 / m as f64;
    (0..n).map(|k| (a[k].scale(scale)) * chirp[k]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[Complex64], b: &[Complex64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (u, v) in a.iter().zip(b.iter()) {
            assert!(
                (u.re - v.re).abs() < tol && (u.im - v.im).abs() < tol,
                "{u:?} vs {v:?}"
            );
        }
    }

    fn impulse(n: usize) -> Vec<Complex64> {
        let mut x = vec![Complex64::ZERO; n];
        x[0] = Complex64::ONE;
        x
    }

    #[test]
    fn impulse_transforms_to_constant() {
        for n in [1usize, 2, 4, 8, 6, 10, 15] {
            let y = fft(&impulse(n));
            for v in &y {
                assert!((v.re - 1.0).abs() < 1e-12 && v.im.abs() < 1e-12, "n={n}");
            }
        }
    }

    #[test]
    fn matches_naive_dft_power_of_two() {
        let x: Vec<Complex64> = (0..16)
            .map(|i| Complex64::new((i as f64 * 0.7).sin(), (i as f64 * 0.3).cos()))
            .collect();
        assert_close(&fft(&x), &naive_dft(&x), 1e-10);
    }

    #[test]
    fn matches_naive_dft_arbitrary_lengths() {
        for n in [3usize, 5, 6, 7, 12, 30, 97, 100] {
            let x: Vec<Complex64> = (0..n)
                .map(|i| Complex64::new((i as f64 * 1.3).sin(), (i as f64).sqrt()))
                .collect();
            assert_close(&fft(&x), &naive_dft(&x), 1e-8);
        }
    }

    #[test]
    fn round_trip_identity() {
        for n in [8usize, 9, 720, 1950] {
            let x: Vec<Complex64> = (0..n)
                .map(|i| Complex64::new((i as f64 * 0.11).sin(), (i as f64 * 0.05).cos()))
                .collect();
            let back = ifft(&fft(&x));
            assert_close(&back, &x, 1e-9);
        }
    }

    #[test]
    fn parseval_theorem_holds() {
        let n = 250;
        let x: Vec<Complex64> = (0..n)
            .map(|i| Complex64::from_real((i as f64 * 0.2).sin() + 0.3))
            .collect();
        let y = fft(&x);
        let time_energy: f64 = x.iter().map(|v| v.norm_sqr()).sum();
        let freq_energy: f64 = y.iter().map(|v| v.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-8 * time_energy);
    }

    #[test]
    fn linearity() {
        let n = 24;
        let x: Vec<Complex64> = (0..n).map(|i| Complex64::from_real(i as f64)).collect();
        let y: Vec<Complex64> = (0..n)
            .map(|i| Complex64::from_real((i as f64).cos()))
            .collect();
        let sum: Vec<Complex64> = x.iter().zip(&y).map(|(a, b)| *a + *b).collect();
        let fx = fft(&x);
        let fy = fft(&y);
        let fsum = fft(&sum);
        let expect: Vec<Complex64> = fx.iter().zip(&fy).map(|(a, b)| *a + *b).collect();
        assert_close(&fsum, &expect, 1e-9);
    }

    #[test]
    fn single_tone_concentrates_energy() {
        let n = 64;
        let k0 = 5;
        let x: Vec<Complex64> = (0..n)
            .map(|i| Complex64::from_real((2.0 * PI * k0 as f64 * i as f64 / n as f64).cos()))
            .collect();
        let y = fft(&x);
        // A real cosine splits into bins k0 and n-k0, each of magnitude n/2.
        assert!((y[k0].abs() - n as f64 / 2.0).abs() < 1e-9);
        assert!((y[n - k0].abs() - n as f64 / 2.0).abs() < 1e-9);
        for (k, v) in y.iter().enumerate() {
            if k != k0 && k != n - k0 {
                assert!(v.abs() < 1e-8, "bin {k} leaked {}", v.abs());
            }
        }
    }

    #[test]
    fn fft_real_matches_complex_path() {
        let x: Vec<f64> = (0..30).map(|i| (i as f64 * 0.4).sin()).collect();
        let a = fft_real(&x);
        let b = fft(&x
            .iter()
            .map(|&v| Complex64::from_real(v))
            .collect::<Vec<_>>());
        assert_close(&a, &b, 1e-15);
    }

    #[test]
    fn empty_and_singleton() {
        assert!(fft(&[]).is_empty());
        assert!(ifft(&[]).is_empty());
        let one = vec![Complex64::new(2.5, -1.0)];
        assert_eq!(fft(&one), one);
        assert_eq!(ifft(&one), one);
    }
}

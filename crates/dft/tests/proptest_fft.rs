//! Property tests for the FFT: inverse round trips, Parseval's identity
//! and agreement with the naive DFT on arbitrary inputs and lengths.

use affinity_dft::{fft, ifft, naive_dft, Complex64};
use proptest::prelude::*;

fn signal(max_len: usize) -> impl Strategy<Value = Vec<Complex64>> {
    proptest::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 1..max_len).prop_map(|v| {
        v.into_iter()
            .map(|(re, im)| Complex64::new(re, im))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn ifft_inverts_fft(x in signal(200)) {
        let back = ifft(&fft(&x));
        for (a, b) in back.iter().zip(x.iter()) {
            prop_assert!((a.re - b.re).abs() < 1e-7, "{a:?} vs {b:?}");
            prop_assert!((a.im - b.im).abs() < 1e-7);
        }
    }

    #[test]
    fn matches_naive_dft(x in signal(48)) {
        let fast = fft(&x);
        let slow = naive_dft(&x);
        let scale = x.iter().map(|v| v.abs()).fold(1.0f64, f64::max) * x.len() as f64;
        for (a, b) in fast.iter().zip(slow.iter()) {
            prop_assert!((a.re - b.re).abs() < 1e-9 * scale);
            prop_assert!((a.im - b.im).abs() < 1e-9 * scale);
        }
    }

    #[test]
    fn parseval_holds(x in signal(150)) {
        let y = fft(&x);
        let time: f64 = x.iter().map(|v| v.norm_sqr()).sum();
        let freq: f64 = y.iter().map(|v| v.norm_sqr()).sum::<f64>() / x.len() as f64;
        prop_assert!((time - freq).abs() <= 1e-9 * time.max(1.0));
    }

    #[test]
    fn sketch_correlation_is_bounded_and_symmetric(
        x in proptest::collection::vec(-50.0f64..50.0, 8..120),
        y_scale in 0.1f64..5.0,
        k in 1usize..10,
    ) {
        use affinity_dft::DftSketch;
        let y: Vec<f64> = x.iter().map(|v| v * y_scale + 1.0).collect();
        let sx = DftSketch::build(&x, k);
        let sy = DftSketch::build(&y, k);
        let a = sx.correlation(&sy);
        let b = sy.correlation(&sx);
        prop_assert!((-1.0..=1.0).contains(&a));
        prop_assert!((a - b).abs() < 1e-12, "symmetry: {a} vs {b}");
    }
}

//! Epoch-swap correctness under concurrency: readers racing `N`
//! publications each observe exactly one internally consistent epoch —
//! never a torn pairing of one epoch's relationships with another's
//! index or labels.
//!
//! Deterministic by construction: every epoch is built from a seeded
//! dataset, its full expected answer set is precomputed serially, and
//! racing readers may only ever see answer sets that match the epoch id
//! they grabbed — bit-for-bit.

use affinity_core::measures::Measure;
use affinity_core::prelude::*;
use affinity_data::generator::{sensor_dataset, SensorConfig};
use affinity_ql::{CancelToken, Session};
use affinity_scape::ScapeIndex;
use affinity_serve::{EpochCell, ModelEpoch};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

const SERIES: usize = 12;
const QUERIES: &[&str] = &[
    "MET correlation > 0.5",
    "MER covariance BETWEEN -1000 AND 1000",
    "MEC mean OF S0, S5, S11",
    "MET mean > 0",
];

/// Build epoch `i` and the serially-computed answers it must give.
fn build_epoch(i: u64) -> (Arc<ModelEpoch>, Vec<String>) {
    // Distinct window widths make every epoch's answers distinguishable
    // while keeping the series universe fixed.
    let samples = 32 + 4 * i as usize;
    let data = sensor_dataset(&SensorConfig::reduced(SERIES, samples));
    let affine = Symex::new(SymexParams::default()).run(&data).unwrap();
    let index = ScapeIndex::build(&data, &affine, &Measure::ALL).unwrap();
    let reference = Session::from_parts(
        &data,
        &affine,
        index.clone(),
        (0..SERIES).map(|v| format!("S{v}")).collect(),
    )
    .unwrap();
    let expected: Vec<String> = QUERIES
        .iter()
        .map(|q| reference.execute(q).unwrap().to_string())
        .collect();
    let epoch = ModelEpoch::from_owned(&data, affine, index, Vec::new(), i, 0).unwrap();
    (epoch, expected)
}

#[test]
fn readers_never_observe_a_torn_epoch_across_swaps() {
    const SWAPS: u64 = 8;
    const READERS: usize = 4;

    let mut epochs = Vec::new();
    let mut expected = Vec::new();
    for i in 1..=SWAPS {
        let (e, ans) = build_epoch(i);
        epochs.push(e);
        expected.push(ans);
    }
    let expected = Arc::new(expected);

    let cell = Arc::new(EpochCell::new(Arc::clone(&epochs[0])));
    let done = Arc::new(AtomicBool::new(false));
    let observations = Arc::new(AtomicU64::new(0));

    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let cell = Arc::clone(&cell);
            let done = Arc::clone(&done);
            let expected = Arc::clone(&expected);
            let observations = Arc::clone(&observations);
            thread::spawn(move || {
                let token = CancelToken::new();
                while !done.load(Ordering::Acquire) {
                    // Grab once, then run the whole query set against
                    // that grab — a successor may be published mid-set,
                    // and every answer must still match the grabbed id.
                    let epoch = cell.current();
                    let want = &expected[(epoch.epoch_id() - 1) as usize];
                    for (q, want) in QUERIES.iter().zip(want) {
                        let got = epoch.execute(q, &token).unwrap().to_string();
                        assert_eq!(
                            &got,
                            want,
                            "epoch {} answered inconsistently for {q}",
                            epoch.epoch_id()
                        );
                    }
                    observations.fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();

    for e in epochs.iter().skip(1) {
        thread::sleep(Duration::from_millis(30));
        cell.publish(Arc::clone(e));
    }
    assert_eq!(cell.published(), SWAPS);
    // Let readers race the final epoch a little before stopping.
    thread::sleep(Duration::from_millis(30));
    done.store(true, Ordering::Release);
    for r in readers {
        r.join().unwrap();
    }
    assert!(
        observations.load(Ordering::Relaxed) >= SWAPS,
        "readers made too few observations for the race to be meaningful"
    );
    // After the dust settles, the cell serves the last epoch.
    assert_eq!(cell.current().epoch_id(), SWAPS);
}

//! Transport-level hardening regressions: a client that floods an
//! unterminated mega-line or half-closes mid-line must get a *typed*
//! `PROTO` rejection, never an unbounded buffer, a hang, or a silent
//! drop — and the connection (and ledger) must stay coherent after it.

use affinity_core::measures::Measure;
use affinity_data::generator::{sensor_dataset, SensorConfig};
use affinity_serve::{ServeConfig, Server};
use affinity_stream::{StreamingConfig, StreamingEngine};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::Arc;
use std::time::Duration;

const SERIES: usize = 8;
const WINDOW: usize = 32;

/// An in-process server on an OS-assigned port, with its accept loop
/// on a background thread.
struct Fixture {
    server: Arc<Server>,
    addr: std::net::SocketAddr,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl Fixture {
    fn start() -> Fixture {
        let data = sensor_dataset(&SensorConfig::reduced(SERIES, 64));
        let mut scfg = StreamingConfig::new(WINDOW);
        scfg.indexed = Measure::EXTENDED.to_vec();
        let mut engine = StreamingEngine::new(SERIES, scfg);
        let mut row = vec![0.0; SERIES];
        for t in 0..WINDOW {
            for (v, slot) in row.iter_mut().enumerate() {
                *slot = data.series(v)[t];
            }
            engine.push(&row).expect("warm window");
        }
        let server = Server::new(engine, data, ServeConfig::default()).expect("server");
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let accept = {
            let server = Arc::clone(&server);
            std::thread::spawn(move || {
                server.serve(listener).expect("serve loop");
            })
        };
        Fixture {
            server,
            addr,
            accept: Some(accept),
        }
    }

    fn connect(&self) -> (TcpStream, BufReader<TcpStream>) {
        let stream = TcpStream::connect(self.addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        (stream, reader)
    }

    /// Read the ledger over a fresh connection (for tests whose own
    /// connection is already half-closed).
    fn ledger(&self) -> HashMap<String, u64> {
        let (mut stream, mut reader) = self.connect();
        stats(&mut stream, &mut reader)
    }

    fn stop(mut self) {
        self.server.request_shutdown();
        if let Some(h) = self.accept.take() {
            h.join().expect("accept thread");
        }
    }
}

/// Ask `.stats` in-band on the given connection. Controls are
/// answered by the connection's reader thread *after* it finishes any
/// preceding `handle_line` (including its admission bumps), so this is
/// the race-free way to observe the ledger a connection produced.
fn stats(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>) -> HashMap<String, u64> {
    stream.write_all(b".stats\n").expect("send .stats");
    let reply = read_line(reader);
    reply
        .strip_prefix("+stats ")
        .unwrap_or_else(|| panic!("bad .stats reply: {reply}"))
        .split_whitespace()
        .filter_map(|kv| kv.split_once('='))
        .filter_map(|(k, v)| v.parse().ok().map(|v| (k.to_string(), v)))
        .collect()
}

fn read_line(reader: &mut BufReader<TcpStream>) -> String {
    let mut line = String::new();
    assert!(
        reader.read_line(&mut line).expect("read response") > 0,
        "connection closed instead of answering"
    );
    line.trim_end().to_string()
}

/// A single line far beyond `MAX_LINE` must be rejected with a typed
/// `PROTO` error carrying the line's id prefix, its tail must be
/// swallowed rather than parsed as garbage requests, and the same
/// connection must keep answering real requests afterwards.
#[test]
fn oversized_line_gets_typed_proto_and_connection_survives() {
    let fx = Fixture::start();
    let (mut stream, mut reader) = fx.connect();

    // 80 KiB of request, no newline until the very end. The id prefix
    // ("flood") fits well inside the first read chunk.
    let huge = format!("flood {}\n", "x".repeat(80 * 1024));
    stream.write_all(huge.as_bytes()).expect("send flood");

    let reply = read_line(&mut reader);
    assert!(
        reply.starts_with("ERR flood PROTO "),
        "oversized line not rejected as typed PROTO: {reply}"
    );
    assert!(
        reply.contains("exceeds"),
        "rejection should say the bound was exceeded: {reply}"
    );

    // Exactly one response for the whole flood: the tail was swallowed,
    // not chopped into bogus follow-up requests.
    let ok = {
        stream.write_all(b"q1 MET mean > 0\n").expect("send query");
        read_line(&mut reader)
    };
    assert!(
        ok.starts_with("OK q1 "),
        "connection unusable after PROTO rejection: {ok}"
    );
    let n: usize = ok.split(' ').nth(2).unwrap().parse().unwrap();
    for _ in 0..n {
        let _ = read_line(&mut reader);
    }

    let ledger = stats(&mut stream, &mut reader);
    assert_eq!(ledger["rejected"], 1, "the flood counts once: {ledger:?}");
    assert_eq!(
        ledger["received"],
        ledger["admitted"] + ledger["rejected"],
        "admission split must cover the rejection: {ledger:?}"
    );
    fx.stop();
}

/// Half-closing with a partial (unterminated) line in flight must be
/// answered with a typed `PROTO unterminated` rejection — a dying
/// client's last fragment is reported, never silently dropped.
#[test]
fn unterminated_line_at_eof_is_rejected_typed() {
    let fx = Fixture::start();
    let (mut stream, mut reader) = fx.connect();

    stream
        .write_all(b"frag MET mean > 0") // no trailing newline
        .expect("send fragment");
    stream.shutdown(Shutdown::Write).expect("half-close");

    let reply = read_line(&mut reader);
    assert!(
        reply.starts_with("ERR frag PROTO "),
        "unterminated fragment not rejected as typed PROTO: {reply}"
    );
    assert!(
        reply.contains("unterminated"),
        "rejection should name the cause: {reply}"
    );
    // The server then closes its side; nothing else arrives.
    let mut rest = String::new();
    let n = reader.read_to_string(&mut rest).unwrap_or(0);
    assert_eq!(n, 0, "unexpected bytes after the rejection: {rest:?}");

    let ledger = fx.ledger();
    assert_eq!(ledger["rejected"], 1, "{ledger:?}");
    assert_eq!(ledger["received"], 1, "{ledger:?}");
    fx.stop();
}

/// Back-to-back oversized lines on one connection: each flood costs
/// exactly one typed rejection (no double-reporting while swallowing),
/// and a well-formed request between them still answers.
#[test]
fn repeated_floods_count_once_each() {
    let fx = Fixture::start();
    let (mut stream, mut reader) = fx.connect();

    for round in 0..2 {
        let huge = format!("f{round} {}\n", "y".repeat(70 * 1024));
        stream.write_all(huge.as_bytes()).expect("send flood");
        let reply = read_line(&mut reader);
        assert!(
            reply.starts_with(&format!("ERR f{round} PROTO ")),
            "round {round}: {reply}"
        );
        stream
            .write_all(format!("ok{round} MET mean > 0\n").as_bytes())
            .expect("send query");
        let ok = read_line(&mut reader);
        assert!(
            ok.starts_with(&format!("OK ok{round} ")),
            "round {round}: {ok}"
        );
        let n: usize = ok.split(' ').nth(2).unwrap().parse().unwrap();
        for _ in 0..n {
            let _ = read_line(&mut reader);
        }
    }

    let ledger = stats(&mut stream, &mut reader);
    assert_eq!(ledger["rejected"], 2, "{ledger:?}");
    assert_eq!(ledger["ok"], 2, "{ledger:?}");
    assert_eq!(
        ledger["received"],
        ledger["admitted"] + ledger["rejected"],
        "{ledger:?}"
    );
    fx.stop();
}

//! Per-shard epoch swaps under concurrency.
//!
//! A sharded refresh replaces only the shards that drifted; publishing
//! the refreshed model as a new [`ModelEpoch`] must therefore *share*
//! the untouched shards (`Arc` identity) with the previous epoch — one
//! shard's refresh never republishes the others. Racing readers pin an
//! epoch and must always see an internally consistent cross-shard
//! answer: the epoch's session output equals a session built fresh from
//! the very shard set the epoch holds, bit-for-bit, and the epoch
//! ledger stays balanced.

use affinity_ql::{CancelToken, Session};
use affinity_serve::{EpochCell, ModelEpoch};
use affinity_shard::ShardedStreamingEngine;
use affinity_stream::StreamingConfig;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;

const N: usize = 12;
const WIDTH: usize = 16;

const QUERIES: &[&str] = &[
    "MET correlation > 0.5",
    "MER covariance BETWEEN -1000 AND 1000",
    "MEC mean OF S0, S5, S11",
    "MET mean > 0",
];

/// Period-`WIDTH` deterministic tick (window stats are tick-invariant
/// until a step is injected), as in the shard crate's own tests.
fn tick(t: u64, stepped: &[usize], step: f64) -> Vec<f64> {
    (0..N)
        .map(|v| {
            let phase = (t as usize + 3 * v) % WIDTH;
            let base = (phase * phase % 23) as f64 + v as f64;
            if stepped.contains(&v) {
                base + step
            } else {
                base
            }
        })
        .collect()
}

fn warm_engine() -> (ShardedStreamingEngine, u64) {
    let mut engine = ShardedStreamingEngine::new(N, 3, StreamingConfig::new(WIDTH));
    let mut t = 0u64;
    while engine.model().is_none() {
        engine.push(&tick(t, &[], 0.0)).unwrap();
        t += 1;
    }
    (engine, t)
}

fn publish_current(
    cell: &EpochCell,
    engine: &ShardedStreamingEngine,
    epoch_id: u64,
) -> Arc<ModelEpoch> {
    let model = Arc::new(engine.model().unwrap().clone());
    let epoch = ModelEpoch::from_sharded(model, Vec::new(), epoch_id, 0).unwrap();
    cell.publish(Arc::clone(&epoch));
    epoch
}

/// Untouched shards must keep their `Arc` across epochs: a publication
/// after a delta refresh re-shares every shard the refresh skipped.
#[test]
fn epochs_share_untouched_shards_across_publications() {
    let (mut engine, mut t) = warm_engine();
    let cell = EpochCell::new(
        ModelEpoch::from_sharded(Arc::new(engine.model().unwrap().clone()), Vec::new(), 0, 0)
            .unwrap(),
    );

    // Drift two series, then drain for two cadences: the step stays in
    // the sliding window for one full cadence after it stops, so the
    // *second* drain refresh sees zero drift and must republish
    // nothing. Publish after every refresh and compare neighbors.
    let schedule: &[&[usize]] = &[&[0, 1], &[], &[], &[2, 3], &[], &[]];
    let mut prev = cell.current();
    let mut shared_total = 0usize;
    let mut replaced_total = 0usize;
    let mut epoch_id = 0u64;
    for stepped in schedule {
        let was = engine.refreshes();
        while engine.refreshes() == was {
            engine.push(&tick(t, stepped, 35.0)).unwrap();
            t += 1;
        }
        epoch_id += 1;
        let epoch = publish_current(&cell, &engine, epoch_id);
        assert_eq!(epoch.epoch_id(), epoch_id);
        let a = prev.sharded().unwrap();
        let b = epoch.sharded().unwrap();
        let (va, vb) = (a.versions(), b.versions());
        for i in 0..a.shards().len() {
            assert!(vb[i] >= va[i], "shard {i} version regressed");
            if vb[i] == va[i] {
                assert!(
                    Arc::ptr_eq(&a.shards()[i], &b.shards()[i]),
                    "untouched shard {i} was republished at epoch {epoch_id}"
                );
                shared_total += 1;
            } else {
                assert!(
                    !Arc::ptr_eq(&a.shards()[i], &b.shards()[i]),
                    "shard {i} bumped its version but kept its Arc"
                );
                replaced_total += 1;
            }
        }
        prev = epoch;
    }
    // The drift pattern must actually have exercised both arms.
    assert!(replaced_total > 0, "no shard was ever refreshed");
    assert!(shared_total > 0, "no shard was ever structurally shared");
    // `published` counts the initial epoch plus one per schedule entry.
    assert_eq!(cell.published(), schedule.len() as u64 + 1);
}

/// Readers racing per-shard refreshes: every pinned epoch answers
/// exactly like a session built directly from that epoch's shard set —
/// no torn cross-shard state — and epoch ids are monotone per reader.
#[test]
fn refresh_race_yields_no_torn_cross_shard_answers() {
    const PUBLICATIONS: u64 = 6;
    const READERS: usize = 4;

    let (engine, t0) = warm_engine();
    let cell = Arc::new(EpochCell::new(
        ModelEpoch::from_sharded(Arc::new(engine.model().unwrap().clone()), Vec::new(), 0, 0)
            .unwrap(),
    ));
    let done = Arc::new(AtomicBool::new(false));
    let observations = Arc::new(AtomicU64::new(0));

    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let cell = Arc::clone(&cell);
            let done = Arc::clone(&done);
            let observations = Arc::clone(&observations);
            thread::spawn(move || {
                let token = CancelToken::new();
                let mut last_epoch = 0u64;
                while !done.load(Ordering::Acquire) {
                    let epoch = cell.current();
                    assert!(epoch.epoch_id() >= last_epoch, "epoch went backwards");
                    last_epoch = epoch.epoch_id();
                    // Reference session over the *same* shard set the
                    // epoch pinned: any divergence means a torn pairing
                    // of session state with shard state.
                    let model = epoch.sharded().expect("sharded epoch");
                    let reference = Session::from_sharded(model, Vec::new()).unwrap();
                    for q in QUERIES {
                        let got = epoch.execute(q, &token).unwrap().to_string();
                        let want = reference.execute(q).unwrap().to_string();
                        assert_eq!(got, want, "torn answer for `{q}`");
                    }
                    observations.fetch_add(1, Ordering::Relaxed);
                }
                last_epoch
            })
        })
        .collect();

    // Writer: drive drift → refresh → publish, on this thread.
    let mut engine = engine;
    let mut t = t0;
    for epoch_id in 1..=PUBLICATIONS {
        let stepped = [(epoch_id as usize) % N];
        let was = engine.refreshes();
        while engine.refreshes() == was {
            engine.push(&tick(t, &stepped, 35.0)).unwrap();
            t += 1;
        }
        publish_current(&cell, &engine, epoch_id);
    }
    done.store(true, Ordering::Release);
    for r in readers {
        let last = r.join().expect("reader panicked");
        assert!(last <= PUBLICATIONS);
    }
    // Ledger balanced: the initial epoch plus exactly our
    // publications, nothing lost or duplicated, and the cell ends on
    // the final epoch.
    assert_eq!(cell.published(), PUBLICATIONS + 1);
    assert_eq!(cell.current().epoch_id(), PUBLICATIONS);
    assert!(
        observations.load(Ordering::Relaxed) > 0,
        "readers never ran"
    );
}

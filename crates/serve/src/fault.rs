//! Scripted fault injection for the chaos suite.
//!
//! A server started with fault injection enabled accepts `.fault`
//! commands that arm a [`FaultPlan`] — sticky delays (slow workers,
//! stalled response writers) and one-shot actions (poison the current
//! epoch, force a refresh mid-query). Production servers leave the plan
//! disabled and every hook compiles to a relaxed atomic load on the
//! fast path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// One injectable fault, as parsed off a `.fault` command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeFault {
    /// Sleep this long in the worker lane before executing each
    /// request — simulates slow queries to build real overload.
    SlowWorker(Duration),
    /// Sleep this long while holding a connection's write lock on each
    /// response — simulates a slow-reading client backing up a socket.
    StallWriter(Duration),
    /// Poison the currently published epoch: queries against it answer
    /// a typed error instead of a result.
    PoisonEpoch,
    /// Force a model refresh + epoch publication right now — the
    /// refresh-during-query race, on demand.
    RefreshNow,
}

impl ServeFault {
    /// Parse `.fault` operands: `slow-worker <ms>`, `stall-writer <ms>`,
    /// `poison-epoch`, `refresh`. Duration `0` disarms a sticky fault.
    ///
    /// # Errors
    /// A human-readable message for unknown names or bad arguments.
    pub fn parse(args: &[&str]) -> Result<ServeFault, String> {
        let ms = |arg: Option<&&str>| -> Result<Duration, String> {
            arg.ok_or_else(|| "missing <ms> argument".to_string())?
                .parse::<u64>()
                .map(Duration::from_millis)
                .map_err(|_| "bad <ms> argument".to_string())
        };
        match args.first().copied() {
            Some("slow-worker") => Ok(ServeFault::SlowWorker(ms(args.get(1))?)),
            Some("stall-writer") => Ok(ServeFault::StallWriter(ms(args.get(1))?)),
            Some("poison-epoch") => Ok(ServeFault::PoisonEpoch),
            Some("refresh") => Ok(ServeFault::RefreshNow),
            Some(other) => Err(format!("unknown fault '{other}'")),
            None => Err("missing fault name".to_string()),
        }
    }
}

/// The armed sticky faults. One plan per server, shared by every lane.
#[derive(Debug, Default)]
pub struct FaultPlan {
    slow_worker_ms: AtomicU64,
    stall_writer_ms: AtomicU64,
}

impl FaultPlan {
    /// Arm a sticky fault (one-shot faults are executed by the server,
    /// not stored).
    pub fn arm(&self, fault: ServeFault) {
        match fault {
            ServeFault::SlowWorker(d) => self
                .slow_worker_ms
                // afflint: allow(relaxed) -- standalone chaos knob: workers re-read it at their next poll and no other memory is published with it
                .store(d.as_millis() as u64, Ordering::Relaxed),
            ServeFault::StallWriter(d) => self
                .stall_writer_ms
                // afflint: allow(relaxed) -- standalone chaos knob: workers re-read it at their next poll and no other memory is published with it
                .store(d.as_millis() as u64, Ordering::Relaxed),
            ServeFault::PoisonEpoch | ServeFault::RefreshNow => {}
        }
    }

    /// The armed pre-execution delay, if any.
    pub fn slow_worker(&self) -> Option<Duration> {
        match self.slow_worker_ms.load(Ordering::Relaxed) {
            0 => None,
            ms => Some(Duration::from_millis(ms)),
        }
    }

    /// The armed response-write delay, if any.
    pub fn stall_writer(&self) -> Option<Duration> {
        match self.stall_writer_ms.load(Ordering::Relaxed) {
            0 => None,
            ms => Some(Duration::from_millis(ms)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_arm() {
        let plan = FaultPlan::default();
        assert!(plan.slow_worker().is_none());
        plan.arm(ServeFault::parse(&["slow-worker", "25"]).unwrap());
        assert_eq!(plan.slow_worker(), Some(Duration::from_millis(25)));
        plan.arm(ServeFault::parse(&["slow-worker", "0"]).unwrap());
        assert!(plan.slow_worker().is_none());
        plan.arm(ServeFault::parse(&["stall-writer", "10"]).unwrap());
        assert_eq!(plan.stall_writer(), Some(Duration::from_millis(10)));
        assert_eq!(
            ServeFault::parse(&["poison-epoch"]).unwrap(),
            ServeFault::PoisonEpoch
        );
        assert_eq!(
            ServeFault::parse(&["refresh"]).unwrap(),
            ServeFault::RefreshNow
        );
        assert!(ServeFault::parse(&["nope"]).is_err());
        assert!(ServeFault::parse(&[]).is_err());
        assert!(ServeFault::parse(&["slow-worker"]).is_err());
        assert!(ServeFault::parse(&["slow-worker", "x"]).is_err());
    }
}

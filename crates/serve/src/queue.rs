//! Bounded admission control: the overload contract.
//!
//! Every request enters through an [`AdmissionQueue`] with a hard
//! capacity and an explicit [`QueuePolicy`]. When offered load exceeds
//! capacity the queue never grows — it either rejects the newcomer or
//! sheds the oldest waiter, and in both cases the displaced request
//! gets a *typed* `OVERLOADED` response instead of a hang. Paired with
//! per-request deadlines this bounds the tail latency of every admitted
//! request: a request waits at most `capacity / drain-rate`, and if
//! that exceeds its deadline it is answered `DEADLINE` the moment a
//! worker picks it up.
//!
//! [`ServeStats`] is the service's conservation ledger. Every request
//! is counted exactly once on arrival and exactly once at its outcome,
//! so at quiescence `received = admitted + rejected` and
//! `admitted = ok + err + deadline + shed` — the invariants the chaos
//! suite checks under open-loop overload.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// What to do with a new request when the queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedPolicy {
    /// Reject the incoming request (the queue keeps its oldest work).
    RejectNewest,
    /// Admit the incoming request and shed the oldest waiter (the queue
    /// prefers fresh work — the right default when callers time out
    /// anyway and old waiters are likely already abandoned).
    ShedOldest,
}

/// Admission-control policy for a serving instance.
#[derive(Debug, Clone)]
pub struct QueuePolicy {
    /// Maximum queued (admitted but not yet executing) requests.
    pub capacity: usize,
    /// Per-request deadline, measured from admission; `None` disables
    /// deadline enforcement.
    pub deadline: Option<Duration>,
    /// Full-queue behavior.
    pub shed: ShedPolicy,
}

impl Default for QueuePolicy {
    fn default() -> Self {
        QueuePolicy {
            capacity: 64,
            deadline: Some(Duration::from_secs(5)),
            shed: ShedPolicy::RejectNewest,
        }
    }
}

/// Outcome of offering a request to the queue.
#[derive(Debug)]
pub enum Admission<T> {
    /// Admitted; the caller owes the request exactly one response.
    Admitted,
    /// Admitted, and the oldest waiter was displaced to make room — the
    /// caller must answer the displaced request `OVERLOADED`.
    AdmittedShedding(T),
    /// Not admitted (queue full under [`ShedPolicy::RejectNewest`], or
    /// the queue is closed for shutdown); the request is handed back
    /// for a typed rejection.
    Rejected(T),
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded MPMC queue with explicit overload behavior and a
/// close-then-drain shutdown protocol.
pub struct AdmissionQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: usize,
    shed: ShedPolicy,
    high_water: AtomicU64,
}

impl<T> AdmissionQueue<T> {
    /// Lock the queue state, recovering from poisoning: every critical
    /// section below only performs `VecDeque` operations that cannot
    /// leave `Inner` half-updated, so a panicking worker thread must
    /// not take the whole service down with a poisoned mutex.
    fn lock(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// An empty queue with the policy's capacity and shed behavior.
    pub fn new(policy: &QueuePolicy) -> Self {
        AdmissionQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(policy.capacity),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: policy.capacity.max(1),
            shed: policy.shed,
            high_water: AtomicU64::new(0),
        }
    }

    /// Offer a request. Never blocks.
    pub fn push(&self, item: T) -> Admission<T> {
        let mut inner = self.lock();
        if inner.closed {
            return Admission::Rejected(item);
        }
        let displaced = if inner.items.len() >= self.capacity {
            match self.shed {
                ShedPolicy::RejectNewest => return Admission::Rejected(item),
                ShedPolicy::ShedOldest => inner.items.pop_front(),
            }
        } else {
            None
        };
        inner.items.push_back(item);
        let depth = inner.items.len() as u64;
        self.high_water.fetch_max(depth, Ordering::Relaxed);
        drop(inner);
        self.ready.notify_one();
        match displaced {
            Some(old) => Admission::AdmittedShedding(old),
            None => Admission::Admitted,
        }
    }

    /// Take the oldest request, blocking while the queue is open and
    /// empty. Returns `None` only when the queue is closed **and**
    /// fully drained — the worker-lane exit signal.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.lock();
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self
                .ready
                .wait(inner)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Close the queue: subsequent [`push`](AdmissionQueue::push)es are
    /// rejected, already-admitted requests drain normally, and blocked
    /// [`pop`](AdmissionQueue::pop)s return once the backlog is empty.
    pub fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }

    /// Current backlog depth.
    pub fn depth(&self) -> usize {
        self.lock().items.len()
    }

    /// Deepest backlog ever observed — bounded by `capacity` by
    /// construction, which is the "no unbounded queue growth" proof.
    pub fn high_water(&self) -> u64 {
        self.high_water.load(Ordering::Relaxed)
    }
}

/// The request-conservation ledger (all counters monotone).
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Query requests received off sockets.
    pub received: AtomicU64,
    /// Requests admitted into the queue.
    pub admitted: AtomicU64,
    /// Requests refused at admission (full queue or shutdown).
    pub rejected: AtomicU64,
    /// Admitted requests displaced by [`ShedPolicy::ShedOldest`].
    pub shed: AtomicU64,
    /// Admitted requests answered with a query result.
    pub done_ok: AtomicU64,
    /// Admitted requests answered with a typed query error.
    pub done_err: AtomicU64,
    /// Admitted requests whose deadline passed (answered `DEADLINE`).
    pub done_deadline: AtomicU64,
}

impl ServeStats {
    fn get(c: &AtomicU64) -> u64 {
        c.load(Ordering::Relaxed)
    }

    /// Add one to a counter.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Render the ledger as `key=value` pairs (the `.stats` wire form).
    pub fn render(&self, depth: usize, high_water: u64, epochs: u64) -> String {
        format!(
            "received={} admitted={} rejected={} shed={} ok={} err={} deadline={} depth={} high_water={} epochs={}",
            Self::get(&self.received),
            Self::get(&self.admitted),
            Self::get(&self.rejected),
            Self::get(&self.shed),
            Self::get(&self.done_ok),
            Self::get(&self.done_err),
            Self::get(&self.done_deadline),
            depth,
            high_water,
            epochs,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    fn policy(capacity: usize, shed: ShedPolicy) -> QueuePolicy {
        QueuePolicy {
            capacity,
            deadline: None,
            shed,
        }
    }

    #[test]
    fn reject_newest_on_overflow() {
        let q = AdmissionQueue::new(&policy(2, ShedPolicy::RejectNewest));
        assert!(matches!(q.push(1), Admission::Admitted));
        assert!(matches!(q.push(2), Admission::Admitted));
        assert!(matches!(q.push(3), Admission::Rejected(3)));
        assert_eq!(q.depth(), 2);
        assert_eq!(q.high_water(), 2);
        assert_eq!(q.pop(), Some(1));
    }

    #[test]
    fn shed_oldest_on_overflow() {
        let q = AdmissionQueue::new(&policy(2, ShedPolicy::ShedOldest));
        q.push(1);
        q.push(2);
        match q.push(3) {
            Admission::AdmittedShedding(old) => assert_eq!(old, 1),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
    }

    #[test]
    fn close_rejects_new_and_drains_backlog() {
        let q = AdmissionQueue::new(&policy(8, ShedPolicy::RejectNewest));
        q.push(1);
        q.push(2);
        q.close();
        assert!(matches!(q.push(3), Admission::Rejected(3)));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocked_pop_wakes_on_push_and_on_close() {
        let q = Arc::new(AdmissionQueue::new(&policy(8, ShedPolicy::RejectNewest)));
        let q2 = Arc::clone(&q);
        let popper = thread::spawn(move || (q2.pop(), q2.pop()));
        thread::sleep(Duration::from_millis(20));
        q.push(42);
        thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(popper.join().unwrap(), (Some(42), None));
    }

    #[test]
    fn stats_render_contains_every_counter() {
        let s = ServeStats::default();
        ServeStats::bump(&s.received);
        ServeStats::bump(&s.admitted);
        ServeStats::bump(&s.done_ok);
        let line = s.render(3, 5, 2);
        for key in [
            "received=1",
            "admitted=1",
            "rejected=0",
            "shed=0",
            "ok=1",
            "err=0",
            "deadline=0",
            "depth=3",
            "high_water=5",
            "epochs=2",
        ] {
            assert!(line.contains(key), "{line} missing {key}");
        }
    }
}

//! The line-protocol TCP server: admission, worker lanes, epoch
//! publication, graceful shutdown.
//!
//! ## Wire protocol
//!
//! One request per line. A line starting with `.` is a control command
//! answered inline on the connection thread; anything else is
//! `<id> <statement>` — a client-chosen response tag followed by an
//! `affinity-ql` statement — admitted through the bounded queue and
//! executed on a worker lane against the epoch current at pickup time.
//! Responses are tagged, so they may interleave out of order:
//!
//! ```text
//! OK <id> <n>        then n payload lines (the statement's output)
//! ERR <id> <CODE> <message>
//! ```
//!
//! Error codes: `PARSE`, `UNKNOWN`, `RANGE`, `CANCELLED`, `DEADLINE`,
//! `OVERLOADED`, `INTERNAL`, `PROTO`. Control commands answer a single
//! `+...` line on success or `-err <message>`:
//!
//! ```text
//! .ping                 liveness probe
//! .epoch                current epoch id / model age / tick count
//! .stats                the conservation ledger (key=value pairs)
//! .tick <k>             ingest k deterministic replay ticks
//! .refresh              force a model refresh + epoch publication
//! .fault <name> [ms]    arm a fault (servers started with chaos only)
//! .shutdown             graceful shutdown: drain, persist, exit
//! ```

use crate::epoch::{EpochCell, ModelEpoch};
use crate::fault::{FaultPlan, ServeFault};
use crate::queue::{Admission, AdmissionQueue, QueuePolicy, ServeStats};
use affinity_coord::proto::{decode_request, encode_response, ShardRequest};
use affinity_core::measures::Measure;
use affinity_data::DataMatrix;
use affinity_par::ThreadPool;
use affinity_ql::{CancelToken, QlError};
use affinity_shard::{ShardError, ShardPlan, ShardedModel};
use affinity_stream::{Model, RefreshKind, StreamError, StreamingEngine};
use parking_lot::Mutex;
use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Longest accepted request line; longer input is answered `PROTO`
/// piecewise instead of growing an unbounded buffer.
const MAX_LINE: u64 = 64 * 1024;

/// Poll interval for the accept loop and reader timeouts: bounds how
/// long shutdown waits on an idle socket.
const POLL: Duration = Duration::from_millis(50);

/// Shard-server mode: this process serves one shard of a `K`-shard
/// fleet. Epochs are published as [`ShardedModel`]s (cut with
/// [`ShardPlan::blocked`], so every fleet member derives the identical
/// plan from `(series, shards)` alone), and `!`-prefixed statement
/// lines are answered through [`affinity_coord::answer`] — the same
/// function the coordinator's in-process backend runs, which is what
/// makes the distributed oracle hold.
#[derive(Debug, Clone)]
pub struct ShardServing {
    /// This server's shard index (`< shards`).
    pub shard: usize,
    /// Fleet size.
    pub shards: usize,
    /// Measures the shard indexes (normally `Measure::EXTENDED`; every
    /// fleet member must agree or the coordinator refuses the fleet).
    pub indexed: Vec<Measure>,
}

impl ShardServing {
    /// Shard `shard` of `shards`, indexing the extended measure set.
    pub fn new(shard: usize, shards: usize) -> ShardServing {
        ShardServing {
            shard,
            shards,
            indexed: Measure::EXTENDED.to_vec(),
        }
    }
}

/// Server configuration (the CLI flags, structured).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker lanes executing queries (≥ 1).
    pub workers: usize,
    /// Admission-control policy.
    pub queue: QueuePolicy,
    /// Accept `.fault` commands (chaos testing only).
    pub chaos: bool,
    /// Self-driven refresh churn: ingest one replay tick this often.
    pub churn_every: Option<Duration>,
    /// Serve one shard of a fleet instead of the whole model.
    pub shard: Option<ShardServing>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            queue: QueuePolicy::default(),
            chaos: false,
            churn_every: None,
            shard: None,
        }
    }
}

/// Errors raised starting or running a server.
#[derive(Debug)]
pub enum ServeError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// Streaming-engine failure (refresh or persistence).
    Stream(StreamError),
    /// Epoch construction failure.
    Ql(QlError),
    /// Sharded-epoch construction failure (shard-server mode).
    Shard(ShardError),
    /// The engine handed to [`Server::new`] has no model yet.
    NoModel,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "io: {e}"),
            ServeError::Stream(e) => write!(f, "stream: {e}"),
            ServeError::Ql(e) => write!(f, "ql: {e}"),
            ServeError::Shard(e) => write!(f, "shard: {e}"),
            ServeError::NoModel => write!(f, "engine has no model (window not warm?)"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<StreamError> for ServeError {
    fn from(e: StreamError) -> Self {
        ServeError::Stream(e)
    }
}

impl From<QlError> for ServeError {
    fn from(e: QlError) -> Self {
        ServeError::Ql(e)
    }
}

impl From<ShardError> for ServeError {
    fn from(e: ShardError) -> Self {
        ServeError::Shard(e)
    }
}

/// One connection's response half: workers and the reader share it, so
/// every response is a single locked write of a complete message.
struct Conn {
    writer: Mutex<TcpStream>,
    alive: AtomicBool,
}

impl Conn {
    /// Write one complete response (must be newline-terminated). A
    /// failed or timed-out write marks the connection dead; subsequent
    /// responses to it are dropped (the requests still count in the
    /// ledger).
    fn send(&self, faults: &FaultPlan, text: &str) {
        if !self.alive.load(Ordering::Acquire) {
            return;
        }
        let mut stream = self.writer.lock();
        if let Some(stall) = faults.stall_writer() {
            std::thread::sleep(stall);
        }
        // afflint: allow(lock-io) -- the writer mutex exists precisely to serialize this one complete write per response; no other lock is held and readers never block on it
        if stream.write_all(text.as_bytes()).is_err() {
            self.alive.store(false, Ordering::Release);
        }
    }
}

/// One admitted query request.
struct Request {
    id: String,
    statement: String,
    deadline: Option<Instant>,
    conn: Arc<Conn>,
}

/// The serving instance. Shared across the accept loop, connection
/// readers, worker lanes, and the churn thread via `Arc`.
pub struct Server {
    engine: Mutex<StreamingEngine>,
    /// Deterministic tick source: tick `t` replays column `t mod
    /// samples` of this matrix, so any two runs that reach the same
    /// tick count hold identical windows — the property the
    /// kill-9/restart bit-identity check rests on.
    replay: DataMatrix,
    cell: EpochCell,
    queue: AdmissionQueue<Request>,
    stats: ServeStats,
    faults: FaultPlan,
    cfg: ServeConfig,
    /// Build pool for sharded epochs (shard-server mode only).
    shard_pool: Option<Arc<ThreadPool>>,
    epoch_seq: AtomicU64,
    shutdown: AtomicBool,
}

impl Server {
    /// Wrap a built streaming engine (its current model becomes epoch
    /// 1). `replay` is the deterministic tick source for `.tick` and
    /// churn — pass the dataset the engine was warmed from.
    ///
    /// Series are addressed as `S<id>` (or bare numeric id) regardless
    /// of origin, matching snapshot-resumed sessions.
    ///
    /// # Errors
    /// [`ServeError::NoModel`] if the engine has not built a model yet.
    pub fn new(
        engine: StreamingEngine,
        replay: DataMatrix,
        cfg: ServeConfig,
    ) -> Result<Arc<Self>, ServeError> {
        let model = engine.model().ok_or(ServeError::NoModel)?;
        let shard_pool = match &cfg.shard {
            Some(sh) => {
                if sh.shard >= sh.shards {
                    return Err(ServeError::Shard(ShardError::Plan(format!(
                        "shard {} of a {}-shard fleet",
                        sh.shard, sh.shards
                    ))));
                }
                Some(Arc::new(ThreadPool::new(cfg.workers.max(1))))
            }
            None => None,
        };
        let first = make_epoch(model, cfg.shard.as_ref(), shard_pool.as_ref(), 1)?;
        Ok(Arc::new(Server {
            cell: EpochCell::new(first),
            queue: AdmissionQueue::new(&cfg.queue),
            stats: ServeStats::default(),
            faults: FaultPlan::default(),
            epoch_seq: AtomicU64::new(1),
            shutdown: AtomicBool::new(false),
            engine: Mutex::new(engine),
            replay,
            cfg,
            shard_pool,
        }))
    }

    /// The current epoch (tests and embedders; the wire path uses it
    /// per request).
    pub fn current_epoch(&self) -> Arc<ModelEpoch> {
        self.cell.current()
    }

    /// Total epochs published so far.
    pub fn epochs_published(&self) -> u64 {
        self.cell.published()
    }

    /// The live admission/completion ledger, rendered as the same
    /// `k=v` line `.stats` and the final `SERVE done` report use.
    pub fn ledger(&self) -> String {
        self.stats.render(
            self.queue.depth(),
            self.queue.high_water(),
            self.cell.published(),
        )
    }

    /// Request graceful shutdown: stop accepting, refuse new work,
    /// drain admitted requests, persist if armed. Idempotent; callable
    /// from any thread (e.g. a signal watcher).
    pub fn request_shutdown(&self) {
        if !self.shutdown.swap(true, Ordering::AcqRel) {
            self.queue.close();
        }
    }

    /// Whether shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Run the accept loop until shutdown, then drain and (if the
    /// engine has persistence armed) commit a final checkpoint.
    /// Returns the final ledger line.
    ///
    /// # Errors
    /// [`ServeError::Io`] on listener failures,
    /// [`ServeError::Stream`] if the final checkpoint fails.
    pub fn serve(self: &Arc<Self>, listener: TcpListener) -> Result<String, ServeError> {
        listener.set_nonblocking(true)?;

        // Worker lanes: a dedicated pool broadcast, one drain loop per
        // lane, hosted on one coordinator thread.
        let lanes = self.cfg.workers.max(1);
        let pool = ThreadPool::new(lanes);
        let coordinator = {
            let srv = Arc::clone(self);
            std::thread::Builder::new()
                .name("affinity-serve-workers".into())
                .spawn(move || pool.broadcast(|_lane| srv.worker_loop()))?
        };

        // Optional churn: one replay tick per interval, so epochs keep
        // turning over while queries run.
        let churn = match self.cfg.churn_every {
            Some(every) => {
                let srv = Arc::clone(self);
                Some(
                    std::thread::Builder::new()
                        .name("affinity-serve-churn".into())
                        .spawn(move || {
                            let mut last = Instant::now();
                            while !srv.is_shutting_down() {
                                std::thread::sleep(POLL.min(every));
                                if last.elapsed() >= every {
                                    last = Instant::now();
                                    let _ = srv.tick(1);
                                }
                            }
                        })?,
                )
            }
            None => None,
        };

        let mut readers = Vec::new();
        while !self.is_shutting_down() {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    let srv = Arc::clone(self);
                    let spawned = std::thread::Builder::new()
                        .name("affinity-serve-conn".into())
                        .spawn(move || srv.reader_loop(stream));
                    // On thread exhaustion: shed this connection (the
                    // stream drops and closes) but keep serving the
                    // ones we already have.
                    if let Ok(handle) = spawned {
                        readers.push(handle);
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(POLL),
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => {
                    self.request_shutdown();
                    // Drain before surfacing the listener failure.
                    let _ = coordinator.join();
                    return Err(ServeError::Io(e));
                }
            }
        }

        // Drain: the queue is closed (request_shutdown), workers exit
        // when the backlog is empty, readers exit on the flag.
        if coordinator.join().is_err() {
            return Err(ServeError::Io(std::io::Error::other(
                "worker coordinator panicked",
            )));
        }
        for r in readers {
            let _ = r.join();
        }
        if let Some(c) = churn {
            let _ = c.join();
        }

        let mut engine = self.engine.lock();
        if engine.snapshot_generation().is_some() {
            engine.checkpoint()?;
        }
        let ticks = engine.window().ticks();
        drop(engine);
        Ok(format!(
            "{} ticks={ticks}",
            self.stats.render(
                self.queue.depth(),
                self.queue.high_water(),
                self.cell.published()
            )
        ))
    }

    /// One worker lane: drain admitted requests until close + empty.
    fn worker_loop(&self) {
        while let Some(req) = self.queue.pop() {
            self.process(req);
        }
    }

    /// Execute one admitted request and answer it — exactly one
    /// response per admitted request, typed error on every failure
    /// path, panic contained to the request.
    fn process(&self, req: Request) {
        if let Some(deadline) = req.deadline {
            if Instant::now() >= deadline {
                ServeStats::bump(&self.stats.done_deadline);
                req.conn.send(
                    &self.faults,
                    &format!("ERR {} DEADLINE queued past deadline\n", req.id),
                );
                return;
            }
        }
        if let Some(delay) = self.faults.slow_worker() {
            std::thread::sleep(delay);
        }
        let token = match req.deadline {
            Some(d) => CancelToken::until(d),
            None => CancelToken::new(),
        };
        // In-flight queries keep the epoch they started on even if a
        // refresh publishes a successor mid-execution.
        let epoch = self.cell.current();
        if req.statement.starts_with('!') {
            self.process_shard(&req, &epoch);
            return;
        }
        let result = catch_unwind(AssertUnwindSafe(|| epoch.execute(&req.statement, &token)));
        let response = match result {
            Ok(Ok(out)) => {
                ServeStats::bump(&self.stats.done_ok);
                let text = out.to_string();
                format!("OK {} {}\n{text}", req.id, text.lines().count())
            }
            Ok(Err(e)) => {
                let code = match &e {
                    QlError::Parse(_) => "PARSE",
                    QlError::UnknownSeries(_) => "UNKNOWN",
                    QlError::EmptyRange { .. } => "RANGE",
                    QlError::Cancelled => "CANCELLED",
                    QlError::DeadlineExceeded => "DEADLINE",
                    QlError::Engine(_) => "INTERNAL",
                };
                if matches!(e, QlError::DeadlineExceeded) {
                    ServeStats::bump(&self.stats.done_deadline);
                } else {
                    ServeStats::bump(&self.stats.done_err);
                }
                format!("ERR {} {code} {}\n", req.id, one_line(&e.to_string()))
            }
            Err(_) => {
                ServeStats::bump(&self.stats.done_err);
                format!("ERR {} INTERNAL query execution panicked\n", req.id)
            }
        };
        req.conn.send(&self.faults, &response);
    }

    /// Answer one coordinator shard request (`!`-prefixed statement)
    /// through [`affinity_coord::answer`] — the same implementation the
    /// in-process backend runs, so remote answers cannot drift from it.
    fn process_shard(&self, req: &Request, epoch: &ModelEpoch) {
        let Some(model) = epoch.sharded() else {
            ServeStats::bump(&self.stats.done_err);
            req.conn.send(
                &self.faults,
                &format!(
                    "ERR {} PROTO shard requests need a shard server (--shard)\n",
                    req.id
                ),
            );
            return;
        };
        if epoch.is_poisoned() {
            ServeStats::bump(&self.stats.done_err);
            req.conn.send(
                &self.faults,
                &format!("ERR {} INTERNAL epoch poisoned (injected fault)\n", req.id),
            );
            return;
        }
        let sreq = match decode_request(&req.statement) {
            Ok(r) => r,
            Err(e) => {
                ServeStats::bump(&self.stats.done_err);
                req.conn.send(
                    &self.faults,
                    &format!("ERR {} PROTO {}\n", req.id, one_line(&e.to_string())),
                );
                return;
            }
        };
        // Only `!meta` reports ticks; skip the engine lock otherwise.
        let ticks = if matches!(sreq, ShardRequest::Meta) {
            self.engine.lock().window().ticks()
        } else {
            0
        };
        let shard = self.cfg.shard.as_ref().map_or(0, |s| s.shard);
        let result = catch_unwind(AssertUnwindSafe(|| {
            affinity_coord::answer(model, shard, ticks, epoch.epoch_id(), &sreq)
        }));
        let response = match result {
            Ok(Ok(resp)) => {
                ServeStats::bump(&self.stats.done_ok);
                let lines = encode_response(&resp);
                let mut text = format!("OK {} {}\n", req.id, lines.len());
                for line in &lines {
                    text.push_str(line);
                    text.push('\n');
                }
                text
            }
            Ok(Err(e)) => {
                ServeStats::bump(&self.stats.done_err);
                format!(
                    "ERR {} {} {}\n",
                    req.id,
                    e.wire_code(),
                    one_line(&e.to_string())
                )
            }
            Err(_) => {
                ServeStats::bump(&self.stats.done_err);
                format!("ERR {} INTERNAL shard request panicked\n", req.id)
            }
        };
        req.conn.send(&self.faults, &response);
    }

    /// Ingest `count` deterministic replay ticks; publish a new epoch
    /// if any push refreshed the model. Returns
    /// `(total ticks, total refreshes, current epoch id)`.
    ///
    /// # Errors
    /// Propagates refresh failures.
    pub fn tick(&self, count: u64) -> Result<(u64, u64, u64), ServeError> {
        let mut engine = self.engine.lock();
        let samples = self.replay.samples() as u64;
        let n = self.replay.series_count();
        let mut refreshed_any = false;
        let mut row = vec![0.0; n];
        for _ in 0..count {
            let at = (engine.window().ticks() % samples) as usize;
            for (v, slot) in row.iter_mut().enumerate() {
                // afflint: allow(panic) -- replay matrix is server-owned, not wire input: at < samples by the modulo above, v < series_count by the loop bound
                *slot = self.replay.series(v)[at];
            }
            refreshed_any |= engine.push(&row)?;
        }
        if refreshed_any {
            self.publish_from(&engine)?;
        }
        let ticks = engine.window().ticks();
        let refreshes = engine.refreshes();
        drop(engine);
        Ok((ticks, refreshes, self.cell.current().epoch_id()))
    }

    /// Build and publish an epoch from the engine's current model. The
    /// engine lock must be held by the caller.
    fn publish_from(&self, engine: &StreamingEngine) -> Result<u64, ServeError> {
        let model = engine.model().ok_or(ServeError::NoModel)?;
        let id = self.epoch_seq.fetch_add(1, Ordering::AcqRel) + 1;
        let epoch = make_epoch(model, self.cfg.shard.as_ref(), self.shard_pool.as_ref(), id)?;
        self.cell.publish(epoch);
        Ok(id)
    }

    /// One connection: accumulate lines (partial reads survive the poll
    /// timeout), answer control commands inline, admit queries.
    fn reader_loop(self: &Arc<Self>, stream: TcpStream) {
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(POLL));
        // A stalled client bounds a worker's write at this, not forever.
        let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
        let writer = match stream.try_clone() {
            Ok(w) => w,
            Err(_) => return,
        };
        let conn = Arc::new(Conn {
            writer: Mutex::new(writer),
            alive: AtomicBool::new(true),
        });
        let mut reader = BufReader::new(stream);
        let mut buf = String::new();
        // After rejecting an oversized line, swallow bytes up to its
        // newline instead of parsing the tail as a fresh request.
        let mut swallowing = false;
        while !self.is_shutting_down() && conn.alive.load(Ordering::Acquire) {
            match (&mut reader).take(MAX_LINE).read_line(&mut buf) {
                Ok(0) => {
                    // EOF with an unterminated partial line: a typed
                    // rejection, never a silent drop.
                    if !buf.is_empty() && !swallowing {
                        self.reject_proto(&conn, &line_id_prefix(&buf), "unterminated line at EOF");
                    }
                    break;
                }
                Ok(_) => {
                    if buf.ends_with('\n') {
                        let line = std::mem::take(&mut buf);
                        if swallowing {
                            swallowing = false; // discarded tail of a rejected line
                        } else {
                            self.handle_line(line.trim(), &conn);
                        }
                    } else if buf.len() as u64 >= MAX_LINE {
                        let id = line_id_prefix(&buf);
                        buf.clear();
                        if !swallowing {
                            swallowing = true;
                            self.reject_proto(
                                &conn,
                                &id,
                                &format!("line exceeds {MAX_LINE} bytes"),
                            );
                        }
                    }
                    // else: partial line, keep accumulating.
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => break,
            }
        }
    }

    /// Count and answer a transport-level protocol rejection: the raw
    /// line never becomes a request, but it still lands in the ledger
    /// (`received` + `rejected`) and gets a typed `ERR ... PROTO`.
    fn reject_proto(&self, conn: &Arc<Conn>, id: &str, msg: &str) {
        ServeStats::bump(&self.stats.received);
        ServeStats::bump(&self.stats.rejected);
        conn.send(&self.faults, &format!("ERR {id} PROTO {msg}\n"));
    }

    /// Dispatch one complete request line.
    fn handle_line(self: &Arc<Self>, line: &str, conn: &Arc<Conn>) {
        if line.is_empty() {
            return;
        }
        if let Some(cmd) = line.strip_prefix('.') {
            self.control(cmd, conn);
            return;
        }
        ServeStats::bump(&self.stats.received);
        let Some((id, statement)) = line.split_once(' ') else {
            ServeStats::bump(&self.stats.rejected);
            conn.send(
                &self.faults,
                &format!("ERR {} PROTO expected '<id> <statement>'\n", one_line(line)),
            );
            return;
        };
        let req = Request {
            id: id.to_string(),
            statement: statement.to_string(),
            deadline: self.cfg.queue.deadline.map(|d| Instant::now() + d),
            conn: Arc::clone(conn),
        };
        match self.queue.push(req) {
            Admission::Admitted => ServeStats::bump(&self.stats.admitted),
            Admission::AdmittedShedding(old) => {
                ServeStats::bump(&self.stats.admitted);
                ServeStats::bump(&self.stats.shed);
                old.conn.send(
                    &self.faults,
                    &format!("ERR {} OVERLOADED shed by newer request\n", old.id),
                );
            }
            Admission::Rejected(req) => {
                ServeStats::bump(&self.stats.rejected);
                let why = if self.is_shutting_down() {
                    "shutting down"
                } else {
                    "queue full"
                };
                req.conn
                    .send(&self.faults, &format!("ERR {} OVERLOADED {why}\n", req.id));
            }
        }
    }

    /// Answer a `.command` inline.
    fn control(self: &Arc<Self>, cmd: &str, conn: &Arc<Conn>) {
        let parts: Vec<&str> = cmd.split_whitespace().collect();
        let reply = match parts.first().copied() {
            Some("ping") => "+pong\n".to_string(),
            Some("epoch") => {
                let e = self.cell.current();
                let ticks = self.engine.lock().window().ticks();
                format!(
                    "+epoch id={} built_at={} ticks={ticks}\n",
                    e.epoch_id(),
                    e.built_at()
                )
            }
            Some("stats") => format!(
                "+stats {}\n",
                self.stats.render(
                    self.queue.depth(),
                    self.queue.high_water(),
                    self.cell.published()
                )
            ),
            Some("tick") => {
                let count = parts
                    .get(1)
                    .and_then(|s| s.parse::<u64>().ok())
                    .filter(|k| (1..=1_000_000).contains(k));
                match count {
                    Some(k) => match self.tick(k) {
                        Ok((ticks, refreshes, epoch)) => {
                            format!("+ticks total={ticks} refreshes={refreshes} epoch={epoch}\n")
                        }
                        Err(e) => format!("-err tick failed: {}\n", one_line(&e.to_string())),
                    },
                    None => "-err usage: .tick <1..=1000000>\n".to_string(),
                }
            }
            Some("refresh") => {
                let mut engine = self.engine.lock();
                match engine.refresh_auto() {
                    Ok(kind) => match self.publish_from(&engine) {
                        Ok(id) => format!(
                            "+refreshed epoch={id} kind={}\n",
                            match kind {
                                RefreshKind::Full => "full",
                                RefreshKind::Delta { .. } => "delta",
                            }
                        ),
                        Err(e) => format!("-err publish failed: {}\n", one_line(&e.to_string())),
                    },
                    Err(e) => format!("-err refresh failed: {}\n", one_line(&e.to_string())),
                }
            }
            Some("fault") if !self.cfg.chaos => "-err fault injection disabled\n".to_string(),
            Some("fault") => match ServeFault::parse(parts.get(1..).unwrap_or(&[])) {
                Ok(ServeFault::PoisonEpoch) => {
                    self.cell.current().poison();
                    "+fault poisoned current epoch\n".to_string()
                }
                Ok(ServeFault::RefreshNow) => {
                    let mut engine = self.engine.lock();
                    match engine
                        .refresh_auto()
                        .map_err(ServeError::from)
                        .and_then(|_| self.publish_from(&engine))
                    {
                        Ok(id) => format!("+fault refreshed epoch={id}\n"),
                        Err(e) => format!("-err refresh failed: {}\n", one_line(&e.to_string())),
                    }
                }
                Ok(f) => {
                    self.faults.arm(f);
                    "+fault armed\n".to_string()
                }
                Err(msg) => format!("-err {msg}\n"),
            },
            Some("shutdown") => {
                conn.send(&self.faults, "+bye\n");
                self.request_shutdown();
                return;
            }
            Some(other) => format!("-err unknown command '.{}'\n", one_line(other)),
            None => "-err empty command\n".to_string(),
        };
        conn.send(&self.faults, &reply);
    }
}

/// Freeze an engine model into an epoch — global, or sharded when the
/// server runs in shard mode.
fn make_epoch(
    model: &Model,
    shard: Option<&ShardServing>,
    pool: Option<&Arc<ThreadPool>>,
    id: u64,
) -> Result<Arc<ModelEpoch>, ServeError> {
    match (shard, pool) {
        (Some(sh), Some(pool)) => {
            let n = model.affine().series_count();
            let plan = ShardPlan::blocked(n, sh.shards);
            let sharded = ShardedModel::from_global(
                model.data(),
                model.affine(),
                plan,
                &sh.indexed,
                Arc::clone(pool),
            )?;
            Ok(ModelEpoch::from_sharded(
                Arc::new(sharded),
                Vec::new(),
                id,
                model.built_at,
            )?)
        }
        _ => Ok(ModelEpoch::from_model(model, Vec::new(), id)?),
    }
}

/// Collapse a message to a single protocol-safe line.
fn one_line(s: &str) -> String {
    s.replace(['\n', '\r'], " ")
}

/// The response tag of a rejected raw line: its first whitespace token,
/// clipped, so the client can still correlate the typed `PROTO` error.
fn line_id_prefix(raw: &str) -> String {
    let tok = raw.split_whitespace().next().unwrap_or("");
    if tok.is_empty() {
        return "?".to_string();
    }
    tok.chars().take(32).collect()
}

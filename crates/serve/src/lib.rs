//! # affinity-serve
//!
//! The concurrent query service over the AFFINITY model — the piece
//! that makes the streaming pipeline *servable*: many readers answering
//! MEC/MET/MER statements while the stream keeps refreshing the model
//! underneath them, under explicit overload, deadline, and crash
//! contracts.
//!
//! ## Design
//!
//! - **Epoch-swapped snapshots** ([`ModelEpoch`], [`EpochCell`]): every
//!   query executes against an immutable, self-contained freeze of the
//!   model. A refresh builds the next epoch off to the side and
//!   publishes it with one atomic swap — readers never block on a
//!   rebuild, and in-flight queries finish on the epoch they started
//!   with. No torn label/relationship/index pairings, by construction.
//! - **Bounded admission** ([`QueuePolicy`], [`AdmissionQueue`]): a
//!   hard-capacity queue in front of the worker lanes. Overflow either
//!   rejects the newcomer or sheds the oldest waiter
//!   ([`ShedPolicy`]) — always with a typed `OVERLOADED` response,
//!   never a hang, never unbounded growth.
//! - **Deadline propagation**: each admitted request carries a
//!   deadline that becomes a [`CancelToken`](affinity_ql::CancelToken)
//!   inside query execution; long MET/MER scans abort between pruning
//!   bands with a typed `DEADLINE` response.
//! - **Graceful shutdown**: `.shutdown` (or a signal) closes admission,
//!   drains every admitted request, commits a final crash-safe
//!   checkpoint when persistence is armed, and exits cleanly.
//! - **Fault injection** ([`ServeFault`], [`FaultPlan`]): slow workers,
//!   stalled response writers, poisoned epochs, and forced
//!   refresh-during-query races, scripted over the wire to drive the
//!   chaos suite.
//!
//! See [`server`] for the wire protocol.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod epoch;
pub mod fault;
pub mod queue;
pub mod server;

pub use epoch::{EpochCell, ModelEpoch};
pub use fault::{FaultPlan, ServeFault};
pub use queue::{Admission, AdmissionQueue, QueuePolicy, ServeStats, ShedPolicy};
pub use server::{ServeConfig, ServeError, Server, ShardServing};

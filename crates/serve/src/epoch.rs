//! Immutable model epochs and their atomic publication cell.
//!
//! A [`ModelEpoch`] freezes one refresh of the AFFINITY model — the
//! series labels, the affine relationships, and the SCAPE index — behind
//! a ready-to-run query [`Session`]. Epochs are immutable after
//! construction and shared by `Arc`, so any number of readers can
//! execute against one concurrently while the streaming side builds the
//! next; [`EpochCell::publish`] swaps the current epoch atomically and
//! in-flight queries simply finish on the epoch they started with.

use affinity_core::symex::AffineSet;
use affinity_data::DataMatrix;
use affinity_ql::{CancelToken, QlError, QueryOutput, Session};
use affinity_scape::ScapeIndex;
use affinity_shard::ShardedModel;
use affinity_stream::{Model, PersistedModel};
use parking_lot::RwLock;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// One frozen, queryable model refresh.
///
/// The struct is self-contained: it owns the affine set (behind an
/// `Arc`) and the query session borrowing it, so an epoch stays valid
/// for as long as any reader holds it — independent of the streaming
/// engine that produced it.
pub struct ModelEpoch {
    /// Declared first so it drops before the `Arc` it borrows from.
    ///
    /// The `'static` lifetime is forged: the session actually borrows
    /// the model inside `self.model`. It is sound because (a) the
    /// borrow target is pinned on the heap by its `Arc` and never
    /// replaced for the life of `self`, (b) field order drops the
    /// session before the `Arc`, and (c) the field is private and no
    /// API hands out a `&Session` that could outlive `self`.
    session: Session<'static>,
    /// Keeps the session's borrow target alive; never swapped.
    model: EpochModel,
    epoch_id: u64,
    built_at: u64,
    poisoned: AtomicBool,
}

/// The heap-pinned model a frozen session borrows from.
enum EpochModel {
    /// Monolithic epoch: the session borrows the affine set.
    Global(Arc<AffineSet>),
    /// Sharded epoch: the session borrows the merge layer. The shard
    /// `Arc`s inside are shared with the streaming engine, so an epoch
    /// republishes only the shards that actually changed — untouched
    /// shards keep their identity across epochs.
    Sharded(Arc<ShardedModel>),
}

// Compile-time proof the forged-'static session still crosses threads
// safely (everything inside is owned data or `&AffineSet`).
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ModelEpoch>();
};

impl std::fmt::Debug for ModelEpoch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelEpoch")
            .field("epoch_id", &self.epoch_id)
            .field("built_at", &self.built_at)
            .field("poisoned", &self.poisoned.load(Ordering::Relaxed))
            .finish()
    }
}

impl ModelEpoch {
    /// Freeze owned model parts into an epoch. `data` is only read
    /// during session preprocessing (the epoch keeps no reference to
    /// it); `labels` may be empty to auto-generate `S0..S{n-1}`.
    ///
    /// # Errors
    /// [`QlError::Engine`] on a label/series-count mismatch.
    pub fn from_owned(
        data: &DataMatrix,
        affine: AffineSet,
        index: ScapeIndex,
        labels: Vec<String>,
        epoch_id: u64,
        built_at: u64,
    ) -> Result<Arc<Self>, QlError> {
        let affine = Arc::new(affine);
        // SAFETY: see the `session` field docs — the borrow target is
        // heap-pinned by `affine`, which outlives `session` by field
        // order and is never mutated or replaced.
        let affine_ref: &'static AffineSet = unsafe { &*Arc::as_ptr(&affine) };
        let session = Session::from_parts(data, affine_ref, index, labels)?;
        Ok(Arc::new(ModelEpoch {
            session,
            model: EpochModel::Global(affine),
            epoch_id,
            built_at,
            poisoned: AtomicBool::new(false),
        }))
    }

    /// Freeze a sharded model into an epoch. The `Arc<ShardedModel>` is
    /// typically a cheap clone of a sharded streaming engine's current
    /// model: the shard `Arc`s inside are shared, so consecutive epochs
    /// after a delta refresh republish **only** the shards that were
    /// rebuilt ([`shard_versions`](ModelEpoch::shard_versions) exposes
    /// the per-shard identities for the ledger tests).
    ///
    /// `labels` may be empty to auto-generate `S0..S{n-1}`.
    ///
    /// # Errors
    /// [`QlError::Engine`] on a label/series-count mismatch.
    pub fn from_sharded(
        model: Arc<ShardedModel>,
        labels: Vec<String>,
        epoch_id: u64,
        built_at: u64,
    ) -> Result<Arc<Self>, QlError> {
        // SAFETY: see the `session` field docs — the borrow target is
        // heap-pinned by `model`, which outlives `session` by field
        // order and is never mutated or replaced.
        let model_ref: &'static ShardedModel = unsafe { &*Arc::as_ptr(&model) };
        let session = Session::from_sharded(model_ref, labels)?;
        Ok(Arc::new(ModelEpoch {
            session,
            model: EpochModel::Sharded(model),
            epoch_id,
            built_at,
            poisoned: AtomicBool::new(false),
        }))
    }

    /// Freeze a streaming engine's current [`Model`] (cloning its
    /// parts; the engine keeps refreshing independently).
    ///
    /// # Errors
    /// [`QlError::Engine`] on a label/series-count mismatch.
    pub fn from_model(
        model: &Model,
        labels: Vec<String>,
        epoch_id: u64,
    ) -> Result<Arc<Self>, QlError> {
        Self::from_owned(
            model.data(),
            model.affine().clone(),
            model.index().clone(),
            labels,
            epoch_id,
            model.built_at,
        )
    }

    /// Freeze a crash-recovered [`PersistedModel`] (moving its parts).
    ///
    /// # Errors
    /// [`QlError::Engine`] on a label/series-count mismatch.
    pub fn from_persisted(
        model: PersistedModel,
        labels: Vec<String>,
        epoch_id: u64,
    ) -> Result<Arc<Self>, QlError> {
        let built_at = model.built_at;
        Self::from_owned(
            &model.data,
            model.affine,
            model.index,
            labels,
            epoch_id,
            built_at,
        )
    }

    /// Execute one statement against this epoch under a cancel token.
    ///
    /// # Errors
    /// See [`QlError`]; a poisoned epoch (injected fault) reports
    /// [`QlError::Engine`] instead of answering.
    pub fn execute(&self, statement: &str, token: &CancelToken) -> Result<QueryOutput, QlError> {
        if self.poisoned.load(Ordering::Acquire) {
            return Err(QlError::Engine(format!(
                "epoch {} poisoned (injected fault)",
                self.epoch_id
            )));
        }
        self.session.execute_with(statement, token)
    }

    /// Monotonic publication number of this epoch.
    pub fn epoch_id(&self) -> u64 {
        self.epoch_id
    }

    /// Tick count the underlying model was built at.
    pub fn built_at(&self) -> u64 {
        self.built_at
    }

    /// Number of series this epoch answers over.
    pub fn series_count(&self) -> usize {
        match &self.model {
            EpochModel::Global(affine) => affine.series_count(),
            EpochModel::Sharded(model) => model.series_count(),
        }
    }

    /// The sharded model behind this epoch, when there is one — lets
    /// publication tests assert per-shard `Arc` identity across epochs.
    pub fn sharded(&self) -> Option<&ShardedModel> {
        match &self.model {
            EpochModel::Global(_) => None,
            EpochModel::Sharded(model) => Some(model),
        }
    }

    /// Per-shard refresh versions (sharded epochs only).
    pub fn shard_versions(&self) -> Option<Vec<u64>> {
        self.sharded().map(ShardedModel::versions)
    }

    /// Mark this epoch as poisoned: every subsequent [`execute`]
    /// returns a typed error. Fault-injection hook for the chaos suite.
    pub fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
    }

    /// Whether [`poison`](ModelEpoch::poison) was called.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }
}

/// The atomic publication point: readers take a cheap `Arc` clone of
/// the current epoch; a refresh installs its successor with a single
/// swap. Readers never block on a rebuild and never observe a torn
/// epoch — labels, relationships, and index always come from the same
/// freeze.
#[derive(Debug)]
pub struct EpochCell {
    current: RwLock<Arc<ModelEpoch>>,
    published: AtomicU64,
}

impl EpochCell {
    /// Install the first epoch.
    pub fn new(initial: Arc<ModelEpoch>) -> Self {
        EpochCell {
            current: RwLock::new(initial),
            published: AtomicU64::new(1),
        }
    }

    /// The epoch new queries should execute against.
    pub fn current(&self) -> Arc<ModelEpoch> {
        Arc::clone(&self.current.read())
    }

    /// Atomically replace the current epoch; readers holding the old
    /// one finish on it. Returns the total publication count.
    pub fn publish(&self, next: Arc<ModelEpoch>) -> u64 {
        *self.current.write() = next;
        self.published.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Total number of epochs published (the initial one included) —
    /// one side of the chaos suite's epoch ledger.
    pub fn published(&self) -> u64 {
        self.published.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use affinity_core::measures::Measure;
    use affinity_core::prelude::*;
    use affinity_data::generator::{sensor_dataset, SensorConfig};

    fn epoch(id: u64) -> Arc<ModelEpoch> {
        let data = sensor_dataset(&SensorConfig::reduced(10, 32));
        let affine = Symex::new(SymexParams::default()).run(&data).unwrap();
        let index = ScapeIndex::build(&data, &affine, &Measure::ALL).unwrap();
        ModelEpoch::from_owned(&data, affine, index, data.labels().to_vec(), id, 0).unwrap()
    }

    #[test]
    fn epoch_answers_queries_after_source_data_is_gone() {
        let e = epoch(1);
        // `data` and the original affine set are out of scope here; the
        // epoch is self-contained.
        let out = e
            .execute("MET correlation > 0.5", &CancelToken::new())
            .unwrap();
        assert!(matches!(out, QueryOutput::Pairs(_)));
        assert_eq!(e.epoch_id(), 1);
        assert_eq!(e.series_count(), 10);
    }

    #[test]
    fn poisoned_epoch_reports_typed_error() {
        let e = epoch(7);
        assert!(!e.is_poisoned());
        e.poison();
        assert!(e.is_poisoned());
        let err = e
            .execute("MET correlation > 0.5", &CancelToken::new())
            .unwrap_err();
        assert!(matches!(err, QlError::Engine(_)));
        assert!(err.to_string().contains("poisoned"));
    }

    #[test]
    fn publish_swaps_and_counts() {
        let cell = EpochCell::new(epoch(1));
        assert_eq!(cell.published(), 1);
        let held = cell.current();
        assert_eq!(cell.publish(epoch(2)), 2);
        assert_eq!(cell.current().epoch_id(), 2);
        // The reader that grabbed epoch 1 still finishes on it.
        assert_eq!(held.epoch_id(), 1);
        assert!(held.execute("MEC mean OF 0", &CancelToken::new()).is_ok());
    }
}

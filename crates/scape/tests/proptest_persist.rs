//! Properties of the SCAPE index codec: a built index survives
//! encode → decode bit-identically (checked by re-encoding — the
//! encoder walks every pivot node, tree entry and normalizer, so equal
//! bytes ⇒ equal index structure) for randomized dataset shapes and
//! randomized indexed-measure subsets, the decoded index answers
//! threshold and range queries identically, and byte-level damage
//! (truncation, bit flips) never panics the decoder.

use affinity_core::afclst::AfclstParams;
use affinity_core::measures::{Measure, PairwiseMeasure};
use affinity_core::symex::{AffineSet, Symex, SymexParams, SymexVariant};
use affinity_data::generator::{sensor_dataset, SensorConfig};
use affinity_data::DataMatrix;
use affinity_scape::{ScapeIndex, ThresholdOp};
use proptest::prelude::*;

fn build(n: usize, m: usize, seed: u64) -> (DataMatrix, AffineSet) {
    let data = sensor_dataset(&SensorConfig::reduced(n, m));
    let affine = Symex::new(SymexParams {
        afclst: AfclstParams {
            k: 2.min(n - 1),
            gamma_max: 10,
            delta_min: 0,
            seed,
        },
        variant: SymexVariant::Plus,
        threads: 1,
    })
    .run(&data)
    .unwrap();
    (data, affine)
}

/// Pick a measure subset from the extended list via a bitmask (always
/// non-empty: an empty index has nothing worth round-tripping here —
/// the unit tests cover it).
fn measure_subset(mask: u8) -> Vec<Measure> {
    let picked: Vec<Measure> = Measure::EXTENDED
        .iter()
        .enumerate()
        .filter(|(i, _)| mask & (1 << i) != 0)
        .map(|(_, &m)| m)
        .collect();
    if picked.is_empty() {
        vec![Measure::Pairwise(PairwiseMeasure::Correlation)]
    } else {
        picked
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn index_roundtrips_bit_identically(
        n in 4usize..14,
        m in 16usize..40,
        seed in 0u64..1_000_000,
        mask in 1u8..=255,
    ) {
        let (data, affine) = build(n, m, seed);
        let measures = measure_subset(mask);
        let index = ScapeIndex::build(&data, &affine, &measures).unwrap();
        let bytes = index.to_bytes();
        let back = ScapeIndex::from_bytes(&bytes).expect("own encoding must decode");
        prop_assert_eq!(back.to_bytes(), bytes, "re-encoding diverges");
        prop_assert_eq!(back.stats(), index.stats());

        // Decoded index answers queries identically (exact pair sets,
        // same order — both walk identical trees).
        for &measure in &measures {
            if let Measure::Pairwise(pm) = measure {
                let a = index.threshold_pairs(pm, ThresholdOp::Greater, 0.25).unwrap();
                let b = back.threshold_pairs(pm, ThresholdOp::Greater, 0.25).unwrap();
                prop_assert_eq!(a, b, "{:?} threshold answers diverge", pm);
                let a = index.range_pairs(pm, -0.5, 0.75).unwrap();
                let b = back.range_pairs(pm, -0.5, 0.75).unwrap();
                prop_assert_eq!(a, b, "{:?} range answers diverge", pm);
            }
        }
    }

    #[test]
    fn truncated_index_bytes_never_panic(
        n in 4usize..10,
        m in 16usize..32,
        seed in 0u64..1_000_000,
        cut_num in 0u32..1000,
    ) {
        let (data, affine) = build(n, m, seed);
        let bytes = ScapeIndex::build(&data, &affine, &Measure::EXTENDED)
            .unwrap()
            .to_bytes();
        let cut = (cut_num as usize * bytes.len()) / 1000;
        prop_assert!(ScapeIndex::from_bytes(&bytes[..cut]).is_err());
    }

    #[test]
    fn bit_flipped_index_bytes_never_panic(
        n in 4usize..10,
        m in 16usize..32,
        seed in 0u64..1_000_000,
        offset_num in 0u32..1000,
        bit in 0u8..8,
    ) {
        let (data, affine) = build(n, m, seed);
        let mut bytes = ScapeIndex::build(&data, &affine, &Measure::EXTENDED)
            .unwrap()
            .to_bytes();
        let offset = (offset_num as usize * bytes.len()) / 1000;
        bytes[offset] ^= 1u8 << bit;
        // Structural damage → typed rejection; a flip inside an f64
        // payload may decode (different but valid index). Never a
        // panic, never an unbounded allocation.
        let _ = ScapeIndex::from_bytes(&bytes);
    }
}

//! # affinity-scape
//!
//! The SCAPE (SCAlar ProjEction) index — paper Sec. 5 — and the MET/MER
//! query processing built on it.
//!
//! For every pivot pair `p_q` the index keeps a B+ tree of *sequence
//! nodes*, keyed by the scalar projection
//!
//! ```text
//! ξ_qd = (α_q · β_qd) / ‖α_q‖
//! ```
//!
//! where `β_qd = (a₁₂, a₂₂, b₂)` comes from the affine relationship only
//! (measure-independent), and `α_q` encodes the pivot statistics of the
//! indexed measure (paper Table 2). A threshold query over any L- or
//! T-measure becomes a per-pivot B-tree search with the modified threshold
//! `τ' = τ/‖α_q‖`; D-measures (correlation) are processed with
//! normalizer-bound pruning (`U_q^min`, `U_q^max`, Sec. 5.3), touching the
//! raw series never and per-node arithmetic only inside the unpruned band.
//!
//! One structural clarification relative to the paper (DESIGN.md §2): the
//! *ordering* of `ξ` depends on the angle to `α_q`, so each indexed
//! measure keeps its own sorted container per pivot. The stored `β`
//! vectors and node payloads are shared conceptually; the paper's claims
//! (measure-independent `β`, single index machinery for all measures)
//! carry over unchanged.
//!
//! ```
//! use affinity_core::prelude::*;
//! use affinity_data::generator::{sensor_dataset, SensorConfig};
//! use affinity_scape::{ScapeIndex, ThresholdOp};
//!
//! let data = sensor_dataset(&SensorConfig::reduced(16, 48));
//! let affine = Symex::new(SymexParams::default()).run(&data).unwrap();
//! let index = ScapeIndex::build(&data, &affine, &Measure::ALL).unwrap();
//! let hot = index
//!     .threshold_pairs(PairwiseMeasure::Correlation, ThresholdOp::Greater, 0.9)
//!     .unwrap();
//! assert!(hot.len() <= data.pair_count());
//! ```
//!
//! Construction gathers per-pivot `(ξ, node)` arrays, sorts them (in
//! parallel across pivots under [`ScapeIndex::build_with_pool`]) and
//! bulk-loads each B+ tree bottom-up; [`ScapeIndex::apply_delta`]
//! relocates individual nodes when relationships are re-fitted against
//! retained pivots, which is what the streaming engine's delta refresh
//! rides on.

#![deny(missing_docs)]
#![warn(clippy::all)]

mod delta;
mod error;
mod index;
mod persist;
mod query;

pub use delta::{PairDelta, ScapeDelta, SeriesDelta};
pub use error::ScapeError;
pub use index::{IndexStats, ScapeIndex};
pub use persist::{measure_from_tag, measure_tag, INDEX_CODEC_VERSION};
pub use query::ThresholdOp;

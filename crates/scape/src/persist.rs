//! Byte-exact serialization of the SCAPE index and of deltas.
//!
//! The index payload stores, per indexed measure family, each pivot
//! node's retained statistics (`α`, `‖α‖`, normalizer bounds) and its
//! tree's `(key, node)` sequence in iteration order — which is sorted,
//! exactly what [`BPlusTree::bulk_build`] consumes. Decoding therefore
//! normalizes the tree *shape* to the bulk-loaded form while preserving
//! the key → payload sequence bit-for-bit, so a restored index answers
//! every MET/MER query (and accepts every future delta) identically to
//! the one that was saved.
//!
//! Like the affine codec this layer is checksum-free (framing CRCs live
//! in `affinity_storage`) but structurally paranoid: counts are checked
//! against remaining input before allocation, keys must be non-NaN and
//! sorted (the bulk-load precondition — violating it would corrupt
//! queries silently), and cross-references are range-checked. Corrupt
//! bytes surface as [`DecodeError`], never as a panic or a
//! wrong-answer index.
//!
//! [`ScapeDelta`] gets its own compact codec ([`ScapeDelta::to_bytes`])
//! — it is the payload of streaming journal records, written once per
//! delta refresh.

use crate::delta::{PairDelta, ScapeDelta, SeriesDelta};
use crate::index::{loc_tag, LocPivotNode, PairPivotNode, ScapeIndex, SeqNode, NORM_SLOTS};
use affinity_core::affine::PivotPair;
use affinity_core::hash::FxHashMap;
use affinity_core::measures::{LocationMeasure, Measure};
use affinity_core::persist::{ByteReader, ByteWriter, DecodeError};
use affinity_data::SequencePair;
use affinity_index::BPlusTree;

/// Codec version embedded in every [`ScapeIndex`] payload.
pub const INDEX_CODEC_VERSION: u8 = 1;

/// Bytes per encoded pair-tree entry (key + pair + normalizers).
const PAIR_ENTRY_BYTES: usize = 8 + 16 + NORM_SLOTS * 8;
/// Bytes per encoded location-tree entry (key + series).
const LOC_ENTRY_BYTES: usize = 16;
/// Bytes per encoded [`PairDelta`].
const PAIR_DELTA_BYTES: usize = 4 * 8 + 6 * 8;
/// Bytes per encoded [`SeriesDelta`].
const SERIES_DELTA_BYTES: usize = 2 * 8 + 4 * 8;

fn put_pair_nodes(w: &mut ByteWriter, nodes: &[PairPivotNode]) {
    w.put_len(nodes.len());
    for node in nodes {
        for &a in &node.alpha {
            w.put_f64(a);
        }
        w.put_f64(node.alpha_norm);
        for &(lo, hi) in &node.u_bounds {
            w.put_f64(lo);
            w.put_f64(hi);
        }
        w.put_len(node.tree.len());
        for (key, sn) in node.tree.iter() {
            w.put_f64(key);
            w.put_len(sn.pair.u);
            w.put_len(sn.pair.v);
            for &u in &sn.normalizers {
                w.put_f64(u);
            }
        }
    }
}

fn get_pair_nodes(
    r: &mut ByteReader<'_>,
    expected_nodes: usize,
    family: &str,
) -> Result<Vec<PairPivotNode>, DecodeError> {
    // Node headers are ≥ 72 bytes each; count-check before allocating.
    let count = r.checked_count(8 * (3 + 1 + 2 * NORM_SLOTS) + 8, family)?;
    if count != expected_nodes {
        return Err(DecodeError::Corrupt(format!(
            "{family}: {count} pivot nodes for {expected_nodes} pivots"
        )));
    }
    let mut nodes = Vec::with_capacity(count);
    for q in 0..count {
        let alpha = [r.f64()?, r.f64()?, r.f64()?];
        let alpha_norm = r.f64()?;
        let mut u_bounds = [(0.0f64, 0.0f64); NORM_SLOTS];
        for b in &mut u_bounds {
            *b = (r.f64()?, r.f64()?);
        }
        let entry_count = r.checked_count(PAIR_ENTRY_BYTES, family)?;
        let mut entries: Vec<(f64, SeqNode)> = Vec::with_capacity(entry_count);
        let mut prev = f64::NEG_INFINITY;
        for _ in 0..entry_count {
            let key = r.f64()?;
            if key.is_nan() {
                return Err(DecodeError::Corrupt(format!(
                    "{family} pivot {q}: NaN tree key"
                )));
            }
            if key.total_cmp(&prev).is_lt() {
                return Err(DecodeError::Corrupt(format!(
                    "{family} pivot {q}: tree keys out of order"
                )));
            }
            prev = key;
            let u = r.len()?;
            let v = r.len()?;
            if u >= v {
                return Err(DecodeError::Corrupt(format!(
                    "{family} pivot {q}: pair ({u}, {v}) not strictly ordered"
                )));
            }
            let mut normalizers = [0.0f64; NORM_SLOTS];
            for n in &mut normalizers {
                *n = r.f64()?;
            }
            entries.push((
                key,
                SeqNode {
                    pair: SequencePair::new(u, v),
                    normalizers,
                },
            ));
        }
        nodes.push(PairPivotNode {
            alpha,
            alpha_norm,
            tree: BPlusTree::bulk_build(entries),
            u_bounds,
        });
    }
    Ok(nodes)
}

fn put_loc_nodes(w: &mut ByteWriter, nodes: &[LocPivotNode]) {
    w.put_len(nodes.len());
    for node in nodes {
        w.put_f64(node.center_loc);
        w.put_f64(node.alpha_norm);
        w.put_len(node.tree.len());
        for (key, &series) in node.tree.iter() {
            w.put_f64(key);
            w.put_len(series);
        }
    }
}

fn get_loc_nodes(r: &mut ByteReader<'_>, family: &str) -> Result<Vec<LocPivotNode>, DecodeError> {
    let count = r.checked_count(8 + 8 + 8, family)?;
    let mut nodes = Vec::with_capacity(count);
    for l in 0..count {
        let center_loc = r.f64()?;
        let alpha_norm = r.f64()?;
        let entry_count = r.checked_count(LOC_ENTRY_BYTES, family)?;
        let mut entries = Vec::with_capacity(entry_count);
        let mut prev = f64::NEG_INFINITY;
        for _ in 0..entry_count {
            let key = r.f64()?;
            if key.is_nan() {
                return Err(DecodeError::Corrupt(format!(
                    "{family} cluster {l}: NaN tree key"
                )));
            }
            if key.total_cmp(&prev).is_lt() {
                return Err(DecodeError::Corrupt(format!(
                    "{family} cluster {l}: tree keys out of order"
                )));
            }
            prev = key;
            entries.push((key, r.len()?));
        }
        nodes.push(LocPivotNode {
            center_loc,
            alpha_norm,
            tree: BPlusTree::bulk_build(entries),
        });
    }
    Ok(nodes)
}

impl ScapeIndex {
    /// Serialize the index to a self-contained byte payload.
    pub fn to_bytes(&self) -> Vec<u8> {
        // Pivots in node order: invert the id map once.
        let mut pivots: Vec<PivotPair> = vec![
            PivotPair {
                common: 0,
                cluster: 0
            };
            self.pivot_ids.len()
        ];
        for (&p, &i) in &self.pivot_ids {
            // Encoder over a live index: `pivot_ids` values are a dense
            // permutation of 0..len (ScapeIndex construction invariant).
            // afflint: allow(panic) -- encoder side, no untrusted bytes; ids are dense 0..len by construction
            pivots[i] = p;
        }
        let mut w = ByteWriter::with_capacity(
            // afflint: allow(len-arith) -- encoder-side capacity hint over a live in-memory index, not header-declared sizes
            64 + pivots.len() * 16
                // afflint: allow(len-arith) -- encoder-side capacity hint continued
                + self.stats.pair_sequence_nodes * PAIR_ENTRY_BYTES
                // afflint: allow(len-arith) -- encoder-side capacity hint continued
                + self.stats.location_series_nodes * LOC_ENTRY_BYTES,
        );
        w.put_u8(INDEX_CODEC_VERSION);
        w.put_len(pivots.len());
        for p in &pivots {
            w.put_len(p.common);
            w.put_len(p.cluster);
        }
        w.put_bool(self.correlation);
        w.put_bool(self.cov.is_some());
        if let Some(nodes) = &self.cov {
            put_pair_nodes(&mut w, nodes);
        }
        w.put_bool(self.dot.is_some());
        if let Some(nodes) = &self.dot {
            put_pair_nodes(&mut w, nodes);
        }
        for fam in &self.loc {
            w.put_bool(fam.is_some());
            if let Some(nodes) = fam {
                put_loc_nodes(&mut w, nodes);
            }
        }
        w.into_vec()
    }

    /// Reconstruct a [`ScapeIndex`] from [`ScapeIndex::to_bytes`]
    /// output. Queries, iteration order and delta maintenance behave
    /// bit-identically to the encoded index (tree shape is normalized
    /// to the bulk-loaded form).
    ///
    /// # Errors
    /// [`DecodeError`] on truncation, absurd counts (checked before
    /// allocation), unsorted or NaN keys, or dangling references.
    pub fn from_bytes(bytes: &[u8]) -> Result<ScapeIndex, DecodeError> {
        let mut r = ByteReader::new(bytes);
        let version = r.u8()?;
        if version != INDEX_CODEC_VERSION {
            return Err(DecodeError::Corrupt(format!(
                "unsupported index codec version {version}"
            )));
        }
        let pivot_count = r.checked_count(16, "pivot table")?;
        let mut pivot_ids: FxHashMap<PivotPair, usize> = FxHashMap::default();
        pivot_ids.reserve(pivot_count);
        for i in 0..pivot_count {
            let p = PivotPair {
                common: r.len()?,
                cluster: r.len()?,
            };
            if pivot_ids.insert(p, i).is_some() {
                return Err(DecodeError::Corrupt(format!("duplicate pivot {p:?}")));
            }
        }
        let correlation = r.bool()?;
        let cov = r
            .bool()?
            .then(|| get_pair_nodes(&mut r, pivot_count, "covariance"))
            .transpose()?;
        let dot = r
            .bool()?
            .then(|| get_pair_nodes(&mut r, pivot_count, "dot-product"))
            .transpose()?;
        let mut loc: [Option<Vec<LocPivotNode>>; 3] = [None, None, None];
        for (tag, fam) in loc.iter_mut().enumerate() {
            let name = match tag {
                0 => "mean",
                1 => "median",
                _ => "mode",
            };
            *fam = r.bool()?.then(|| get_loc_nodes(&mut r, name)).transpose()?;
        }
        r.finish()?;
        if correlation && cov.is_none() {
            return Err(DecodeError::Corrupt(
                "correlation flagged without covariance nodes".into(),
            ));
        }
        let mut stats = crate::index::IndexStats::default();
        for nodes in cov.iter().chain(dot.iter()) {
            stats.pair_pivot_nodes += nodes.len();
            stats.pair_sequence_nodes += nodes.iter().map(|n| n.tree.len()).sum::<usize>();
        }
        for nodes in loc.iter().flatten() {
            stats.location_pivot_nodes += nodes.len();
            stats.location_series_nodes += nodes.iter().map(|n| n.tree.len()).sum::<usize>();
        }
        Ok(ScapeIndex {
            cov,
            dot,
            correlation,
            loc,
            pivot_ids,
            stats,
        })
    }

    /// The measures this index can answer, in canonical order — handy
    /// for reporting on a freshly opened snapshot.
    pub fn supported_measures(&self) -> Vec<Measure> {
        let mut out = Vec::new();
        for m in Measure::EXTENDED {
            if self.supports(m) {
                out.push(m);
            }
        }
        out
    }
}

impl ScapeDelta {
    /// Serialize the delta to a compact journal-record payload.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::with_capacity(
            // afflint: allow(len-arith) -- encoder-side capacity hint over a live in-memory delta, not header-declared sizes
            16 + self.pairs.len() * PAIR_DELTA_BYTES + self.series.len() * SERIES_DELTA_BYTES,
        );
        self.encode_into(&mut w);
        w.into_vec()
    }

    /// Append the delta's encoding to an existing writer (journal
    /// records carry a delta plus the affine replacements around it).
    pub fn encode_into(&self, w: &mut ByteWriter) {
        w.put_len(self.pairs.len());
        for pd in &self.pairs {
            w.put_len(pd.pair.u);
            w.put_len(pd.pair.v);
            w.put_len(pd.pivot.common);
            w.put_len(pd.pivot.cluster);
            for &x in pd.old_beta.iter().chain(&pd.new_beta) {
                w.put_f64(x);
            }
        }
        w.put_len(self.series.len());
        for sd in &self.series {
            w.put_len(sd.series);
            w.put_len(sd.cluster);
            w.put_f64(sd.old.0);
            w.put_f64(sd.old.1);
            w.put_f64(sd.new.0);
            w.put_f64(sd.new.1);
        }
    }

    /// Decode a delta previously written by [`ScapeDelta::to_bytes`].
    ///
    /// # Errors
    /// [`DecodeError`] on truncation or structural violations.
    pub fn from_bytes(bytes: &[u8]) -> Result<ScapeDelta, DecodeError> {
        let mut r = ByteReader::new(bytes);
        let delta = Self::decode_from(&mut r)?;
        r.finish()?;
        Ok(delta)
    }

    /// Decode a delta from the middle of a larger payload.
    ///
    /// # Errors
    /// [`DecodeError`] on truncation or structural violations.
    pub fn decode_from(r: &mut ByteReader<'_>) -> Result<ScapeDelta, DecodeError> {
        let pair_count = r.checked_count(PAIR_DELTA_BYTES, "pair delta")?;
        let mut pairs = Vec::with_capacity(pair_count);
        for _ in 0..pair_count {
            let u = r.len()?;
            let v = r.len()?;
            if u >= v {
                return Err(DecodeError::Corrupt(format!(
                    "pair delta ({u}, {v}) not strictly ordered"
                )));
            }
            let pivot = PivotPair {
                common: r.len()?,
                cluster: r.len()?,
            };
            let old_beta = [r.f64()?, r.f64()?, r.f64()?];
            let new_beta = [r.f64()?, r.f64()?, r.f64()?];
            pairs.push(PairDelta {
                pair: SequencePair::new(u, v),
                pivot,
                old_beta,
                new_beta,
            });
        }
        let series_count = r.checked_count(SERIES_DELTA_BYTES, "series delta")?;
        let mut series = Vec::with_capacity(series_count);
        for _ in 0..series_count {
            series.push(SeriesDelta {
                series: r.len()?,
                cluster: r.len()?,
                old: (r.f64()?, r.f64()?),
                new: (r.f64()?, r.f64()?),
            });
        }
        Ok(ScapeDelta { pairs, series })
    }
}

/// Stable one-byte tag for a [`Measure`] (persisted in streaming
/// snapshot metadata so a resumed engine rebuilds with the same
/// measure list).
pub fn measure_tag(m: Measure) -> u8 {
    match m {
        Measure::Pairwise(p) => {
            use affinity_core::measures::PairwiseMeasure as P;
            match p {
                P::Covariance => 0,
                P::Correlation => 1,
                P::DotProduct => 2,
                P::Cosine => 3,
                P::Dice => 4,
            }
        }
        Measure::Location(l) => 5 + loc_tag(l) as u8,
    }
}

/// Inverse of [`measure_tag`].
///
/// # Errors
/// [`DecodeError::Corrupt`] for unknown tags.
pub fn measure_from_tag(tag: u8) -> Result<Measure, DecodeError> {
    use affinity_core::measures::PairwiseMeasure as P;
    Ok(match tag {
        0 => Measure::Pairwise(P::Covariance),
        1 => Measure::Pairwise(P::Correlation),
        2 => Measure::Pairwise(P::DotProduct),
        3 => Measure::Pairwise(P::Cosine),
        4 => Measure::Pairwise(P::Dice),
        5 => Measure::Location(LocationMeasure::Mean),
        6 => Measure::Location(LocationMeasure::Median),
        7 => Measure::Location(LocationMeasure::Mode),
        other => return Err(DecodeError::Corrupt(format!("unknown measure tag {other}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use affinity_core::prelude::*;
    use affinity_data::generator::{sensor_dataset, SensorConfig};
    use affinity_data::DataMatrix;

    fn fixture(n: usize, m: usize) -> (DataMatrix, AffineSet) {
        let data = sensor_dataset(&SensorConfig::reduced(n, m));
        let affine = Symex::new(SymexParams::default()).run(&data).unwrap();
        (data, affine)
    }

    /// Key → payload sequences of every tree family must match exactly.
    pub(crate) fn assert_index_bit_identical(a: &ScapeIndex, b: &ScapeIndex) {
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.pivot_ids, b.pivot_ids);
        assert_eq!(a.correlation, b.correlation);
        for (fa, fb) in [(&a.cov, &b.cov), (&a.dot, &b.dot)] {
            assert_eq!(fa.is_some(), fb.is_some());
            if let (Some(fa), Some(fb)) = (fa, fb) {
                assert_eq!(fa.len(), fb.len());
                for (na, nb) in fa.iter().zip(fb) {
                    assert_eq!(na.alpha.map(f64::to_bits), nb.alpha.map(f64::to_bits));
                    assert_eq!(na.alpha_norm.to_bits(), nb.alpha_norm.to_bits());
                    for (ba, bb) in na.u_bounds.iter().zip(&nb.u_bounds) {
                        assert_eq!(ba.0.to_bits(), bb.0.to_bits());
                        assert_eq!(ba.1.to_bits(), bb.1.to_bits());
                    }
                    let ea: Vec<_> = na.tree.iter().map(|(k, v)| (k.to_bits(), *v)).collect();
                    let eb: Vec<_> = nb.tree.iter().map(|(k, v)| (k.to_bits(), *v)).collect();
                    assert_eq!(ea, eb);
                }
            }
        }
        for (fa, fb) in a.loc.iter().zip(&b.loc) {
            assert_eq!(fa.is_some(), fb.is_some());
            if let (Some(fa), Some(fb)) = (fa, fb) {
                assert_eq!(fa.len(), fb.len());
                for (na, nb) in fa.iter().zip(fb) {
                    assert_eq!(na.center_loc.to_bits(), nb.center_loc.to_bits());
                    assert_eq!(na.alpha_norm.to_bits(), nb.alpha_norm.to_bits());
                    let ea: Vec<_> = na.tree.iter().map(|(k, v)| (k.to_bits(), *v)).collect();
                    let eb: Vec<_> = nb.tree.iter().map(|(k, v)| (k.to_bits(), *v)).collect();
                    assert_eq!(ea, eb);
                }
            }
        }
    }

    #[test]
    fn roundtrip_full_index() {
        let (data, affine) = fixture(14, 40);
        let idx = ScapeIndex::build(&data, &affine, &Measure::EXTENDED).unwrap();
        let back = ScapeIndex::from_bytes(&idx.to_bytes()).unwrap();
        assert_index_bit_identical(&idx, &back);
        // Queries agree bit-for-bit.
        for m in [PairwiseMeasure::Covariance, PairwiseMeasure::Correlation] {
            let a = idx
                .threshold_pairs(m, crate::ThresholdOp::Greater, 0.25)
                .unwrap();
            let b = back
                .threshold_pairs(m, crate::ThresholdOp::Greater, 0.25)
                .unwrap();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn roundtrip_partial_and_location_only() {
        let (data, affine) = fixture(10, 32);
        for measures in [
            vec![Measure::Location(LocationMeasure::Mean)],
            vec![
                Measure::Location(LocationMeasure::Median),
                Measure::Location(LocationMeasure::Mode),
            ],
            vec![Measure::Pairwise(PairwiseMeasure::DotProduct)],
            vec![
                Measure::Pairwise(PairwiseMeasure::Correlation),
                Measure::Location(LocationMeasure::Mean),
            ],
        ] {
            let idx = ScapeIndex::build(&data, &affine, &measures).unwrap();
            let back = ScapeIndex::from_bytes(&idx.to_bytes()).unwrap();
            assert_index_bit_identical(&idx, &back);
            assert_eq!(idx.supported_measures(), back.supported_measures());
        }
    }

    #[test]
    fn roundtrip_after_delta() {
        let (data, mut affine) = fixture(12, 36);
        let mut idx = ScapeIndex::build(&data, &affine, &Measure::EXTENDED).unwrap();
        let mut delta = ScapeDelta::default();
        let mut rel = affine.relationships()[4].clone();
        let old_beta = rel.beta();
        rel.a[0][1] -= 0.2;
        rel.b[1] += 0.1;
        delta.pairs.push(PairDelta {
            pair: rel.pair,
            pivot: rel.pivot,
            old_beta,
            new_beta: rel.beta(),
        });
        affine.replace_relationship(rel).unwrap();
        idx.apply_delta(&delta).unwrap();
        let back = ScapeIndex::from_bytes(&idx.to_bytes()).unwrap();
        assert_index_bit_identical(&idx, &back);
    }

    #[test]
    fn delta_codec_roundtrips() {
        let delta = ScapeDelta {
            pairs: vec![PairDelta {
                pair: SequencePair::new(2, 9),
                pivot: PivotPair {
                    common: 2,
                    cluster: 1,
                },
                old_beta: [0.5, -0.0, 3.25],
                new_beta: [f64::MIN_POSITIVE, -1.5, 0.0],
            }],
            series: vec![SeriesDelta {
                series: 7,
                cluster: 0,
                old: (1.25, -0.5),
                new: (-0.0, 2.0),
            }],
        };
        let back = ScapeDelta::from_bytes(&delta.to_bytes()).unwrap();
        assert_eq!(back.pairs.len(), 1);
        assert_eq!(back.series.len(), 1);
        assert_eq!(back.pairs[0].pair, delta.pairs[0].pair);
        for i in 0..3 {
            assert_eq!(
                back.pairs[0].old_beta[i].to_bits(),
                delta.pairs[0].old_beta[i].to_bits()
            );
            assert_eq!(
                back.pairs[0].new_beta[i].to_bits(),
                delta.pairs[0].new_beta[i].to_bits()
            );
        }
        assert_eq!(back.series[0].new.0.to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn truncations_and_mutations_never_panic() {
        let (data, affine) = fixture(8, 24);
        let idx = ScapeIndex::build(&data, &affine, &Measure::EXTENDED).unwrap();
        let bytes = idx.to_bytes();
        for cut in (0..bytes.len()).step_by(11) {
            let _ = ScapeIndex::from_bytes(&bytes[..cut]);
        }
        // Flip a key's sign bit mid-tree: either sorted-order check or
        // some downstream validation must catch it or decode to a
        // structurally valid index — never panic.
        let mut mutated = bytes.clone();
        let mid = mutated.len() / 2;
        mutated[mid] ^= 0x80;
        let _ = ScapeIndex::from_bytes(&mutated);
    }

    #[test]
    fn absurd_counts_are_rejected() {
        let (data, affine) = fixture(8, 24);
        let idx = ScapeIndex::build(&data, &affine, &Measure::EXTENDED).unwrap();
        let mut bytes = idx.to_bytes();
        // Pivot-table count at offset 1.
        bytes[1..9].copy_from_slice(&(u64::MAX / 3).to_le_bytes());
        assert!(matches!(
            ScapeIndex::from_bytes(&bytes),
            Err(DecodeError::Corrupt(_))
        ));
    }

    #[test]
    fn measure_tags_roundtrip() {
        for m in Measure::EXTENDED {
            assert_eq!(measure_from_tag(measure_tag(m)).unwrap(), m);
        }
        assert!(measure_from_tag(200).is_err());
    }

    #[test]
    fn clone_is_deep_and_equivalent() {
        let (data, affine) = fixture(9, 24);
        let idx = ScapeIndex::build(&data, &affine, &Measure::ALL).unwrap();
        let copy = idx.clone();
        assert_index_bit_identical(&idx, &copy);
    }
}

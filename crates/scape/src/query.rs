//! MET / MER query processing over the SCAPE index (paper Secs. 5.2–5.3).

use crate::error::ScapeError;
use crate::index::{loc_tag, PairPivotNode, ScapeIndex};
use affinity_core::measures::{LocationMeasure, PairwiseMeasure};
use affinity_data::{SequencePair, SeriesId};
use std::ops::Bound;

/// Direction of a measure-threshold (MET) query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThresholdOp {
    /// Return entries with measure value `> τ`.
    Greater,
    /// Return entries with measure value `< τ`.
    Less,
}

impl ScapeIndex {
    /// Resolve a pairwise measure to its pivot-node family and — for
    /// derived measures — the normalizer slot within the sequence nodes.
    fn pair_nodes(
        &self,
        measure: PairwiseMeasure,
    ) -> Result<(&Vec<PairPivotNode>, Option<usize>), ScapeError> {
        let missing = ScapeError::MeasureNotIndexed {
            measure: measure.name(),
        };
        match measure {
            PairwiseMeasure::Covariance => Ok((self.cov.as_ref().ok_or(missing)?, None)),
            PairwiseMeasure::DotProduct => Ok((self.dot.as_ref().ok_or(missing)?, None)),
            PairwiseMeasure::Correlation => {
                if !self.correlation {
                    return Err(missing);
                }
                Ok((self.cov.as_ref().ok_or(missing)?, Some(0)))
            }
            PairwiseMeasure::Cosine => Ok((self.dot.as_ref().ok_or(missing)?, Some(0))),
            PairwiseMeasure::Dice => Ok((self.dot.as_ref().ok_or(missing)?, Some(1))),
        }
    }

    /// MET query over a T-measure or the correlation D-measure
    /// (paper Query 2): all sequence pairs whose measure is `> τ`
    /// (or `< τ`). The result set `Λ_T`, in no particular order.
    ///
    /// # Errors
    /// [`ScapeError::MeasureNotIndexed`] if the measure was not built.
    pub fn threshold_pairs(
        &self,
        measure: PairwiseMeasure,
        op: ThresholdOp,
        tau: f64,
    ) -> Result<Vec<SequencePair>, ScapeError> {
        self.threshold_pairs_with(measure, op, tau, &|| false)
    }

    /// [`threshold_pairs`](ScapeIndex::threshold_pairs) with cooperative
    /// cancellation: `cancel` is polled between per-pivot pruning bands,
    /// and a `true` return aborts the scan with [`ScapeError::Cancelled`]
    /// instead of materializing the remaining pivots.
    ///
    /// # Errors
    /// [`ScapeError::MeasureNotIndexed`] or [`ScapeError::Cancelled`].
    pub fn threshold_pairs_with(
        &self,
        measure: PairwiseMeasure,
        op: ThresholdOp,
        tau: f64,
        cancel: &dyn Fn() -> bool,
    ) -> Result<Vec<SequencePair>, ScapeError> {
        let (nodes, slot) = self.pair_nodes(measure)?;
        let mut out = Vec::new();
        for node in nodes {
            if cancel() {
                return Err(ScapeError::Cancelled);
            }
            match slot {
                Some(slot) => derived_threshold(node, slot, op, tau, &mut out),
                None => node_threshold(node, op, tau, &mut out),
            }
        }
        Ok(out)
    }

    /// [`threshold_pairs_with`](ScapeIndex::threshold_pairs_with) with
    /// the answer grouped by pivot node: `(node_index, pairs)` per pivot
    /// that contributed at least one pair, in pivot order. Both paths
    /// share the same per-node scan, so concatenating the groups
    /// reproduces the flat answer exactly — and a sharded deployment can
    /// splice groups from several indexes in global pivot order to
    /// reproduce the *global* flat answer bit-for-bit.
    ///
    /// # Errors
    /// [`ScapeError::MeasureNotIndexed`] or [`ScapeError::Cancelled`].
    pub fn threshold_pairs_grouped(
        &self,
        measure: PairwiseMeasure,
        op: ThresholdOp,
        tau: f64,
        cancel: &dyn Fn() -> bool,
    ) -> Result<Vec<(usize, Vec<SequencePair>)>, ScapeError> {
        let (nodes, slot) = self.pair_nodes(measure)?;
        let mut out = Vec::new();
        for (q, node) in nodes.iter().enumerate() {
            if cancel() {
                return Err(ScapeError::Cancelled);
            }
            let mut chunk = Vec::new();
            match slot {
                Some(slot) => derived_threshold(node, slot, op, tau, &mut chunk),
                None => node_threshold(node, op, tau, &mut chunk),
            }
            if !chunk.is_empty() {
                out.push((q, chunk));
            }
        }
        Ok(out)
    }

    /// MER query over a T-measure or the correlation D-measure
    /// (paper Query 3): all sequence pairs with `τ_l < value < τ_u`
    /// (exclusive bounds, matching the paper's `τ'_l < ξ < τ'_u`).
    ///
    /// # Errors
    /// [`ScapeError::MeasureNotIndexed`] or [`ScapeError::EmptyRange`].
    pub fn range_pairs(
        &self,
        measure: PairwiseMeasure,
        tau_l: f64,
        tau_u: f64,
    ) -> Result<Vec<SequencePair>, ScapeError> {
        self.range_pairs_with(measure, tau_l, tau_u, &|| false)
    }

    /// [`range_pairs`](ScapeIndex::range_pairs) with cooperative
    /// cancellation; see
    /// [`threshold_pairs_with`](ScapeIndex::threshold_pairs_with).
    ///
    /// # Errors
    /// [`ScapeError::MeasureNotIndexed`], [`ScapeError::EmptyRange`], or
    /// [`ScapeError::Cancelled`].
    pub fn range_pairs_with(
        &self,
        measure: PairwiseMeasure,
        tau_l: f64,
        tau_u: f64,
        cancel: &dyn Fn() -> bool,
    ) -> Result<Vec<SequencePair>, ScapeError> {
        if tau_l > tau_u {
            return Err(ScapeError::EmptyRange);
        }
        let (nodes, slot) = self.pair_nodes(measure)?;
        let mut out = Vec::new();
        for node in nodes {
            if cancel() {
                return Err(ScapeError::Cancelled);
            }
            match slot {
                Some(slot) => derived_range(node, slot, tau_l, tau_u, &mut out),
                None => node_range(node, tau_l, tau_u, &mut out),
            }
        }
        Ok(out)
    }

    /// [`range_pairs_with`](ScapeIndex::range_pairs_with) grouped by
    /// pivot node; see
    /// [`threshold_pairs_grouped`](ScapeIndex::threshold_pairs_grouped)
    /// for the splice-in-pivot-order contract.
    ///
    /// # Errors
    /// [`ScapeError::MeasureNotIndexed`], [`ScapeError::EmptyRange`], or
    /// [`ScapeError::Cancelled`].
    pub fn range_pairs_grouped(
        &self,
        measure: PairwiseMeasure,
        tau_l: f64,
        tau_u: f64,
        cancel: &dyn Fn() -> bool,
    ) -> Result<Vec<(usize, Vec<SequencePair>)>, ScapeError> {
        if tau_l > tau_u {
            return Err(ScapeError::EmptyRange);
        }
        let (nodes, slot) = self.pair_nodes(measure)?;
        let mut out = Vec::new();
        for (q, node) in nodes.iter().enumerate() {
            if cancel() {
                return Err(ScapeError::Cancelled);
            }
            let mut chunk = Vec::new();
            match slot {
                Some(slot) => derived_range(node, slot, tau_l, tau_u, &mut chunk),
                None => node_range(node, tau_l, tau_u, &mut chunk),
            }
            if !chunk.is_empty() {
                out.push((q, chunk));
            }
        }
        Ok(out)
    }

    /// Count of the MET result set `|Λ_T|` without materializing it.
    ///
    /// T-measures answer from the per-node subtree counts of each
    /// pivot's B+ tree (`O(log g)` per pivot); D-measures count the
    /// definitely-in region the same way and verify only the pruning
    /// band of Sec. 5.3.
    ///
    /// # Errors
    /// [`ScapeError::MeasureNotIndexed`] if the measure was not built.
    pub fn count_threshold_pairs(
        &self,
        measure: PairwiseMeasure,
        op: ThresholdOp,
        tau: f64,
    ) -> Result<usize, ScapeError> {
        let (nodes, slot) = self.pair_nodes(measure)?;
        let mut total = 0usize;
        match slot {
            Some(slot) => {
                for node in nodes {
                    total += derived_threshold_count(node, slot, op, tau);
                }
            }
            None => {
                for node in nodes {
                    if node.alpha_norm > 0.0 {
                        let tau_p = tau / node.alpha_norm;
                        let (lo, hi) = match op {
                            ThresholdOp::Greater => (Bound::Excluded(tau_p), Bound::Unbounded),
                            ThresholdOp::Less => (Bound::Unbounded, Bound::Excluded(tau_p)),
                        };
                        total += node.tree.count_range(lo, hi);
                    } else {
                        let include = match op {
                            ThresholdOp::Greater => 0.0 > tau,
                            ThresholdOp::Less => 0.0 < tau,
                        };
                        if include {
                            total += node.tree.len();
                        }
                    }
                }
            }
        }
        Ok(total)
    }

    /// Count of the MER result set without materializing it; see
    /// [`ScapeIndex::count_threshold_pairs`] for the cost model.
    ///
    /// # Errors
    /// [`ScapeError::MeasureNotIndexed`] or [`ScapeError::EmptyRange`].
    pub fn count_range_pairs(
        &self,
        measure: PairwiseMeasure,
        tau_l: f64,
        tau_u: f64,
    ) -> Result<usize, ScapeError> {
        if tau_l > tau_u {
            return Err(ScapeError::EmptyRange);
        }
        let (nodes, slot) = self.pair_nodes(measure)?;
        let mut total = 0usize;
        match slot {
            Some(slot) => {
                for node in nodes {
                    total += derived_range_count(node, slot, tau_l, tau_u);
                }
            }
            None => {
                for node in nodes {
                    if node.alpha_norm > 0.0 {
                        let lo = Bound::Excluded(tau_l / node.alpha_norm);
                        let hi = Bound::Excluded(tau_u / node.alpha_norm);
                        total += node.tree.count_range(lo, hi);
                    } else if tau_l < 0.0 && 0.0 < tau_u {
                        total += node.tree.len();
                    }
                }
            }
        }
        Ok(total)
    }

    /// Count of series with measure `> τ` (or `< τ`) from subtree
    /// counts, `O(log n)` per cluster node.
    ///
    /// # Errors
    /// [`ScapeError::MeasureNotIndexed`] if the measure was not built.
    pub fn count_threshold_series(
        &self,
        measure: LocationMeasure,
        op: ThresholdOp,
        tau: f64,
    ) -> Result<usize, ScapeError> {
        let nodes = self.loc[loc_tag(measure)]
            .as_ref()
            .ok_or(ScapeError::MeasureNotIndexed {
                measure: measure.name(),
            })?;
        let mut total = 0usize;
        for node in nodes {
            let tau_p = tau / node.alpha_norm;
            let (lo, hi) = match op {
                ThresholdOp::Greater => (Bound::Excluded(tau_p), Bound::Unbounded),
                ThresholdOp::Less => (Bound::Unbounded, Bound::Excluded(tau_p)),
            };
            total += node.tree.count_range(lo, hi);
        }
        Ok(total)
    }

    /// Count of series with `τ_l < value < τ_u` from subtree counts.
    ///
    /// # Errors
    /// [`ScapeError::MeasureNotIndexed`] or [`ScapeError::EmptyRange`].
    pub fn count_range_series(
        &self,
        measure: LocationMeasure,
        tau_l: f64,
        tau_u: f64,
    ) -> Result<usize, ScapeError> {
        if tau_l > tau_u {
            return Err(ScapeError::EmptyRange);
        }
        let nodes = self.loc[loc_tag(measure)]
            .as_ref()
            .ok_or(ScapeError::MeasureNotIndexed {
                measure: measure.name(),
            })?;
        let mut total = 0usize;
        for node in nodes {
            let lo = Bound::Excluded(tau_l / node.alpha_norm);
            let hi = Bound::Excluded(tau_u / node.alpha_norm);
            total += node.tree.count_range(lo, hi);
        }
        Ok(total)
    }

    /// MET query over an L-measure: all series whose measure is `> τ`
    /// (or `< τ`).
    ///
    /// # Errors
    /// [`ScapeError::MeasureNotIndexed`] if the measure was not built.
    pub fn threshold_series(
        &self,
        measure: LocationMeasure,
        op: ThresholdOp,
        tau: f64,
    ) -> Result<Vec<SeriesId>, ScapeError> {
        let nodes = self.loc[loc_tag(measure)]
            .as_ref()
            .ok_or(ScapeError::MeasureNotIndexed {
                measure: measure.name(),
            })?;
        let mut out = Vec::new();
        for node in nodes {
            // ‖α‖ = √(L(r)² + 1) ≥ 1 > 0 always.
            let tau_p = tau / node.alpha_norm;
            let (lo, hi) = match op {
                ThresholdOp::Greater => (Bound::Excluded(tau_p), Bound::Unbounded),
                ThresholdOp::Less => (Bound::Unbounded, Bound::Excluded(tau_p)),
            };
            out.extend(node.tree.range(lo, hi).map(|(_, v)| *v));
        }
        Ok(out)
    }

    /// MER query over an L-measure: all series with `τ_l < value < τ_u`.
    ///
    /// # Errors
    /// [`ScapeError::MeasureNotIndexed`] or [`ScapeError::EmptyRange`].
    pub fn range_series(
        &self,
        measure: LocationMeasure,
        tau_l: f64,
        tau_u: f64,
    ) -> Result<Vec<SeriesId>, ScapeError> {
        if tau_l > tau_u {
            return Err(ScapeError::EmptyRange);
        }
        let nodes = self.loc[loc_tag(measure)]
            .as_ref()
            .ok_or(ScapeError::MeasureNotIndexed {
                measure: measure.name(),
            })?;
        let mut out = Vec::new();
        for node in nodes {
            let lo = Bound::Excluded(tau_l / node.alpha_norm);
            let hi = Bound::Excluded(tau_u / node.alpha_norm);
            out.extend(node.tree.range(lo, hi).map(|(_, v)| *v));
        }
        Ok(out)
    }

    /// [`threshold_series`](ScapeIndex::threshold_series) with the tree
    /// keys retained, grouped per cluster node: element `l` holds the
    /// matching `(ξ, series)` entries of cluster `l` in tree order.
    ///
    /// Every shard of a sharded deployment shares the cluster model, so
    /// a cluster's ξ keys are comparable across shards; k-way merging
    /// shard lists by `(ξ, series)` reproduces the global tree order
    /// (equal-ξ runs are series-ascending by construction).
    ///
    /// # Errors
    /// [`ScapeError::MeasureNotIndexed`] if the measure was not built.
    pub fn threshold_series_keyed(
        &self,
        measure: LocationMeasure,
        op: ThresholdOp,
        tau: f64,
    ) -> Result<Vec<Vec<(f64, SeriesId)>>, ScapeError> {
        let nodes = self.loc[loc_tag(measure)]
            .as_ref()
            .ok_or(ScapeError::MeasureNotIndexed {
                measure: measure.name(),
            })?;
        let mut out = Vec::with_capacity(nodes.len());
        for node in nodes {
            let tau_p = tau / node.alpha_norm;
            let (lo, hi) = match op {
                ThresholdOp::Greater => (Bound::Excluded(tau_p), Bound::Unbounded),
                ThresholdOp::Less => (Bound::Unbounded, Bound::Excluded(tau_p)),
            };
            out.push(node.tree.range(lo, hi).map(|(k, v)| (k, *v)).collect());
        }
        Ok(out)
    }

    /// [`range_series`](ScapeIndex::range_series) with keys retained,
    /// grouped per cluster node; see
    /// [`threshold_series_keyed`](ScapeIndex::threshold_series_keyed).
    ///
    /// # Errors
    /// [`ScapeError::MeasureNotIndexed`] or [`ScapeError::EmptyRange`].
    pub fn range_series_keyed(
        &self,
        measure: LocationMeasure,
        tau_l: f64,
        tau_u: f64,
    ) -> Result<Vec<Vec<(f64, SeriesId)>>, ScapeError> {
        if tau_l > tau_u {
            return Err(ScapeError::EmptyRange);
        }
        let nodes = self.loc[loc_tag(measure)]
            .as_ref()
            .ok_or(ScapeError::MeasureNotIndexed {
                measure: measure.name(),
            })?;
        let mut out = Vec::with_capacity(nodes.len());
        for node in nodes {
            let lo = Bound::Excluded(tau_l / node.alpha_norm);
            let hi = Bound::Excluded(tau_u / node.alpha_norm);
            out.push(node.tree.range(lo, hi).map(|(k, v)| (k, *v)).collect());
        }
        Ok(out)
    }
}

/// Per-node MET scan of a T-measure pivot (shared by the flat and
/// grouped entry points so they emit identical sequences). Modified
/// threshold τ' = τ/‖α‖ (Sec. 5.2); zero-α pivots store ξ = 0 for a
/// reconstructed value of 0.
fn node_threshold(node: &PairPivotNode, op: ThresholdOp, tau: f64, out: &mut Vec<SequencePair>) {
    if node.alpha_norm > 0.0 {
        let tau_p = tau / node.alpha_norm;
        let (lo, hi) = match op {
            ThresholdOp::Greater => (Bound::Excluded(tau_p), Bound::Unbounded),
            ThresholdOp::Less => (Bound::Unbounded, Bound::Excluded(tau_p)),
        };
        out.extend(node.tree.range(lo, hi).map(|(_, sn)| sn.pair));
    } else {
        // Every stored value is exactly 0.
        let include = match op {
            ThresholdOp::Greater => 0.0 > tau,
            ThresholdOp::Less => 0.0 < tau,
        };
        if include {
            out.extend(node.tree.iter().map(|(_, sn)| sn.pair));
        }
    }
}

/// Per-node MER scan of a T-measure pivot; twin of [`node_threshold`].
fn node_range(node: &PairPivotNode, tau_l: f64, tau_u: f64, out: &mut Vec<SequencePair>) {
    if node.alpha_norm > 0.0 {
        let lo = Bound::Excluded(tau_l / node.alpha_norm);
        let hi = Bound::Excluded(tau_u / node.alpha_norm);
        out.extend(node.tree.range(lo, hi).map(|(_, sn)| sn.pair));
    } else if tau_l < 0.0 && 0.0 < tau_u {
        out.extend(node.tree.iter().map(|(_, sn)| sn.pair));
    }
}

/// A derived measure reconstructed from a sequence node:
/// `value = ξ·‖α‖ / U_e`, with the framework-wide convention `0` for
/// zero normalizers.
#[inline]
fn derived_value(xi: f64, alpha_norm: f64, normalizer: f64) -> f64 {
    if normalizer > 0.0 {
        xi * alpha_norm / normalizer
    } else {
        0.0
    }
}

/// The pruning band of Sec. 5.3 for one bound `τ`: nodes with
/// `ξ > hi` satisfy `ξ·‖α‖ > τ·U` for **every** normalizer in
/// `[u_min, u_max]`; nodes with `ξ < lo` satisfy the complement. Written
/// with min/max so negative thresholds (where `τ·U_min ≥ τ·U_max`) work
/// unchanged.
#[inline]
fn prune_band(node: &PairPivotNode, slot: usize, tau: f64) -> (f64, f64) {
    let (u_min, u_max) = node.u_bounds[slot];
    let a = tau * u_min / node.alpha_norm;
    let b = tau * u_max / node.alpha_norm;
    (a.min(b), a.max(b))
}

// `!(u_min > 0.0)` deliberately treats NaN bounds as degenerate.
#[allow(clippy::neg_cmp_op_on_partial_ord)]
fn derived_threshold(
    node: &PairPivotNode,
    slot: usize,
    op: ThresholdOp,
    tau: f64,
    out: &mut Vec<SequencePair>,
) {
    if node.tree.is_empty() {
        return;
    }
    // Degenerate pivots (zero α or a zero normalizer present) lose the
    // monotone pruning argument; fall back to verifying every node.
    if node.alpha_norm <= 0.0 || !(node.u_bounds[slot].0 > 0.0) {
        for (xi, sn) in node.tree.iter() {
            let r = derived_value(xi, node.alpha_norm.max(0.0), sn.normalizers[slot]);
            let keep = match op {
                ThresholdOp::Greater => r > tau,
                ThresholdOp::Less => r < tau,
            };
            if keep {
                out.push(sn.pair);
            }
        }
        return;
    }
    let (lo, hi) = prune_band(node, slot, tau);
    match op {
        ThresholdOp::Greater => {
            // ξ > hi ⇒ definitely in (paper Eq. 19).
            out.extend(
                node.tree
                    .range(Bound::Excluded(hi), Bound::Unbounded)
                    .map(|(_, sn)| sn.pair),
            );
            // lo ≤ ξ ≤ hi ⇒ verify from the stored normalizer.
            for (xi, sn) in node.tree.range(Bound::Included(lo), Bound::Included(hi)) {
                if derived_value(xi, node.alpha_norm, sn.normalizers[slot]) > tau {
                    out.push(sn.pair);
                }
            }
            // ξ < lo ⇒ definitely out.
        }
        ThresholdOp::Less => {
            out.extend(
                node.tree
                    .range(Bound::Unbounded, Bound::Excluded(lo))
                    .map(|(_, sn)| sn.pair),
            );
            for (xi, sn) in node.tree.range(Bound::Included(lo), Bound::Included(hi)) {
                if derived_value(xi, node.alpha_norm, sn.normalizers[slot]) < tau {
                    out.push(sn.pair);
                }
            }
        }
    }
}

// See derived_threshold for the NaN-aware comparison rationale.
#[allow(clippy::neg_cmp_op_on_partial_ord)]
fn derived_range(
    node: &PairPivotNode,
    slot: usize,
    tau_l: f64,
    tau_u: f64,
    out: &mut Vec<SequencePair>,
) {
    if node.tree.is_empty() {
        return;
    }
    if node.alpha_norm <= 0.0 || !(node.u_bounds[slot].0 > 0.0) {
        for (xi, sn) in node.tree.iter() {
            let r = derived_value(xi, node.alpha_norm.max(0.0), sn.normalizers[slot]);
            if tau_l < r && r < tau_u {
                out.push(sn.pair);
            }
        }
        return;
    }
    // Four modified thresholds (paper Sec. 5.3). Below lo(τ_l): definitely
    // out. Above hi(τ_u): definitely out. Inside (hi(τ_l), lo(τ_u)):
    // definitely in — the paper's case I; when that interval is empty
    // (case II) only verification remains.
    let (l_lo, l_hi) = prune_band(node, slot, tau_l);
    let (u_lo, u_hi) = prune_band(node, slot, tau_u);
    if l_hi < u_lo {
        // Case I: a definite-in core exists.
        out.extend(
            node.tree
                .range(Bound::Excluded(l_hi), Bound::Excluded(u_lo))
                .map(|(_, sn)| sn.pair),
        );
        for (xi, sn) in node
            .tree
            .range(Bound::Included(l_lo), Bound::Included(l_hi))
        {
            let r = derived_value(xi, node.alpha_norm, sn.normalizers[slot]);
            if tau_l < r && r < tau_u {
                out.push(sn.pair);
            }
        }
        for (xi, sn) in node
            .tree
            .range(Bound::Included(u_lo), Bound::Included(u_hi))
        {
            let r = derived_value(xi, node.alpha_norm, sn.normalizers[slot]);
            if tau_l < r && r < tau_u {
                out.push(sn.pair);
            }
        }
    } else {
        // Case II: verify the whole unpruned band [l_lo, u_hi].
        for (xi, sn) in node
            .tree
            .range(Bound::Included(l_lo), Bound::Included(u_hi))
        {
            let r = derived_value(xi, node.alpha_norm, sn.normalizers[slot]);
            if tau_l < r && r < tau_u {
                out.push(sn.pair);
            }
        }
    }
}

/// Counting twin of [`derived_threshold`]: the definitely-in region is
/// answered from subtree counts; only the pruning band is verified
/// node by node.
#[allow(clippy::neg_cmp_op_on_partial_ord)]
fn derived_threshold_count(node: &PairPivotNode, slot: usize, op: ThresholdOp, tau: f64) -> usize {
    if node.tree.is_empty() {
        return 0;
    }
    if node.alpha_norm <= 0.0 || !(node.u_bounds[slot].0 > 0.0) {
        return node
            .tree
            .iter()
            .filter(|(xi, sn)| {
                let r = derived_value(*xi, node.alpha_norm.max(0.0), sn.normalizers[slot]);
                match op {
                    ThresholdOp::Greater => r > tau,
                    ThresholdOp::Less => r < tau,
                }
            })
            .count();
    }
    let (lo, hi) = prune_band(node, slot, tau);
    let definite = match op {
        ThresholdOp::Greater => node.tree.count_range(Bound::Excluded(hi), Bound::Unbounded),
        ThresholdOp::Less => node.tree.count_range(Bound::Unbounded, Bound::Excluded(lo)),
    };
    definite
        + node
            .tree
            .range(Bound::Included(lo), Bound::Included(hi))
            .filter(|(xi, sn)| {
                let r = derived_value(*xi, node.alpha_norm, sn.normalizers[slot]);
                match op {
                    ThresholdOp::Greater => r > tau,
                    ThresholdOp::Less => r < tau,
                }
            })
            .count()
}

/// Counting twin of [`derived_range`].
#[allow(clippy::neg_cmp_op_on_partial_ord)]
fn derived_range_count(node: &PairPivotNode, slot: usize, tau_l: f64, tau_u: f64) -> usize {
    if node.tree.is_empty() {
        return 0;
    }
    let in_range = |xi: f64, norm: f64| {
        let r = derived_value(xi, node.alpha_norm.max(0.0), norm);
        tau_l < r && r < tau_u
    };
    if node.alpha_norm <= 0.0 || !(node.u_bounds[slot].0 > 0.0) {
        return node
            .tree
            .iter()
            .filter(|(xi, sn)| in_range(*xi, sn.normalizers[slot]))
            .count();
    }
    let (l_lo, l_hi) = prune_band(node, slot, tau_l);
    let (u_lo, u_hi) = prune_band(node, slot, tau_u);
    if l_hi < u_lo {
        node.tree
            .count_range(Bound::Excluded(l_hi), Bound::Excluded(u_lo))
            + node
                .tree
                .range(Bound::Included(l_lo), Bound::Included(l_hi))
                .filter(|(xi, sn)| in_range(*xi, sn.normalizers[slot]))
                .count()
            + node
                .tree
                .range(Bound::Included(u_lo), Bound::Included(u_hi))
                .filter(|(xi, sn)| in_range(*xi, sn.normalizers[slot]))
                .count()
    } else {
        node.tree
            .range(Bound::Included(l_lo), Bound::Included(u_hi))
            .filter(|(xi, sn)| in_range(*xi, sn.normalizers[slot]))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use affinity_core::prelude::*;
    use affinity_data::generator::{sensor_dataset, stock_dataset, SensorConfig, StockConfig};
    use affinity_data::DataMatrix;

    /// Oracle: filter the W_A values (the same values SCAPE stores) by
    /// brute force.
    struct Oracle<'a> {
        engine: MecEngine<'a>,
        data: &'a DataMatrix,
    }

    impl<'a> Oracle<'a> {
        fn new(data: &'a DataMatrix, affine: &'a AffineSet) -> Self {
            Oracle {
                engine: MecEngine::new(data, affine),
                data,
            }
        }

        fn pairs_threshold(
            &self,
            m: PairwiseMeasure,
            op: ThresholdOp,
            tau: f64,
        ) -> Vec<SequencePair> {
            self.data
                .sequence_pairs()
                .into_iter()
                .filter(|&p| {
                    let v = self.engine.pair_value(m, p).unwrap();
                    match op {
                        ThresholdOp::Greater => v > tau,
                        ThresholdOp::Less => v < tau,
                    }
                })
                .collect()
        }

        fn pairs_range(&self, m: PairwiseMeasure, lo: f64, hi: f64) -> Vec<SequencePair> {
            self.data
                .sequence_pairs()
                .into_iter()
                .filter(|&p| {
                    let v = self.engine.pair_value(m, p).unwrap();
                    lo < v && v < hi
                })
                .collect()
        }

        fn series_threshold(&self, m: LocationMeasure, op: ThresholdOp, tau: f64) -> Vec<SeriesId> {
            (0..self.data.series_count())
                .filter(|&v| {
                    let val = self.engine.location_value(m, v).unwrap();
                    match op {
                        ThresholdOp::Greater => val > tau,
                        ThresholdOp::Less => val < tau,
                    }
                })
                .collect()
        }
    }

    fn sorted<T: Ord>(mut v: Vec<T>) -> Vec<T> {
        v.sort();
        v
    }

    fn fixture(n: usize, m: usize) -> (DataMatrix, AffineSet) {
        let data = sensor_dataset(&SensorConfig::reduced(n, m));
        let affine = Symex::new(SymexParams::default()).run(&data).unwrap();
        (data, affine)
    }

    #[test]
    fn covariance_threshold_matches_oracle() {
        let (data, affine) = fixture(18, 48);
        let idx = ScapeIndex::build(&data, &affine, &Measure::ALL).unwrap();
        let oracle = Oracle::new(&data, &affine);
        for tau in [-0.5, 0.0, 0.01, 0.2, 1.0] {
            for op in [ThresholdOp::Greater, ThresholdOp::Less] {
                let got = sorted(
                    idx.threshold_pairs(PairwiseMeasure::Covariance, op, tau)
                        .unwrap(),
                );
                let want = sorted(oracle.pairs_threshold(PairwiseMeasure::Covariance, op, tau));
                assert_eq!(got, want, "tau {tau}, op {op:?}");
            }
        }
    }

    #[test]
    fn dot_threshold_matches_oracle() {
        let (data, affine) = fixture(15, 40);
        let idx = ScapeIndex::build(&data, &affine, &Measure::ALL).unwrap();
        let oracle = Oracle::new(&data, &affine);
        // Dot products of offset sensor data are large positive numbers.
        let all: Vec<f64> = data
            .sequence_pairs()
            .iter()
            .map(|&p| {
                oracle
                    .engine
                    .pair_value(PairwiseMeasure::DotProduct, p)
                    .unwrap()
            })
            .collect();
        let mid = all.iter().sum::<f64>() / all.len() as f64;
        for tau in [mid * 0.5, mid, mid * 1.5] {
            let got = sorted(
                idx.threshold_pairs(PairwiseMeasure::DotProduct, ThresholdOp::Greater, tau)
                    .unwrap(),
            );
            let want = sorted(oracle.pairs_threshold(
                PairwiseMeasure::DotProduct,
                ThresholdOp::Greater,
                tau,
            ));
            assert_eq!(got, want);
        }
    }

    #[test]
    fn correlation_threshold_matches_oracle_incl_negative_taus() {
        let (data, affine) = fixture(20, 64);
        let idx = ScapeIndex::build(&data, &affine, &Measure::ALL).unwrap();
        let oracle = Oracle::new(&data, &affine);
        for tau in [-0.95, -0.5, 0.0, 0.3, 0.7, 0.9, 0.99] {
            for op in [ThresholdOp::Greater, ThresholdOp::Less] {
                let got = sorted(
                    idx.threshold_pairs(PairwiseMeasure::Correlation, op, tau)
                        .unwrap(),
                );
                let want = sorted(oracle.pairs_threshold(PairwiseMeasure::Correlation, op, tau));
                assert_eq!(got, want, "tau {tau}, op {op:?}");
            }
        }
    }

    #[test]
    fn correlation_range_matches_oracle_both_cases() {
        let (data, affine) = fixture(20, 64);
        let idx = ScapeIndex::build(&data, &affine, &Measure::ALL).unwrap();
        let oracle = Oracle::new(&data, &affine);
        // Wide range triggers case I (definite-in core), narrow range
        // triggers case II.
        for (lo, hi) in [
            (-1.5, 1.5),
            (0.2, 0.9),
            (0.59, 0.61),
            (-0.9, -0.1),
            (0.0, 0.0001),
        ] {
            let got = sorted(
                idx.range_pairs(PairwiseMeasure::Correlation, lo, hi)
                    .unwrap(),
            );
            let want = sorted(oracle.pairs_range(PairwiseMeasure::Correlation, lo, hi));
            assert_eq!(got, want, "range ({lo}, {hi})");
        }
    }

    #[test]
    fn covariance_range_matches_oracle() {
        let (data, affine) = fixture(16, 48);
        let idx = ScapeIndex::build(&data, &affine, &Measure::ALL).unwrap();
        let oracle = Oracle::new(&data, &affine);
        for (lo, hi) in [(-1.0, 1.0), (0.0, 0.5), (-0.2, 0.0)] {
            let got = sorted(
                idx.range_pairs(PairwiseMeasure::Covariance, lo, hi)
                    .unwrap(),
            );
            let want = sorted(oracle.pairs_range(PairwiseMeasure::Covariance, lo, hi));
            assert_eq!(got, want);
        }
    }

    #[test]
    fn location_threshold_and_range_match_oracle() {
        let (data, affine) = fixture(25, 48);
        let idx = ScapeIndex::build(&data, &affine, &Measure::ALL).unwrap();
        let oracle = Oracle::new(&data, &affine);
        for measure in LocationMeasure::ALL {
            let vals: Vec<f64> = oracle.engine.location_all(measure);
            let mid = vals.iter().sum::<f64>() / vals.len() as f64;
            for op in [ThresholdOp::Greater, ThresholdOp::Less] {
                let got = sorted(idx.threshold_series(measure, op, mid).unwrap());
                let want = sorted(oracle.series_threshold(measure, op, mid));
                assert_eq!(got, want, "{} {op:?}", measure.name());
            }
            let lo = mid - 1.0;
            let hi = mid + 1.0;
            let got = sorted(idx.range_series(measure, lo, hi).unwrap());
            let want: Vec<SeriesId> = (0..data.series_count())
                .filter(|&v| {
                    let x = oracle.engine.location_value(measure, v).unwrap();
                    lo < x && x < hi
                })
                .collect();
            assert_eq!(got, want, "{} range", measure.name());
        }
    }

    #[test]
    fn stock_data_correlation_queries_also_match() {
        let data = stock_dataset(&StockConfig::reduced(16, 96));
        let affine = Symex::new(SymexParams::default()).run(&data).unwrap();
        let idx = ScapeIndex::build(&data, &affine, &Measure::ALL).unwrap();
        let oracle = Oracle::new(&data, &affine);
        for tau in [0.5, 0.8, 0.95] {
            let got = sorted(
                idx.threshold_pairs(PairwiseMeasure::Correlation, ThresholdOp::Greater, tau)
                    .unwrap(),
            );
            let want = sorted(oracle.pairs_threshold(
                PairwiseMeasure::Correlation,
                ThresholdOp::Greater,
                tau,
            ));
            assert_eq!(got, want);
        }
    }

    #[test]
    fn cosine_and_dice_match_oracle() {
        // The dot-product-derived extensions (paper Sec. 2.1) go through
        // the same normalizer-bound pruning machinery as correlation.
        let (data, affine) = fixture(18, 48);
        let idx = ScapeIndex::build(&data, &affine, &Measure::EXTENDED).unwrap();
        let oracle = Oracle::new(&data, &affine);
        for measure in [PairwiseMeasure::Cosine, PairwiseMeasure::Dice] {
            for tau in [-0.5, 0.0, 0.5, 0.9, 0.99] {
                for op in [ThresholdOp::Greater, ThresholdOp::Less] {
                    let got = sorted(idx.threshold_pairs(measure, op, tau).unwrap());
                    let want = sorted(oracle.pairs_threshold(measure, op, tau));
                    assert_eq!(got, want, "{} tau {tau} {op:?}", measure.name());
                }
            }
            for (lo, hi) in [(0.0, 0.9), (0.89, 0.91), (-1.0, 1.0)] {
                let got = sorted(idx.range_pairs(measure, lo, hi).unwrap());
                let want = sorted(oracle.pairs_range(measure, lo, hi));
                assert_eq!(got, want, "{} range ({lo}, {hi})", measure.name());
            }
        }
    }

    #[test]
    fn dot_index_serves_cosine_and_dice() {
        let (data, affine) = fixture(10, 32);
        let idx = ScapeIndex::build(
            &data,
            &affine,
            &[Measure::Pairwise(PairwiseMeasure::Cosine)],
        )
        .unwrap();
        assert!(idx.supports(Measure::Pairwise(PairwiseMeasure::Cosine)));
        assert!(idx.supports(Measure::Pairwise(PairwiseMeasure::Dice)));
        assert!(idx.supports(Measure::Pairwise(PairwiseMeasure::DotProduct)));
        assert!(!idx.supports(Measure::Pairwise(PairwiseMeasure::Correlation)));
        assert!(idx
            .threshold_pairs(PairwiseMeasure::Dice, ThresholdOp::Greater, 0.9)
            .is_ok());
    }

    #[test]
    fn unindexed_measures_error() {
        let (data, affine) = fixture(8, 24);
        let idx = ScapeIndex::build(
            &data,
            &affine,
            &[Measure::Pairwise(PairwiseMeasure::Covariance)],
        )
        .unwrap();
        assert!(matches!(
            idx.threshold_pairs(PairwiseMeasure::DotProduct, ThresholdOp::Greater, 0.0),
            Err(ScapeError::MeasureNotIndexed { .. })
        ));
        assert!(matches!(
            idx.threshold_series(LocationMeasure::Mean, ThresholdOp::Greater, 0.0),
            Err(ScapeError::MeasureNotIndexed { .. })
        ));
    }

    #[test]
    fn inverted_range_errors() {
        let (data, affine) = fixture(8, 24);
        let idx = ScapeIndex::build(&data, &affine, &Measure::ALL).unwrap();
        assert_eq!(
            idx.range_pairs(PairwiseMeasure::Covariance, 1.0, -1.0),
            Err(ScapeError::EmptyRange)
        );
        assert_eq!(
            idx.range_series(LocationMeasure::Mean, 1.0, -1.0),
            Err(ScapeError::EmptyRange)
        );
    }

    #[test]
    fn count_queries_match_materialized_results() {
        let (data, affine) = fixture(18, 48);
        let idx = ScapeIndex::build(&data, &affine, &Measure::EXTENDED).unwrap();
        for measure in [
            PairwiseMeasure::Covariance,
            PairwiseMeasure::DotProduct,
            PairwiseMeasure::Correlation,
            PairwiseMeasure::Cosine,
            PairwiseMeasure::Dice,
        ] {
            for tau in [-0.9, -0.1, 0.0, 0.3, 0.8, 5.0] {
                for op in [ThresholdOp::Greater, ThresholdOp::Less] {
                    assert_eq!(
                        idx.count_threshold_pairs(measure, op, tau).unwrap(),
                        idx.threshold_pairs(measure, op, tau).unwrap().len(),
                        "{} tau {tau} {op:?}",
                        measure.name()
                    );
                }
            }
            for (lo, hi) in [(-1.0, 1.0), (0.0, 0.5), (0.29, 0.31), (-5.0, 20.0)] {
                assert_eq!(
                    idx.count_range_pairs(measure, lo, hi).unwrap(),
                    idx.range_pairs(measure, lo, hi).unwrap().len(),
                    "{} range ({lo}, {hi})",
                    measure.name()
                );
            }
        }
        for measure in LocationMeasure::ALL {
            for tau in [-100.0, 0.0, 20.0, 100.0] {
                for op in [ThresholdOp::Greater, ThresholdOp::Less] {
                    assert_eq!(
                        idx.count_threshold_series(measure, op, tau).unwrap(),
                        idx.threshold_series(measure, op, tau).unwrap().len()
                    );
                }
            }
            assert_eq!(
                idx.count_range_series(measure, 0.0, 50.0).unwrap(),
                idx.range_series(measure, 0.0, 50.0).unwrap().len()
            );
        }
        assert!(matches!(
            idx.count_range_pairs(PairwiseMeasure::Covariance, 1.0, -1.0),
            Err(ScapeError::EmptyRange)
        ));
    }

    /// Zero-α pivots (constant common series ⇒ covariance α = 0) store
    /// ξ = 0 for *every* member pair — exactly the duplicate-run shape
    /// that broke `bulk_build`. Bulk- and insert-built indexes must
    /// agree with each other and the oracle, and counts must match.
    #[test]
    fn zero_alpha_duplicate_projections_survive_bulk_build() {
        // Series 0 is constant; the rest are noisy affine images of a
        // shared sinusoid. The marching traversal anchors every pair
        // (0, v) at a pivot whose common series is the constant one.
        let m = 48;
        let mut columns: Vec<Vec<f64>> = vec![vec![3.5; m]];
        for v in 1..24usize {
            columns.push(
                (0..m)
                    .map(|i| {
                        let t = i as f64 * 0.21;
                        t.sin() * (1.0 + v as f64 * 0.1) + v as f64 + (i as f64 * 0.77).cos() * 0.01
                    })
                    .collect(),
            );
        }
        let data = DataMatrix::from_series(columns);
        let affine = Symex::new(SymexParams::default()).run(&data).unwrap();
        let bulk = ScapeIndex::build(&data, &affine, &Measure::ALL).unwrap();
        let ins = ScapeIndex::build_insert(&data, &affine, &Measure::ALL).unwrap();
        // At least one covariance pivot must be degenerate for the test
        // to bite.
        assert!(
            bulk.cov
                .as_ref()
                .unwrap()
                .iter()
                .any(|n| n.alpha_norm == 0.0 && n.tree.len() > 1),
            "expected a zero-alpha pivot with a duplicate xi run"
        );
        let oracle = Oracle::new(&data, &affine);
        for tau in [-1.0, -0.01, 0.0, 0.01, 1.0] {
            for op in [ThresholdOp::Greater, ThresholdOp::Less] {
                let got_bulk = sorted(
                    bulk.threshold_pairs(PairwiseMeasure::Covariance, op, tau)
                        .unwrap(),
                );
                let got_ins = sorted(
                    ins.threshold_pairs(PairwiseMeasure::Covariance, op, tau)
                        .unwrap(),
                );
                let want = sorted(oracle.pairs_threshold(PairwiseMeasure::Covariance, op, tau));
                assert_eq!(got_bulk, want, "bulk tau {tau} {op:?}");
                assert_eq!(got_ins, want, "insert tau {tau} {op:?}");
                assert_eq!(
                    bulk.count_threshold_pairs(PairwiseMeasure::Covariance, op, tau)
                        .unwrap(),
                    want.len()
                );
            }
        }
    }

    #[test]
    fn cancellation_aborts_between_pivots() {
        let (data, affine) = fixture(10, 24);
        let idx = ScapeIndex::build(&data, &affine, &Measure::ALL).unwrap();
        assert_eq!(
            idx.threshold_pairs_with(
                PairwiseMeasure::Correlation,
                ThresholdOp::Greater,
                0.0,
                &|| true
            ),
            Err(ScapeError::Cancelled)
        );
        assert_eq!(
            idx.range_pairs_with(PairwiseMeasure::Covariance, -1.0, 1.0, &|| true),
            Err(ScapeError::Cancelled)
        );
        // A never-firing callback is answer-preserving.
        let a = idx
            .threshold_pairs(PairwiseMeasure::Correlation, ThresholdOp::Greater, 0.5)
            .unwrap();
        let b = idx
            .threshold_pairs_with(
                PairwiseMeasure::Correlation,
                ThresholdOp::Greater,
                0.5,
                &|| false,
            )
            .unwrap();
        assert_eq!(sorted(a), sorted(b));
    }

    #[test]
    fn extreme_thresholds_return_all_or_nothing() {
        let (data, affine) = fixture(10, 24);
        let idx = ScapeIndex::build(&data, &affine, &Measure::ALL).unwrap();
        let all = idx
            .threshold_pairs(PairwiseMeasure::Correlation, ThresholdOp::Greater, -2.0)
            .unwrap();
        assert_eq!(all.len(), data.pair_count());
        let none = idx
            .threshold_pairs(PairwiseMeasure::Correlation, ThresholdOp::Greater, 2.0)
            .unwrap();
        assert!(none.is_empty());
    }
}

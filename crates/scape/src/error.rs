//! SCAPE error type.

use affinity_data::SourceError;
use std::fmt;

/// Errors raised by SCAPE construction, maintenance, and queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScapeError {
    /// A column fetch failed during a streamed
    /// [`build_from_source`](crate::ScapeIndex::build_from_source).
    Source(SourceError),
    /// The queried measure was not included when the index was built.
    MeasureNotIndexed {
        /// Name of the missing measure.
        measure: &'static str,
    },
    /// A range query with `τ_l > τ_u`.
    EmptyRange,
    /// `build` inputs disagree: the affine set was not computed over the
    /// given data matrix (series count or sample count differ).
    ShapeMismatch {
        /// `(series, samples)` of the data matrix.
        data: (usize, usize),
        /// `(series, samples)` the affine set was computed over.
        affine: (usize, usize),
    },
    /// `apply_delta` referenced a pivot, pair, or series the index does
    /// not hold (a stale or foreign delta).
    DeltaMismatch {
        /// What failed to resolve.
        detail: &'static str,
    },
    /// A cooperative cancellation callback asked the query to stop
    /// (caller deadline expired or the request was shed).
    Cancelled,
}

impl fmt::Display for ScapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScapeError::Source(e) => write!(f, "series source fetch failed: {e}"),
            ScapeError::MeasureNotIndexed { measure } => {
                write!(f, "measure '{measure}' was not indexed at build time")
            }
            ScapeError::EmptyRange => write!(f, "range query requires tau_l <= tau_u"),
            ScapeError::ShapeMismatch { data, affine } => write!(
                f,
                "affine set (series {}, samples {}) does not match the data matrix (series {}, samples {})",
                affine.0, affine.1, data.0, data.1
            ),
            ScapeError::DeltaMismatch { detail } => {
                write!(f, "delta does not match the index: {detail}")
            }
            ScapeError::Cancelled => write!(f, "query cancelled before completion"),
        }
    }
}

impl std::error::Error for ScapeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScapeError::Source(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SourceError> for ScapeError {
    fn from(e: SourceError) -> Self {
        ScapeError::Source(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = ScapeError::MeasureNotIndexed { measure: "mode" };
        assert!(e.to_string().contains("mode"));
        assert!(ScapeError::EmptyRange.to_string().contains("tau_l"));
        let e = ScapeError::ShapeMismatch {
            data: (10, 64),
            affine: (12, 64),
        };
        assert!(e.to_string().contains("10") && e.to_string().contains("12"));
        let e = ScapeError::DeltaMismatch { detail: "pivot" };
        assert!(e.to_string().contains("pivot"));
    }
}

//! SCAPE error type.

use std::fmt;

/// Errors raised by SCAPE queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScapeError {
    /// The queried measure was not included when the index was built.
    MeasureNotIndexed {
        /// Name of the missing measure.
        measure: &'static str,
    },
    /// A range query with `τ_l > τ_u`.
    EmptyRange,
}

impl fmt::Display for ScapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScapeError::MeasureNotIndexed { measure } => {
                write!(f, "measure '{measure}' was not indexed at build time")
            }
            ScapeError::EmptyRange => write!(f, "range query requires tau_l <= tau_u"),
        }
    }
}

impl std::error::Error for ScapeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = ScapeError::MeasureNotIndexed { measure: "mode" };
        assert!(e.to_string().contains("mode"));
        assert!(ScapeError::EmptyRange.to_string().contains("tau_l"));
    }
}

//! SCAPE index construction (paper Sec. 5.1).

use affinity_core::affine::{PivotPair, PivotStats};
use affinity_core::hash::FxHashMap;
use affinity_core::measures::{self, LocationMeasure, Measure, PairwiseMeasure};
use affinity_core::symex::AffineSet;
use affinity_data::{DataMatrix, SequencePair, SeriesId};
use affinity_index::BPlusTree;
use affinity_linalg::vector;

/// Number of derived-measure normalizer slots per sequence node: the
/// covariance tree carries the correlation normalizer in slot 0; the
/// dot-product tree carries cosine (slot 0) and Dice (slot 1).
pub(crate) const NORM_SLOTS: usize = 2;

/// Payload of a sequence node: the pair it stands for and — for
/// D-measure processing — the separable normalizers `U_e` of the derived
/// measures that share this tree's α family.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct SeqNode {
    pub pair: SequencePair,
    pub normalizers: [f64; NORM_SLOTS],
}

/// A pivot node for a pairwise measure: `‖α_q‖`, the sorted container of
/// its sequence nodes, and the per-slot normalizer bounds used for
/// D-measure pruning (paper Sec. 5.3).
#[derive(Debug, Clone)]
pub(crate) struct PairPivotNode {
    pub alpha_norm: f64,
    pub tree: BPlusTree<SeqNode>,
    /// `(U_q^min, U_q^max)` per normalizer slot.
    pub u_bounds: [(f64, f64); NORM_SLOTS],
}

/// A pivot node for a location measure: one per cluster, holding the
/// member series keyed by their scalar projection.
#[derive(Debug, Clone)]
pub(crate) struct LocPivotNode {
    pub alpha_norm: f64,
    pub tree: BPlusTree<SeriesId>,
}

/// Build/size statistics of a SCAPE index.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexStats {
    /// Pivot nodes across all indexed pairwise measures.
    pub pair_pivot_nodes: usize,
    /// Sequence nodes across all indexed pairwise measures.
    pub pair_sequence_nodes: usize,
    /// Pivot (cluster) nodes across all indexed location measures.
    pub location_pivot_nodes: usize,
    /// Series nodes across all indexed location measures.
    pub location_series_nodes: usize,
}

/// The SCAPE index (paper Sec. 5). Build once over an [`AffineSet`], then
/// run MET/MER queries via the methods in the `query` module.
#[derive(Debug)]
pub struct ScapeIndex {
    /// Covariance pivot nodes, in pivot order; also serves correlation.
    pub(crate) cov: Option<Vec<PairPivotNode>>,
    /// Dot-product pivot nodes.
    pub(crate) dot: Option<Vec<PairPivotNode>>,
    /// Whether correlation queries are allowed (requires covariance
    /// nodes + normalizers, which are always stored when cov is built).
    pub(crate) correlation: bool,
    /// Location pivot nodes per measure tag, one node per cluster.
    pub(crate) loc: [Option<Vec<LocPivotNode>>; 3],
    stats: IndexStats,
}

#[inline]
pub(crate) fn loc_tag(m: LocationMeasure) -> usize {
    match m {
        LocationMeasure::Mean => 0,
        LocationMeasure::Median => 1,
        LocationMeasure::Mode => 2,
    }
}

#[inline]
fn dot3(a: &[f64; 3], b: &[f64; 3]) -> f64 {
    a[0] * b[0] + a[1] * b[1] + a[2] * b[2]
}

#[inline]
fn norm3(a: &[f64; 3]) -> f64 {
    dot3(a, a).sqrt()
}

impl ScapeIndex {
    /// Build the index over the given measures.
    ///
    /// Construction cost is `O(g log g)` B-tree insertions for `g`
    /// affine relationships per indexed pairwise measure, plus `O(n)` per
    /// indexed location measure — the linear scaling of paper Fig. 14.
    ///
    /// Indexing [`PairwiseMeasure::Correlation`] implies building the
    /// covariance nodes (correlation shares the covariance `α`, Table 2).
    ///
    /// # Panics
    /// Panics if `affine` does not match `data` (series count / samples).
    pub fn build(data: &DataMatrix, affine: &AffineSet, measures_list: &[Measure]) -> Self {
        assert_eq!(
            data.series_count(),
            affine.series_count(),
            "affine set does not match the data matrix"
        );
        assert_eq!(
            data.samples(),
            affine.samples(),
            "affine set does not match the data matrix"
        );
        let want_corr = measures_list
            .iter()
            .any(|m| matches!(m, Measure::Pairwise(PairwiseMeasure::Correlation)));
        let want_cov = want_corr
            || measures_list
                .iter()
                .any(|m| matches!(m, Measure::Pairwise(PairwiseMeasure::Covariance)));
        let want_dot = measures_list.iter().any(|m| {
            matches!(
                m,
                Measure::Pairwise(PairwiseMeasure::DotProduct)
                    | Measure::Pairwise(PairwiseMeasure::Cosine)
                    | Measure::Pairwise(PairwiseMeasure::Dice)
            )
        });
        let want_loc: [bool; 3] = {
            let mut w = [false; 3];
            for m in measures_list {
                if let Measure::Location(l) = m {
                    w[loc_tag(*l)] = true;
                }
            }
            w
        };

        let mut stats = IndexStats::default();

        // --- Pairwise measures -----------------------------------------
        let mut pivot_ids: FxHashMap<PivotPair, usize> = FxHashMap::default();
        for (i, &p) in affine.pivots().iter().enumerate() {
            pivot_ids.insert(p, i);
        }
        let pivot_stats: Vec<PivotStats> = affine
            .pivots()
            .iter()
            .map(|&p| {
                let (common, center) = affine.pivot_columns(data, p);
                PivotStats::compute(common, center)
            })
            .collect();
        // Normalizer components (exact per-series variances and self
        // dot products — the "separable normalizers" of Sec. 2.3).
        let variances: Vec<f64> = (0..data.series_count())
            .map(|v| vector::variance(data.series(v)))
            .collect();
        let self_dots: Vec<f64> = (0..data.series_count())
            .map(|v| {
                let s = data.series(v);
                vector::dot(s, s)
            })
            .collect();

        let build_pair = |measure: PairwiseMeasure| -> Vec<PairPivotNode> {
            let mut nodes: Vec<PairPivotNode> = pivot_stats
                .iter()
                .map(|st| PairPivotNode {
                    alpha_norm: norm3(&st.alpha(measure)),
                    tree: BPlusTree::new(),
                    u_bounds: [(f64::INFINITY, f64::NEG_INFINITY); NORM_SLOTS],
                })
                .collect();
            for rel in affine.relationships() {
                let q = pivot_ids[&rel.pivot];
                let st = &pivot_stats[q];
                let alpha = st.alpha(measure);
                let node = &mut nodes[q];
                let beta = rel.beta();
                // ξ = (α·β)/‖α‖; a zero α (e.g. constant common series)
                // degenerates to ξ = 0, which still orders consistently
                // because the reconstructed value is 0 too.
                let xi = if node.alpha_norm > 0.0 {
                    dot3(&alpha, &beta) / node.alpha_norm
                } else {
                    0.0
                };
                let (u, v) = (rel.pair.u, rel.pair.v);
                let normalizers = match measure {
                    // Covariance family: slot 0 = correlation normalizer.
                    PairwiseMeasure::Covariance => [(variances[u] * variances[v]).sqrt(), 0.0],
                    // Dot family: slot 0 = cosine, slot 1 = Dice.
                    _ => [
                        (self_dots[u] * self_dots[v]).sqrt(),
                        0.5 * (self_dots[u] + self_dots[v]),
                    ],
                };
                for (slot, &n) in normalizers.iter().enumerate() {
                    node.u_bounds[slot].0 = node.u_bounds[slot].0.min(n);
                    node.u_bounds[slot].1 = node.u_bounds[slot].1.max(n);
                }
                node.tree.insert(
                    xi,
                    SeqNode {
                        pair: rel.pair,
                        normalizers,
                    },
                );
            }
            nodes
        };

        let cov = want_cov.then(|| build_pair(PairwiseMeasure::Covariance));
        let dot = want_dot.then(|| build_pair(PairwiseMeasure::DotProduct));
        for nodes in cov.iter().chain(dot.iter()) {
            stats.pair_pivot_nodes += nodes.len();
            stats.pair_sequence_nodes += nodes.iter().map(|n| n.tree.len()).sum::<usize>();
        }

        // --- Location measures ------------------------------------------
        let clusters = affine.clusters();
        let mut loc: [Option<Vec<LocPivotNode>>; 3] = [None, None, None];
        for (tag, wanted) in want_loc.iter().enumerate() {
            if !wanted {
                continue;
            }
            let measure = match tag {
                0 => LocationMeasure::Mean,
                1 => LocationMeasure::Median,
                _ => LocationMeasure::Mode,
            };
            let center_loc: Vec<f64> = (0..clusters.k())
                .map(|l| measures::location(measure, clusters.center(l)))
                .collect();
            let mut nodes: Vec<LocPivotNode> = center_loc
                .iter()
                .map(|&lv| LocPivotNode {
                    alpha_norm: (lv * lv + 1.0).sqrt(),
                    tree: BPlusTree::new(),
                })
                .collect();
            for sr in affine.series_relationships() {
                let node = &mut nodes[sr.cluster];
                let value = sr.propagate(center_loc[sr.cluster]);
                let xi = value / node.alpha_norm;
                node.tree.insert(xi, sr.series);
            }
            stats.location_pivot_nodes += nodes.len();
            stats.location_series_nodes += nodes.iter().map(|n| n.tree.len()).sum::<usize>();
            loc[tag] = Some(nodes);
        }

        ScapeIndex {
            cov,
            dot,
            correlation: want_corr || want_cov,
            loc,
            stats,
        }
    }

    /// Size statistics of the built index.
    pub fn stats(&self) -> IndexStats {
        self.stats
    }

    /// `true` if the given measure can be queried.
    pub fn supports(&self, measure: Measure) -> bool {
        match measure {
            Measure::Pairwise(PairwiseMeasure::Covariance) => self.cov.is_some(),
            Measure::Pairwise(PairwiseMeasure::DotProduct) => self.dot.is_some(),
            Measure::Pairwise(PairwiseMeasure::Correlation) => {
                self.correlation && self.cov.is_some()
            }
            Measure::Pairwise(PairwiseMeasure::Cosine)
            | Measure::Pairwise(PairwiseMeasure::Dice) => self.dot.is_some(),
            Measure::Location(l) => self.loc[loc_tag(l)].is_some(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use affinity_core::prelude::*;
    use affinity_data::generator::{sensor_dataset, SensorConfig};

    fn fixture(n: usize, m: usize) -> (DataMatrix, AffineSet) {
        let data = sensor_dataset(&SensorConfig::reduced(n, m));
        let affine = Symex::new(SymexParams::default()).run(&data).unwrap();
        (data, affine)
    }

    #[test]
    fn builds_all_measures() {
        let (data, affine) = fixture(14, 40);
        let idx = ScapeIndex::build(&data, &affine, &Measure::ALL);
        for m in Measure::ALL {
            assert!(idx.supports(m), "{} unsupported", m.name());
        }
        let st = idx.stats();
        // cov + dot sequence nodes: 2 * n(n-1)/2.
        assert_eq!(st.pair_sequence_nodes, 2 * data.pair_count());
        // 3 location measures × n series.
        assert_eq!(st.location_series_nodes, 3 * data.series_count());
    }

    #[test]
    fn partial_build_rejects_unindexed() {
        let (data, affine) = fixture(10, 32);
        let idx = ScapeIndex::build(
            &data,
            &affine,
            &[Measure::Pairwise(PairwiseMeasure::DotProduct)],
        );
        assert!(idx.supports(Measure::Pairwise(PairwiseMeasure::DotProduct)));
        assert!(!idx.supports(Measure::Pairwise(PairwiseMeasure::Covariance)));
        assert!(!idx.supports(Measure::Location(LocationMeasure::Mean)));
    }

    #[test]
    fn correlation_implies_covariance_nodes() {
        let (data, affine) = fixture(10, 32);
        let idx = ScapeIndex::build(
            &data,
            &affine,
            &[Measure::Pairwise(PairwiseMeasure::Correlation)],
        );
        assert!(idx.supports(Measure::Pairwise(PairwiseMeasure::Correlation)));
        assert!(idx.supports(Measure::Pairwise(PairwiseMeasure::Covariance)));
    }

    #[test]
    fn normalizer_bounds_are_consistent() {
        let (data, affine) = fixture(12, 36);
        let idx = ScapeIndex::build(
            &data,
            &affine,
            &[Measure::Pairwise(PairwiseMeasure::Covariance)],
        );
        for node in idx.cov.as_ref().unwrap() {
            if node.tree.is_empty() {
                continue;
            }
            let (u_min, u_max) = node.u_bounds[0];
            assert!(u_min <= u_max);
            for (_, sn) in node.tree.iter() {
                assert!(sn.normalizers[0] >= u_min - 1e-12);
                assert!(sn.normalizers[0] <= u_max + 1e-12);
            }
        }
    }

    #[test]
    fn every_pair_lands_in_exactly_one_pivot_tree() {
        let (data, affine) = fixture(13, 36);
        let idx = ScapeIndex::build(
            &data,
            &affine,
            &[Measure::Pairwise(PairwiseMeasure::Covariance)],
        );
        let mut seen = std::collections::HashSet::new();
        for node in idx.cov.as_ref().unwrap() {
            for (_, sn) in node.tree.iter() {
                assert!(seen.insert(sn.pair), "duplicate {:?}", sn.pair);
            }
        }
        assert_eq!(seen.len(), data.pair_count());
    }
}

//! SCAPE index construction (paper Sec. 5.1) and delta maintenance.

use crate::delta::ScapeDelta;
use crate::error::ScapeError;
use affinity_core::affine::{PivotPair, PivotStats};
use affinity_core::hash::FxHashMap;
use affinity_core::measures::{self, LocationMeasure, Measure, PairwiseMeasure};
use affinity_core::symex::AffineSet;
use affinity_data::source::{prefetch_window, scan_sequence, with_column_buffers};
use affinity_data::{DataMatrix, SequencePair, SeriesId, SeriesSource};
use affinity_index::BPlusTree;
use affinity_linalg::vector;
use affinity_par::ThreadPool;

/// Number of derived-measure normalizer slots per sequence node: the
/// covariance tree carries the correlation normalizer in slot 0; the
/// dot-product tree carries cosine (slot 0) and Dice (slot 1).
pub(crate) const NORM_SLOTS: usize = 2;

/// Payload of a sequence node: the pair it stands for and — for
/// D-measure processing — the separable normalizers `U_e` of the derived
/// measures that share this tree's α family.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct SeqNode {
    pub pair: SequencePair,
    pub normalizers: [f64; NORM_SLOTS],
}

/// A pivot node for a pairwise measure: the measure α-vector and its
/// norm, the sorted container of its sequence nodes, and the per-slot
/// normalizer bounds used for D-measure pruning (paper Sec. 5.3).
///
/// `alpha` is retained (not just its norm) so delta maintenance can
/// recompute a stored node's key `ξ = (α·β)/‖α‖` bit-identically from
/// the old `β` when relocating it.
#[derive(Debug, Clone)]
pub(crate) struct PairPivotNode {
    pub alpha: [f64; 3],
    pub alpha_norm: f64,
    pub tree: BPlusTree<SeqNode>,
    /// `(U_q^min, U_q^max)` per normalizer slot.
    pub u_bounds: [(f64, f64); NORM_SLOTS],
}

/// A pivot node for a location measure: one per cluster, holding the
/// member series keyed by their scalar projection. `center_loc` (the
/// location value of the cluster centre) is retained for delta
/// maintenance, mirroring `PairPivotNode::alpha`.
#[derive(Debug, Clone)]
pub(crate) struct LocPivotNode {
    pub center_loc: f64,
    pub alpha_norm: f64,
    pub tree: BPlusTree<SeriesId>,
}

/// Build/size statistics of a SCAPE index.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexStats {
    /// Pivot nodes across all indexed pairwise measures.
    pub pair_pivot_nodes: usize,
    /// Sequence nodes across all indexed pairwise measures.
    pub pair_sequence_nodes: usize,
    /// Pivot (cluster) nodes across all indexed location measures.
    pub location_pivot_nodes: usize,
    /// Series nodes across all indexed location measures.
    pub location_series_nodes: usize,
}

/// The SCAPE index (paper Sec. 5). Build once over an [`AffineSet`], then
/// run MET/MER queries via the methods in the `query` module.
///
/// Cloning is a deep copy of every pivot tree; the snapshot open path
/// (`Session::open_snapshot`) uses it to hand a decoded index to a
/// query session without rebuilding.
#[derive(Debug, Clone)]
pub struct ScapeIndex {
    /// Covariance pivot nodes, in pivot order; also serves correlation.
    pub(crate) cov: Option<Vec<PairPivotNode>>,
    /// Dot-product pivot nodes.
    pub(crate) dot: Option<Vec<PairPivotNode>>,
    /// Whether correlation queries are allowed (requires covariance
    /// nodes + normalizers, which are always stored when cov is built).
    pub(crate) correlation: bool,
    /// Location pivot nodes per measure tag, one node per cluster.
    pub(crate) loc: [Option<Vec<LocPivotNode>>; 3],
    /// Pivot pair → node index, shared by every pairwise family; lets
    /// [`ScapeIndex::apply_delta`] resolve a change in `O(1)`.
    pub(crate) pivot_ids: FxHashMap<PivotPair, usize>,
    pub(crate) stats: IndexStats,
}

#[inline]
pub(crate) fn loc_tag(m: LocationMeasure) -> usize {
    match m {
        LocationMeasure::Mean => 0,
        LocationMeasure::Median => 1,
        LocationMeasure::Mode => 2,
    }
}

#[inline]
fn dot3(a: &[f64; 3], b: &[f64; 3]) -> f64 {
    a[0] * b[0] + a[1] * b[1] + a[2] * b[2]
}

#[inline]
fn norm3(a: &[f64; 3]) -> f64 {
    dot3(a, a).sqrt()
}

/// The scalar projection `ξ = (α·β)/‖α‖`, with two normalizations shared
/// by construction *and* delta maintenance (so recomputed keys stay
/// bit-identical): zero-α pivots degenerate to ξ = 0 (the reconstructed
/// value is 0 too, so ordering stays consistent), and `-0.0` collapses
/// to `+0.0` — `total_cmp` (the bulk sort) orders `-0.0 < +0.0` while
/// tree inserts compare them equal, and canonicalizing keeps the two
/// build paths node-for-node identical.
#[inline]
fn project(alpha: &[f64; 3], alpha_norm: f64, beta: &[f64; 3]) -> f64 {
    if alpha_norm > 0.0 {
        let xi = dot3(alpha, beta) / alpha_norm;
        if vector::exactly_zero(xi) {
            0.0
        } else {
            xi
        }
    } else {
        0.0
    }
}

/// Canonical location projection (same signed-zero normalization as
/// [`project`]).
#[inline]
fn project_loc(c: f64, d: f64, center_loc: f64, alpha_norm: f64) -> f64 {
    let xi = (c * center_loc + d) / alpha_norm;
    if vector::exactly_zero(xi) {
        0.0
    } else {
        xi
    }
}

/// Which tree families a measure list requests:
/// `(covariance, dot, correlation, location-by-tag)`. Indexing
/// correlation implies building the covariance family (shared α).
fn measure_wants(measures_list: &[Measure]) -> (bool, bool, bool, [bool; 3]) {
    let want_corr = measures_list
        .iter()
        .any(|m| matches!(m, Measure::Pairwise(PairwiseMeasure::Correlation)));
    let want_cov = want_corr
        || measures_list
            .iter()
            .any(|m| matches!(m, Measure::Pairwise(PairwiseMeasure::Covariance)));
    let want_dot = measures_list.iter().any(|m| {
        matches!(
            m,
            Measure::Pairwise(PairwiseMeasure::DotProduct)
                | Measure::Pairwise(PairwiseMeasure::Cosine)
                | Measure::Pairwise(PairwiseMeasure::Dice)
        )
    });
    let want_loc: [bool; 3] = {
        let mut w = [false; 3];
        for m in measures_list {
            if let Measure::Location(l) = m {
                w[loc_tag(*l)] = true;
            }
        }
        w
    };
    (want_cov, want_dot, want_corr, want_loc)
}

impl ScapeIndex {
    /// Build the index over the given measures.
    ///
    /// Per indexed pairwise measure, the `g` affine relationships are
    /// gathered into per-pivot `(ξ, node)` arrays, sorted, and
    /// bulk-loaded bottom-up — `O(g log g)` with a linear-construction
    /// tree pass, the scaling of paper Fig. 14. Location measures cost
    /// `O(n)` per measure. Sorting and tree construction run serially
    /// here; [`ScapeIndex::build_with_pool`] shards them across pivots.
    ///
    /// Indexing [`PairwiseMeasure::Correlation`] implies building the
    /// covariance nodes (correlation shares the covariance `α`, Table 2).
    ///
    /// # Errors
    /// [`ScapeError::ShapeMismatch`] if `affine` was not computed over
    /// `data` (series count / samples differ).
    pub fn build(
        data: &DataMatrix,
        affine: &AffineSet,
        measures_list: &[Measure],
    ) -> Result<Self, ScapeError> {
        Self::build_impl(data, affine, measures_list, &ThreadPool::new(1), true)
    }

    /// [`ScapeIndex::build`] with the per-pivot sort + bulk-load phase
    /// sharded across the given worker pool (the streaming engine passes
    /// its long-lived pool). Output is identical for every lane count.
    ///
    /// # Errors
    /// [`ScapeError::ShapeMismatch`] as for [`ScapeIndex::build`].
    pub fn build_with_pool(
        data: &DataMatrix,
        affine: &AffineSet,
        measures_list: &[Measure],
        pool: &ThreadPool,
    ) -> Result<Self, ScapeError> {
        Self::build_impl(data, affine, measures_list, pool, true)
    }

    /// Reference construction path: per-key B-tree inserts instead of
    /// sort + bulk load. Kept for tests and the Fig. 14 bench, which
    /// assert both paths answer every query identically; prefer
    /// [`ScapeIndex::build`].
    ///
    /// # Errors
    /// [`ScapeError::ShapeMismatch`] as for [`ScapeIndex::build`].
    pub fn build_insert(
        data: &DataMatrix,
        affine: &AffineSet,
        measures_list: &[Measure],
    ) -> Result<Self, ScapeError> {
        Self::build_impl(data, affine, measures_list, &ThreadPool::new(1), false)
    }

    /// Build the index by streaming columns through any
    /// [`SeriesSource`] — an on-disk `MatrixStore` or bounded-memory
    /// `CachedStore` works as well as a resident matrix, and the result
    /// is bit-for-bit identical (pivot statistics and normalizers are
    /// the only raw-data reads; everything else comes from the affine
    /// set). Per-pivot work is sharded across `pool`'s lanes with
    /// per-lane column buffers.
    ///
    /// # Errors
    /// [`ScapeError::ShapeMismatch`] if `affine` was not computed over a
    /// source of this shape; [`ScapeError::Source`] on fetch failures.
    pub fn build_from_source<S: SeriesSource + ?Sized>(
        source: &S,
        affine: &AffineSet,
        measures_list: &[Measure],
        pool: &ThreadPool,
    ) -> Result<Self, ScapeError> {
        Self::build_impl(source, affine, measures_list, pool, true)
    }

    fn build_impl<S: SeriesSource + ?Sized>(
        source: &S,
        affine: &AffineSet,
        measures_list: &[Measure],
        pool: &ThreadPool,
        bulk: bool,
    ) -> Result<Self, ScapeError> {
        if source.series_count() != affine.series_count() || source.samples() != affine.samples() {
            return Err(ScapeError::ShapeMismatch {
                data: (source.series_count(), source.samples()),
                affine: (affine.series_count(), affine.samples()),
            });
        }
        let (want_cov, want_dot, _, _) = measure_wants(measures_list);
        let pivot_count = affine.pivots().len();
        // Pairwise-only preprocessing, skipped for location-only builds
        // (all of it is O(pivots·m) / O(n·m) / O(n²) work that only the
        // pairwise families consume). Raw columns are pulled through the
        // source with per-lane buffers — the only data access in the
        // whole build.
        let want_pair = want_cov || want_dot;
        let pivot_stats: Vec<PivotStats> = if want_pair {
            let clusters = affine.clusters();
            // Pivot commons in pivot order — known before any fetch, so
            // each lane announces a sliding window ahead of itself.
            let commons: Vec<u32> = affine.pivots().iter().map(|p| p.common as u32).collect();
            pool.parallel_map(pivot_count, |q| {
                with_column_buffers(|buf, _| {
                    let p = affine.pivots()[q];
                    prefetch_window(source, &commons, q);
                    let common = source.read_into(p.common, buf)?;
                    Ok(PivotStats::compute(common, clusters.center(p.cluster)))
                })
            })
            .into_iter()
            .collect::<Result<_, ScapeError>>()?
        } else {
            Vec::new()
        };
        // Normalizer components (exact per-series variances and self
        // dot products — the "separable normalizers" of Sec. 2.3), both
        // marginal moments from one fetch per column.
        let (variances, self_dots): (Vec<f64>, Vec<f64>) = if want_cov || want_dot {
            let n = source.series_count();
            let scan = scan_sequence(n);
            let marginals: Vec<Result<(f64, f64), ScapeError>> = pool.parallel_map(n, |v| {
                with_column_buffers(|buf, _| {
                    prefetch_window(source, &scan, v);
                    let s = source.read_into(v, buf)?;
                    Ok((
                        if want_cov { vector::variance(s) } else { 0.0 },
                        if want_dot { vector::dot(s, s) } else { 0.0 },
                    ))
                })
            });
            let mut variances = Vec::new();
            let mut self_dots = Vec::new();
            for r in marginals {
                let (var, sd) = r?;
                if want_cov {
                    variances.push(var);
                }
                if want_dot {
                    self_dots.push(sd);
                }
            }
            (variances, self_dots)
        } else {
            (Vec::new(), Vec::new())
        };
        Ok(Self::assemble(
            affine,
            &pivot_stats,
            &variances,
            &self_dots,
            measures_list,
            None,
            pool,
            bulk,
        ))
    }

    /// Assemble an index directly from precomputed pivot statistics and
    /// marginal moments, without touching raw series data. This is the
    /// shard build path: a caller that has already computed per-pivot
    /// [`PivotStats`] (aligned with `affine.pivots()`) and the
    /// per-series variance / self-dot tables reuses them here, and the
    /// resulting trees are node-for-node identical to a
    /// [`ScapeIndex::build_from_source`] over the same model.
    ///
    /// `loc_series`, when given, masks which series are admitted to the
    /// location trees (length `affine.series_count()`); pair trees are
    /// always built from every relationship in `affine`. A sharded
    /// deployment uses this so each shard's location trees hold exactly
    /// its owned series while its pair trees hold its pivot groups.
    ///
    /// # Panics
    /// If a pairwise measure is requested and `pivot_stats` is not
    /// aligned with `affine.pivots()`, if a wanted normalizer table
    /// (`variances` for the covariance family, `self_dots` for the dot
    /// family) does not cover `affine.series_count()` series, or if
    /// `loc_series` has the wrong length. These are programmer errors —
    /// this constructor never sees untrusted bytes (decoded indexes go
    /// through `from_bytes`).
    #[allow(clippy::too_many_arguments)]
    pub fn build_from_stats(
        affine: &AffineSet,
        pivot_stats: &[PivotStats],
        variances: &[f64],
        self_dots: &[f64],
        measures_list: &[Measure],
        loc_series: Option<&[bool]>,
        pool: &ThreadPool,
    ) -> Self {
        let (want_cov, want_dot, _, _) = measure_wants(measures_list);
        let n = affine.series_count();
        if want_cov || want_dot {
            assert_eq!(
                pivot_stats.len(),
                affine.pivots().len(),
                "build_from_stats: pivot_stats must align with affine.pivots()"
            );
        }
        if want_cov {
            assert_eq!(
                variances.len(),
                n,
                "build_from_stats: variances must cover every series"
            );
        }
        if want_dot {
            assert_eq!(
                self_dots.len(),
                n,
                "build_from_stats: self_dots must cover every series"
            );
        }
        if let Some(mask) = loc_series {
            assert_eq!(
                mask.len(),
                n,
                "build_from_stats: loc_series mask must cover every series"
            );
        }
        Self::assemble(
            affine,
            pivot_stats,
            variances,
            self_dots,
            measures_list,
            loc_series,
            pool,
            true,
        )
    }

    /// Shared tree-assembly stage: everything downstream of the raw-data
    /// reads. Both the source-streaming build and
    /// [`ScapeIndex::build_from_stats`] funnel through here, so given the
    /// same statistics their outputs are node-for-node identical.
    #[allow(clippy::too_many_arguments)]
    fn assemble(
        affine: &AffineSet,
        pivot_stats: &[PivotStats],
        variances: &[f64],
        self_dots: &[f64],
        measures_list: &[Measure],
        loc_series: Option<&[bool]>,
        pool: &ThreadPool,
        bulk: bool,
    ) -> Self {
        let (want_cov, want_dot, want_corr, want_loc) = measure_wants(measures_list);
        let want_pair = want_cov || want_dot;
        let pivot_count = affine.pivots().len();
        let mut stats = IndexStats::default();

        // --- Pairwise measures -----------------------------------------
        let mut pivot_ids: FxHashMap<PivotPair, usize> = FxHashMap::default();
        for (i, &p) in affine.pivots().iter().enumerate() {
            pivot_ids.insert(p, i);
        }
        // Bucket relationship indices by pivot once, in traversal order;
        // both pairwise families shard over these groups.
        let mut members: Vec<Vec<u32>> = vec![Vec::new(); if want_pair { pivot_count } else { 0 }];
        if want_pair {
            for (i, rel) in affine.relationships().iter().enumerate() {
                members[pivot_ids[&rel.pivot]].push(i as u32);
            }
        }

        let build_pair = |measure: PairwiseMeasure| -> Vec<PairPivotNode> {
            pool.parallel_map(pivot_count, |q| {
                let alpha = pivot_stats[q].alpha(measure);
                let alpha_norm = norm3(&alpha);
                let mut u_bounds = [(f64::INFINITY, f64::NEG_INFINITY); NORM_SLOTS];
                let mut entries: Vec<(f64, SeqNode)> = Vec::with_capacity(members[q].len());
                for &i in &members[q] {
                    let rel = &affine.relationships()[i as usize];
                    let xi = project(&alpha, alpha_norm, &rel.beta());
                    let (u, v) = (rel.pair.u, rel.pair.v);
                    let normalizers = match measure {
                        // Covariance family: slot 0 = correlation
                        // normalizer.
                        PairwiseMeasure::Covariance => [(variances[u] * variances[v]).sqrt(), 0.0],
                        // Dot family: slot 0 = cosine, slot 1 = Dice.
                        _ => [
                            (self_dots[u] * self_dots[v]).sqrt(),
                            0.5 * (self_dots[u] + self_dots[v]),
                        ],
                    };
                    for (slot, &n) in normalizers.iter().enumerate() {
                        u_bounds[slot].0 = u_bounds[slot].0.min(n);
                        u_bounds[slot].1 = u_bounds[slot].1.max(n);
                    }
                    entries.push((
                        xi,
                        SeqNode {
                            pair: rel.pair,
                            normalizers,
                        },
                    ));
                }
                let tree = if bulk {
                    // Stable sort keeps traversal order among equal ξ
                    // (zero-α pivots and symmetric series produce long
                    // duplicate runs), so iteration order matches the
                    // insert path exactly.
                    entries.sort_by(|a, b| a.0.total_cmp(&b.0));
                    BPlusTree::bulk_build(entries)
                } else {
                    let mut t = BPlusTree::new();
                    for (k, v) in entries {
                        t.insert(k, v);
                    }
                    t
                };
                PairPivotNode {
                    alpha,
                    alpha_norm,
                    tree,
                    u_bounds,
                }
            })
        };

        let cov = want_cov.then(|| build_pair(PairwiseMeasure::Covariance));
        let dot = want_dot.then(|| build_pair(PairwiseMeasure::DotProduct));
        for nodes in cov.iter().chain(dot.iter()) {
            stats.pair_pivot_nodes += nodes.len();
            stats.pair_sequence_nodes += nodes.iter().map(|n| n.tree.len()).sum::<usize>();
        }

        // --- Location measures ------------------------------------------
        let clusters = affine.clusters();
        let mut loc: [Option<Vec<LocPivotNode>>; 3] = [None, None, None];
        for (tag, wanted) in want_loc.iter().enumerate() {
            if !wanted {
                continue;
            }
            let measure = match tag {
                0 => LocationMeasure::Mean,
                1 => LocationMeasure::Median,
                _ => LocationMeasure::Mode,
            };
            let center_loc: Vec<f64> = (0..clusters.k())
                .map(|l| measures::location(measure, clusters.center(l)))
                .collect();
            // Gather per-cluster entries in series order, then load.
            // A masked build (sharding) admits only the owned series.
            let mut cluster_entries: Vec<Vec<(f64, SeriesId)>> = vec![Vec::new(); clusters.k()];
            for sr in affine.series_relationships() {
                if loc_series.is_some_and(|m| !m[sr.series]) {
                    continue;
                }
                let lv = center_loc[sr.cluster];
                let xi = project_loc(sr.c, sr.d, lv, (lv * lv + 1.0).sqrt());
                cluster_entries[sr.cluster].push((xi, sr.series));
            }
            let nodes: Vec<LocPivotNode> = center_loc
                .iter()
                .zip(cluster_entries)
                .map(|(&lv, mut entries)| {
                    let tree = if bulk {
                        entries.sort_by(|a, b| a.0.total_cmp(&b.0));
                        BPlusTree::bulk_build(entries)
                    } else {
                        let mut t = BPlusTree::new();
                        for (k, v) in entries {
                            t.insert(k, v);
                        }
                        t
                    };
                    LocPivotNode {
                        center_loc: lv,
                        alpha_norm: (lv * lv + 1.0).sqrt(),
                        tree,
                    }
                })
                .collect();
            stats.location_pivot_nodes += nodes.len();
            stats.location_series_nodes += nodes.iter().map(|n| n.tree.len()).sum::<usize>();
            loc[tag] = Some(nodes);
        }

        ScapeIndex {
            cov,
            dot,
            correlation: want_corr || want_cov,
            loc,
            pivot_ids,
            stats,
        }
    }

    /// Apply a batch of relationship re-fits against **retained pivots**:
    /// each change relocates one sequence (or series) node from its old
    /// scalar projection to the new one — `O(log g)` per affected tree —
    /// leaving pivot statistics, normalizers, and every untouched node
    /// exactly as built. After a successful call the index answers every
    /// query identically to a from-scratch [`ScapeIndex::build`] over the
    /// same reference data with the patched affine set.
    ///
    /// # Errors
    /// [`ScapeError::DeltaMismatch`] if a change references a pivot,
    /// cluster, or node the index does not hold (e.g. a delta produced
    /// against a different model generation). Changes are applied in
    /// order; on error the already-applied prefix remains in place, so
    /// the caller should discard the index and rebuild.
    pub fn apply_delta(&mut self, delta: &ScapeDelta) -> Result<(), ScapeError> {
        for pd in &delta.pairs {
            let q = *self
                .pivot_ids
                .get(&pd.pivot)
                .ok_or(ScapeError::DeltaMismatch {
                    detail: "unknown pivot pair",
                })?;
            for nodes in self.cov.iter_mut().chain(self.dot.iter_mut()) {
                let node = &mut nodes[q];
                // Recomputing from the stored α with the same
                // expression as construction ([`project`]) makes the
                // old key bit-identical, so the remove is an exact
                // lookup.
                let old_xi = project(&node.alpha, node.alpha_norm, &pd.old_beta);
                let sn = node.tree.remove(old_xi, |sn| sn.pair == pd.pair).ok_or(
                    ScapeError::DeltaMismatch {
                        detail: "sequence node not found at its old projection",
                    },
                )?;
                let new_xi = project(&node.alpha, node.alpha_norm, &pd.new_beta);
                node.tree.insert(new_xi, sn);
            }
        }
        for sd in &delta.series {
            for nodes in self.loc.iter_mut().flatten() {
                let node = nodes.get_mut(sd.cluster).ok_or(ScapeError::DeltaMismatch {
                    detail: "unknown cluster",
                })?;
                let old_xi = project_loc(sd.old.0, sd.old.1, node.center_loc, node.alpha_norm);
                let v = node.tree.remove(old_xi, |s| *s == sd.series).ok_or(
                    ScapeError::DeltaMismatch {
                        detail: "series node not found at its old projection",
                    },
                )?;
                let new_xi = project_loc(sd.new.0, sd.new.1, node.center_loc, node.alpha_norm);
                node.tree.insert(new_xi, v);
            }
        }
        Ok(())
    }

    /// Size statistics of the built index.
    pub fn stats(&self) -> IndexStats {
        self.stats
    }

    /// `true` if the given measure can be queried.
    pub fn supports(&self, measure: Measure) -> bool {
        match measure {
            Measure::Pairwise(PairwiseMeasure::Covariance) => self.cov.is_some(),
            Measure::Pairwise(PairwiseMeasure::DotProduct) => self.dot.is_some(),
            Measure::Pairwise(PairwiseMeasure::Correlation) => {
                self.correlation && self.cov.is_some()
            }
            Measure::Pairwise(PairwiseMeasure::Cosine)
            | Measure::Pairwise(PairwiseMeasure::Dice) => self.dot.is_some(),
            Measure::Location(l) => self.loc[loc_tag(l)].is_some(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use affinity_core::prelude::*;
    use affinity_data::generator::{sensor_dataset, SensorConfig};

    fn fixture(n: usize, m: usize) -> (DataMatrix, AffineSet) {
        let data = sensor_dataset(&SensorConfig::reduced(n, m));
        let affine = Symex::new(SymexParams::default()).run(&data).unwrap();
        (data, affine)
    }

    #[test]
    fn builds_all_measures() {
        let (data, affine) = fixture(14, 40);
        let idx = ScapeIndex::build(&data, &affine, &Measure::ALL).unwrap();
        for m in Measure::ALL {
            assert!(idx.supports(m), "{} unsupported", m.name());
        }
        let st = idx.stats();
        // cov + dot sequence nodes: 2 * n(n-1)/2.
        assert_eq!(st.pair_sequence_nodes, 2 * data.pair_count());
        // 3 location measures × n series.
        assert_eq!(st.location_series_nodes, 3 * data.series_count());
    }

    #[test]
    fn partial_build_rejects_unindexed() {
        let (data, affine) = fixture(10, 32);
        let idx = ScapeIndex::build(
            &data,
            &affine,
            &[Measure::Pairwise(PairwiseMeasure::DotProduct)],
        )
        .unwrap();
        assert!(idx.supports(Measure::Pairwise(PairwiseMeasure::DotProduct)));
        assert!(!idx.supports(Measure::Pairwise(PairwiseMeasure::Covariance)));
        assert!(!idx.supports(Measure::Location(LocationMeasure::Mean)));
    }

    #[test]
    fn correlation_implies_covariance_nodes() {
        let (data, affine) = fixture(10, 32);
        let idx = ScapeIndex::build(
            &data,
            &affine,
            &[Measure::Pairwise(PairwiseMeasure::Correlation)],
        )
        .unwrap();
        assert!(idx.supports(Measure::Pairwise(PairwiseMeasure::Correlation)));
        assert!(idx.supports(Measure::Pairwise(PairwiseMeasure::Covariance)));
    }

    #[test]
    fn normalizer_bounds_are_consistent() {
        let (data, affine) = fixture(12, 36);
        let idx = ScapeIndex::build(
            &data,
            &affine,
            &[Measure::Pairwise(PairwiseMeasure::Covariance)],
        )
        .unwrap();
        for node in idx.cov.as_ref().unwrap() {
            if node.tree.is_empty() {
                continue;
            }
            let (u_min, u_max) = node.u_bounds[0];
            assert!(u_min <= u_max);
            for (_, sn) in node.tree.iter() {
                assert!(sn.normalizers[0] >= u_min - 1e-12);
                assert!(sn.normalizers[0] <= u_max + 1e-12);
            }
        }
    }

    #[test]
    fn build_rejects_mismatched_shapes() {
        let (_data, affine) = fixture(10, 32);
        let other = sensor_dataset(&SensorConfig::reduced(11, 32));
        assert!(matches!(
            ScapeIndex::build(&other, &affine, &Measure::ALL),
            Err(ScapeError::ShapeMismatch { .. })
        ));
        let truncated = sensor_dataset(&SensorConfig::reduced(10, 16));
        assert!(matches!(
            ScapeIndex::build(&truncated, &affine, &Measure::ALL),
            Err(ScapeError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn bulk_build_matches_insert_build_node_for_node() {
        let (data, affine) = fixture(16, 40);
        let bulk = ScapeIndex::build(&data, &affine, &Measure::EXTENDED).unwrap();
        let ins = ScapeIndex::build_insert(&data, &affine, &Measure::EXTENDED).unwrap();
        assert_eq!(bulk.stats(), ins.stats());
        for (a, b) in [(&bulk.cov, &ins.cov), (&bulk.dot, &ins.dot)] {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            assert_eq!(a.len(), b.len());
            for (na, nb) in a.iter().zip(b) {
                assert_eq!(na.alpha, nb.alpha);
                assert_eq!(na.alpha_norm, nb.alpha_norm);
                assert_eq!(na.u_bounds, nb.u_bounds);
                let ea: Vec<(f64, SeqNode)> = na.tree.iter().map(|(k, v)| (k, *v)).collect();
                let eb: Vec<(f64, SeqNode)> = nb.tree.iter().map(|(k, v)| (k, *v)).collect();
                assert_eq!(ea, eb);
            }
        }
        for (la, lb) in bulk.loc.iter().zip(&ins.loc) {
            let (la, lb) = (la.as_ref().unwrap(), lb.as_ref().unwrap());
            for (na, nb) in la.iter().zip(lb) {
                assert_eq!(na.center_loc, nb.center_loc);
                let ea: Vec<(f64, SeriesId)> = na.tree.iter().map(|(k, v)| (k, *v)).collect();
                let eb: Vec<(f64, SeriesId)> = nb.tree.iter().map(|(k, v)| (k, *v)).collect();
                assert_eq!(ea, eb);
            }
        }
    }

    #[test]
    fn build_with_pool_is_identical_to_serial_build() {
        let (data, affine) = fixture(14, 36);
        let serial = ScapeIndex::build(&data, &affine, &Measure::ALL).unwrap();
        let pool = ThreadPool::new(4);
        let pooled = ScapeIndex::build_with_pool(&data, &affine, &Measure::ALL, &pool).unwrap();
        assert_eq!(serial.stats(), pooled.stats());
        for (a, b) in serial
            .cov
            .as_ref()
            .unwrap()
            .iter()
            .zip(pooled.cov.as_ref().unwrap())
        {
            let ea: Vec<(f64, SequencePair)> = a.tree.iter().map(|(k, v)| (k, v.pair)).collect();
            let eb: Vec<(f64, SequencePair)> = b.tree.iter().map(|(k, v)| (k, v.pair)).collect();
            assert_eq!(ea, eb);
        }
    }

    #[test]
    fn apply_delta_matches_rebuild_with_patched_affine() {
        use crate::delta::{PairDelta, SeriesDelta};
        let (data, mut affine) = fixture(12, 36);
        let mut idx = ScapeIndex::build(&data, &affine, &Measure::EXTENDED).unwrap();
        // Perturb a handful of relationships as a refit would.
        let mut delta = ScapeDelta::default();
        let picks = [0usize, 3, 7, 20];
        let mut patched = Vec::new();
        for &i in &picks {
            let mut rel = affine.relationships()[i].clone();
            let old_beta = rel.beta();
            rel.a[0][1] += 0.05;
            rel.a[1][1] -= 0.02;
            rel.b[1] += 0.3;
            delta.pairs.push(PairDelta {
                pair: rel.pair,
                pivot: rel.pivot,
                old_beta,
                new_beta: rel.beta(),
            });
            patched.push(rel);
        }
        for rel in patched {
            affine.replace_relationship(rel).expect("same pivot");
        }
        let sr = *affine.series_relationship(2);
        let new_sr = affinity_core::affine::SeriesRelationship {
            c: sr.c * 1.1,
            d: sr.d - 0.5,
            ..sr
        };
        delta.series.push(SeriesDelta {
            series: sr.series,
            cluster: sr.cluster,
            old: (sr.c, sr.d),
            new: (new_sr.c, new_sr.d),
        });
        affine
            .replace_series_relationship(new_sr)
            .expect("same cluster");

        idx.apply_delta(&delta).unwrap();
        let rebuilt = ScapeIndex::build(&data, &affine, &Measure::EXTENDED).unwrap();
        // Every tree holds the same key → pair multiset (delta reinserts
        // a moved duplicate at the end of its run, so compare sorted).
        for (a, b) in [(&idx.cov, &rebuilt.cov), (&idx.dot, &rebuilt.dot)] {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            for (na, nb) in a.iter().zip(b) {
                let mut ea: Vec<(f64, SequencePair)> =
                    na.tree.iter().map(|(k, v)| (k, v.pair)).collect();
                let mut eb: Vec<(f64, SequencePair)> =
                    nb.tree.iter().map(|(k, v)| (k, v.pair)).collect();
                ea.sort_by(|x, y| x.0.total_cmp(&y.0).then(x.1.cmp(&y.1)));
                eb.sort_by(|x, y| x.0.total_cmp(&y.0).then(x.1.cmp(&y.1)));
                assert_eq!(ea, eb);
            }
        }
        for (la, lb) in idx.loc.iter().zip(&rebuilt.loc) {
            let (la, lb) = (la.as_ref().unwrap(), lb.as_ref().unwrap());
            for (na, nb) in la.iter().zip(lb) {
                let mut ea: Vec<(f64, SeriesId)> = na.tree.iter().map(|(k, v)| (k, *v)).collect();
                let mut eb: Vec<(f64, SeriesId)> = nb.tree.iter().map(|(k, v)| (k, *v)).collect();
                ea.sort_by(|x, y| x.0.total_cmp(&y.0).then(x.1.cmp(&y.1)));
                eb.sort_by(|x, y| x.0.total_cmp(&y.0).then(x.1.cmp(&y.1)));
                assert_eq!(ea, eb);
            }
        }
    }

    #[test]
    fn apply_delta_rejects_stale_changes() {
        use crate::delta::PairDelta;
        let (data, affine) = fixture(8, 24);
        let mut idx = ScapeIndex::build(&data, &affine, &Measure::ALL).unwrap();
        let rel = &affine.relationships()[0];
        // Wrong old β: the node is not at that projection.
        let delta = ScapeDelta {
            pairs: vec![PairDelta {
                pair: rel.pair,
                pivot: rel.pivot,
                old_beta: [999.0, 999.0, 999.0],
                new_beta: rel.beta(),
            }],
            series: vec![],
        };
        assert!(matches!(
            idx.apply_delta(&delta),
            Err(ScapeError::DeltaMismatch { .. })
        ));
        // Unknown pivot.
        let delta = ScapeDelta {
            pairs: vec![PairDelta {
                pair: rel.pair,
                pivot: PivotPair {
                    common: 7,
                    cluster: 999,
                },
                old_beta: rel.beta(),
                new_beta: rel.beta(),
            }],
            series: vec![],
        };
        assert!(matches!(
            idx.apply_delta(&delta),
            Err(ScapeError::DeltaMismatch { .. })
        ));
    }

    #[test]
    fn every_pair_lands_in_exactly_one_pivot_tree() {
        let (data, affine) = fixture(13, 36);
        let idx = ScapeIndex::build(
            &data,
            &affine,
            &[Measure::Pairwise(PairwiseMeasure::Covariance)],
        )
        .unwrap();
        let mut seen = std::collections::HashSet::new();
        for node in idx.cov.as_ref().unwrap() {
            for (_, sn) in node.tree.iter() {
                assert!(seen.insert(sn.pair), "duplicate {:?}", sn.pair);
            }
        }
        assert_eq!(seen.len(), data.pair_count());
    }
}

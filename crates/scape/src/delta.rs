//! Delta maintenance of a built SCAPE index.
//!
//! A [`ScapeDelta`] describes a set of re-fitted affine relationships
//! whose **pivots are retained**: only the measure-independent `β`
//! vectors (and per-series `(c, d)` fits) changed. Because the pivot
//! statistics `α` and the separable normalizers are anchored at the
//! index's reference data, each change moves exactly one sequence/series
//! node to a new scalar projection — an `O(log g)` remove + reinsert per
//! affected tree instead of a from-scratch rebuild. This is the paper's
//! "computed only once" amortization argument carried into the windowed
//! setting: the streaming engine re-fits only drifted relationships and
//! patches the index in place.

use affinity_core::affine::PivotPair;
use affinity_data::{SequencePair, SeriesId};

/// A re-fit of one pairwise relationship against its retained pivot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairDelta {
    /// The sequence pair whose relationship was re-fitted.
    pub pair: SequencePair,
    /// Its (unchanged) pivot.
    pub pivot: PivotPair,
    /// `β` currently stored in the index (locates the old node key).
    pub old_beta: [f64; 3],
    /// The re-fitted `β`.
    pub new_beta: [f64; 3],
}

/// A re-fit of one per-series relationship `s ≈ c·r + d` against its
/// retained cluster centre.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesDelta {
    /// The series whose relationship was re-fitted.
    pub series: SeriesId,
    /// Its (unchanged) cluster.
    pub cluster: usize,
    /// `(c, d)` currently stored in the index.
    pub old: (f64, f64),
    /// The re-fitted `(c, d)`.
    pub new: (f64, f64),
}

/// A batch of relationship re-fits to apply to a built index via
/// [`crate::ScapeIndex::apply_delta`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScapeDelta {
    /// Pairwise re-fits (T- and D-measure trees).
    pub pairs: Vec<PairDelta>,
    /// Per-series re-fits (L-measure trees).
    pub series: Vec<SeriesDelta>,
}

impl ScapeDelta {
    /// `true` when the delta carries no changes.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty() && self.series.is_empty()
    }

    /// Number of node moves the delta will perform per indexed tree
    /// family.
    pub fn len(&self) -> usize {
        self.pairs.len() + self.series.len()
    }
}

//! Chaos suite for `affinity coord`: the real binary, real TCP, real
//! `kill -9`. Every scenario asserts the distributed contract —
//! answers are bit-identical to a monolithic server while the fleet is
//! healthy, degradation is *typed* (`DEGRADED` / `UNAVAILABLE`, never
//! a silent subset) while a shard is actually down, the supervisor
//! re-heals a killed shard back to tick-parity without a coordinator
//! restart, and the conservation ledger balances at every quiescent
//! point.
//!
//! The scenarios:
//! - monolithic mirror: a coordinator over K ∈ {2, 4} real shard
//!   servers answers the statement battery byte-identically to a
//!   single `affinity serve` over the same deterministic model;
//! - `kill -9` a shard mid-run: immediate queries come back typed
//!   (`DEGRADED` with the dead shard listed, `UNAVAILABLE` for
//!   cross-shard MEC), the supervisor respawns with `--resume`, and
//!   post-heal answers are byte-identical to pre-kill;
//! - snapshot corruption under the respawn: `--resume` cannot come up,
//!   the supervisor wipes and respawns fresh, deterministic replay
//!   re-ticks to parity, and answers are still byte-identical;
//! - strict mode + a stalled (not dead) shard: deadlines and the
//!   circuit breaker turn the stall into typed `UNAVAILABLE`, the
//!   breaker re-closes after the stall clears, and an oversized
//!   request line gets a typed `PROTO` rejection without killing the
//!   connection.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_affinity");

/// Model shape shared by every scenario; generation is deterministic,
/// so any two processes started from these flags hold the same model.
const SERIES: &str = "12";
const SAMPLES: &str = "96";
const WINDOW: &str = "32";

/// A running `affinity coord` child: its listen address, the pid and
/// address of each shard server it spawned, and a live log of every
/// `COORD <event>` line the supervisor prints.
struct CoordProc {
    child: Child,
    addr: String,
    shard_pids: Vec<u32>,
    shard_addrs: Vec<String>,
    events: Arc<Mutex<Vec<String>>>,
}

impl CoordProc {
    /// Spawn `affinity coord --port 0 <extra>` and parse the startup
    /// block: one `COORD shard=<i> pid=<p> addr=<a>` line per shard,
    /// then `COORD addr=<a> ...`. Later stdout lines (supervisor
    /// events, the final ledger) keep draining into `events`.
    fn spawn(shards: usize, extra: &[&str]) -> CoordProc {
        let mut child = Command::new(BIN)
            .arg("coord")
            .args(["--shards", &shards.to_string()])
            .args(["--series", SERIES, "--samples", SAMPLES, "--window", WINDOW])
            .args(["--workers", "2", "--port", "0"])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn affinity coord");
        let mut stdout = BufReader::new(child.stdout.take().expect("child stdout"));
        let mut shard_pids = Vec::new();
        let mut shard_addrs = Vec::new();
        let mut line = String::new();
        let addr = loop {
            line.clear();
            let n = stdout.read_line(&mut line).expect("read startup line");
            assert!(n > 0, "coord exited before printing its COORD addr line");
            let trimmed = line.trim();
            if let Some(rest) = trimmed.strip_prefix("COORD shard=") {
                let fields: HashMap<&str, &str> = rest
                    .split_whitespace()
                    .filter_map(|kv| kv.split_once('='))
                    .collect();
                shard_pids.push(fields["pid"].parse().expect("shard pid"));
                // The shard index itself is implicit in arrival order.
                shard_addrs.push(fields["addr"].to_string());
            } else if let Some(rest) = trimmed.strip_prefix("COORD addr=") {
                break rest
                    .split_whitespace()
                    .next()
                    .expect("addr field")
                    .to_string();
            }
        };
        assert_eq!(shard_pids.len(), shards, "one pid line per shard");
        let events = Arc::new(Mutex::new(Vec::new()));
        {
            let events = Arc::clone(&events);
            std::thread::spawn(move || {
                let mut line = String::new();
                loop {
                    line.clear();
                    match stdout.read_line(&mut line) {
                        Ok(0) | Err(_) => break,
                        Ok(_) => {
                            if let Some(rest) = line.trim().strip_prefix("COORD ") {
                                events.lock().unwrap().push(rest.to_string());
                            }
                        }
                    }
                }
            });
        }
        CoordProc {
            child,
            addr,
            shard_pids,
            shard_addrs,
            events,
        }
    }

    fn connect(&self) -> Client {
        Client::connect(&self.addr)
    }

    /// `kill -9` one shard server child (not the coordinator).
    fn kill9_shard(&self, shard: usize) {
        let status = Command::new("kill")
            .args(["-9", &self.shard_pids[shard].to_string()])
            .status()
            .expect("send SIGKILL to shard");
        assert!(status.success(), "kill -9 shard {shard} failed");
    }

    /// Wait until an event line containing `needle` has been printed.
    fn wait_for_event(&self, needle: &str, timeout: Duration) {
        let deadline = Instant::now() + timeout;
        loop {
            if self
                .events
                .lock()
                .unwrap()
                .iter()
                .any(|e| e.contains(needle))
            {
                return;
            }
            assert!(
                Instant::now() < deadline,
                "no '{needle}' event within {timeout:?}; saw {:?}",
                self.events.lock().unwrap()
            );
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    /// Poll `.health` until every shard reports `closed` with no
    /// `:resync` tag — the supervisor's proof that the fleet is whole.
    fn wait_healthy(&self, timeout: Duration) {
        let mut admin = self.connect();
        let deadline = Instant::now() + timeout;
        loop {
            let health = admin.control(".health");
            let whole = health
                .split_whitespace()
                .filter(|f| f.starts_with('s'))
                .all(|f| f.ends_with("=closed"));
            if whole {
                return;
            }
            assert!(
                Instant::now() < deadline,
                "fleet never healed within {timeout:?}: {health}"
            );
            std::thread::sleep(Duration::from_millis(100));
        }
    }

    /// Graceful shutdown; returns the final `COORD done` ledger.
    fn shutdown(mut self) -> HashMap<String, u64> {
        let mut admin = self.connect();
        admin.control(".shutdown");
        let status = self.child.wait().expect("wait for coord");
        assert!(status.success(), "coord exited non-zero");
        // The event drain thread sees EOF once the child exits.
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            if let Some(done) = self
                .events
                .lock()
                .unwrap()
                .iter()
                .find_map(|e| e.strip_prefix("done ").map(parse_ledger))
            {
                return done;
            }
            assert!(Instant::now() < deadline, "no COORD done ledger printed");
            std::thread::sleep(Duration::from_millis(50));
        }
    }
}

/// One TCP client speaking the line protocol (coordinator or shard
/// server — both use `<id> <stmt>` requests and `.cmd` controls).
struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

/// One parsed response.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Response {
    /// `OK <id>` + body (bit-exact, newline-joined).
    Ok(String, String),
    /// `DEGRADED <id> <missing-shards-csv>` + partial body.
    Degraded(String, Vec<usize>, String),
    /// `ERR <id> <CODE>`.
    Err(String, String),
    /// `+...` / `-...` control reply.
    Control(String),
}

impl Client {
    fn connect(addr: &str) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(120)))
            .unwrap();
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Client { stream, reader }
    }

    fn send(&mut self, line: &str) {
        self.stream
            .write_all(format!("{line}\n").as_bytes())
            .expect("send request");
    }

    fn read_body(&mut self, count: usize) -> String {
        let mut body = String::new();
        for _ in 0..count {
            let mut b = String::new();
            assert!(
                self.reader.read_line(&mut b).expect("read body line") > 0,
                "connection closed mid-body"
            );
            body.push_str(&b);
        }
        body
    }

    fn read_response(&mut self) -> Response {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("read response");
        assert!(n > 0, "connection closed mid-response");
        let line = line.trim_end().to_string();
        if line.starts_with('+') || line.starts_with('-') {
            return Response::Control(line);
        }
        let toks: Vec<&str> = line.splitn(4, ' ').collect();
        match toks.as_slice() {
            ["OK", id, count] => {
                let count: usize = count.parse().expect("OK body line count");
                Response::Ok(id.to_string(), self.read_body(count))
            }
            ["DEGRADED", id, missing, count] => {
                let count: usize = count.parse().expect("DEGRADED body line count");
                let missing = missing
                    .split(',')
                    .map(|s| s.parse().expect("missing shard index"))
                    .collect();
                Response::Degraded(id.to_string(), missing, self.read_body(count))
            }
            ["ERR", id, rest] | ["ERR", id, rest, _] => {
                let code = rest.split(' ').next().unwrap_or("").to_string();
                Response::Err(id.to_string(), code)
            }
            other => panic!("malformed response line {line:?} ({other:?})"),
        }
    }

    fn query(&mut self, id: &str, stmt: &str) -> Response {
        self.send(&format!("{id} {stmt}"));
        self.read_response()
    }

    fn control(&mut self, cmd: &str) -> String {
        self.send(cmd);
        match self.read_response() {
            Response::Control(s) => {
                assert!(s.starts_with('+'), "control {cmd:?} failed: {s}");
                s
            }
            other => panic!("control {cmd:?} got non-control response {other:?}"),
        }
    }
}

fn parse_ledger(s: &str) -> HashMap<String, u64> {
    s.split_whitespace()
        .filter_map(|kv| kv.split_once('='))
        .filter_map(|(k, v)| v.parse().ok().map(|v| (k.to_string(), v)))
        .collect()
}

/// The two conservation identities every quiescent coordinator ledger
/// must satisfy: the attempt split covers every routed attempt, and
/// the statement split covers every executed statement.
fn assert_coord_ledger_balances(ledger: &HashMap<String, u64>) {
    let g = |k: &str| {
        ledger
            .get(k)
            .copied()
            .unwrap_or_else(|| panic!("ledger missing {k}: {ledger:?}"))
    };
    assert_eq!(
        g("routed"),
        g("merged") + g("retried") + g("degraded") + g("failed"),
        "attempt conservation violated: {ledger:?}"
    );
    assert_eq!(
        g("stmts"),
        g("ok") + g("degraded_answers") + g("unavailable") + g("errors"),
        "statement conservation violated: {ledger:?}"
    );
}

fn coord_stats(admin: &mut Client) -> HashMap<String, u64> {
    let stats = admin.control(".stats");
    parse_ledger(stats.strip_prefix("+stats ").expect("stats prefix"))
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "affinity-coord-chaos-{name}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Statements whose rendered output is transport- and
/// topology-independent (EXPLAIN plans mention the shard layout, so
/// they only appear in the same-topology batteries below).
const MIRROR_SET: &[&str] = &[
    "MET correlation > 0.5",
    "MET mean < 0.2",
    "MET cosine > 0.8",
    "MER covariance BETWEEN -0.25 AND 0.75",
    "MER median BETWEEN -1.0 AND 1.0",
    "MEC correlation OF S0, S5, S11",
    "MEC mean OF S3",
    "MET correlation > 2.0",
    "MER mean BETWEEN -1e9 AND 1e9",
    "MEC mean OF S99",
    "NOT A STATEMENT",
];

/// The fuller battery for same-process pre/post comparisons, where
/// EXPLAIN output (which names the shard topology) must also be
/// stable across a failover.
fn battery() -> Vec<String> {
    let mut stmts: Vec<String> = MIRROR_SET.iter().map(|s| s.to_string()).collect();
    for m in ["correlation", "covariance", "mean", "dice"] {
        stmts.push(format!("EXPLAIN MET {m} > 0.5"));
    }
    stmts.push("EXPLAIN MEC mean OF S0, S5, S11".into());
    stmts
}

fn run_battery(client: &mut Client, tag: &str, stmts: &[String]) -> Vec<Response> {
    stmts
        .iter()
        .enumerate()
        .map(|(i, s)| client.query(&format!("{tag}{i}"), s))
        .collect()
}

/// A coordinator over K real shard servers answers byte-identically
/// to one monolithic `affinity serve` over the same model, for
/// K ∈ {2, 4}, healthy and after identical deterministic ticks.
#[test]
fn coordinator_matches_monolithic_server_over_sockets() {
    // Monolithic mirror.
    let mut mono = Command::new(BIN)
        .arg("serve")
        .args(["--series", SERIES, "--samples", SAMPLES, "--window", WINDOW])
        .args(["--workers", "2", "--port", "0"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn affinity serve");
    let mono_addr = {
        let mut stdout = BufReader::new(mono.stdout.take().expect("stdout"));
        let mut line = String::new();
        loop {
            line.clear();
            assert!(stdout.read_line(&mut line).expect("read") > 0, "serve died");
            if let Some(rest) = line.trim().strip_prefix("SERVE addr=") {
                break rest.split_whitespace().next().unwrap().to_string();
            }
        }
    };
    let mut mono_client = Client::connect(&mono_addr);
    mono_client.control(".tick 20");
    let expected: Vec<Response> = MIRROR_SET
        .iter()
        .enumerate()
        .map(|(i, s)| mono_client.query(&format!("q{i}"), s))
        .collect();

    for shards in [2usize, 4] {
        let coord = CoordProc::spawn(shards, &[]);
        let mut client = coord.connect();
        client.control(".tick 20");
        for (i, stmt) in MIRROR_SET.iter().enumerate() {
            let got = client.query(&format!("q{i}"), stmt);
            assert_eq!(
                got, expected[i],
                "K={shards} diverged from monolithic on {stmt:?}"
            );
        }
        let mut admin = coord.connect();
        assert_coord_ledger_balances(&coord_stats(&mut admin));
        drop(admin);
        drop(client);
        let done = coord.shutdown();
        assert_coord_ledger_balances(&done);
    }

    let _ = mono.kill();
    let _ = mono.wait();
}

/// `kill -9` one shard: queries degrade *typed* while it is down
/// (missing shard listed on partial answers, `UNAVAILABLE` for a
/// cross-shard matrix), the supervisor respawns it with `--resume`,
/// and once `.health` reports the fleet whole the full battery —
/// EXPLAIN plans included — is byte-identical to pre-kill, without a
/// coordinator restart.
#[test]
fn kill9_failover_heals_to_bit_identical_answers() {
    let dir = temp_dir("kill9");
    let coord = CoordProc::spawn(2, &["--persist-root", dir.to_str().unwrap()]);
    let mut client = coord.connect();
    client.control(".tick 20");

    let stmts = battery();
    let before = run_battery(&mut client, "pre", &stmts);
    for r in &before {
        assert!(
            matches!(r, Response::Ok(..) | Response::Err(..)),
            "healthy fleet answered degraded: {r:?}"
        );
    }

    coord.kill9_shard(0);

    // Cross-shard matrix with a hole is wrong, not partial: typed
    // UNAVAILABLE. S0 lives on shard 0, S11 on shard 1.
    match client.query("mec-down", "MEC correlation OF S0, S11") {
        Response::Err(_, code) => assert_eq!(code, "UNAVAILABLE"),
        other => panic!("cross-shard MEC with a dead shard answered {other:?}"),
    }
    // Pair queries degrade and say exactly which shard is missing.
    match client.query("met-down", "MET correlation > 0.5") {
        Response::Degraded(_, missing, _) => {
            assert_eq!(missing, vec![0], "missing shards must name the dead one");
        }
        // The only acceptable alternative is a full answer after an
        // improbably fast heal — which must then be bit-identical.
        Response::Ok(_, body) => match &before[0] {
            Response::Ok(_, expected) => assert_eq!(&body, expected, "silent partial answer"),
            other => panic!("battery[0] changed shape: {other:?}"),
        },
        other => panic!("query against dead shard answered {other:?}"),
    }

    coord.wait_for_event("respawn shard=0", Duration::from_secs(120));
    coord.wait_for_event("heal shard=0", Duration::from_secs(120));
    coord.wait_healthy(Duration::from_secs(120));

    let after = run_battery(&mut client, "pre", &stmts);
    assert_eq!(before, after, "healed fleet diverged from pre-kill answers");

    let mut admin = coord.connect();
    assert_coord_ledger_balances(&coord_stats(&mut admin));
    drop(admin);
    drop(client);
    let done = coord.shutdown();
    assert_coord_ledger_balances(&done);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Corrupt the killed shard's snapshot directory so `--resume` cannot
/// come up: the supervisor must wipe, respawn fresh, re-tick the
/// deterministic replay to parity, and the healed fleet must still
/// answer byte-identically — corruption costs time, never answers.
#[test]
fn snapshot_corruption_forces_wipe_and_fresh_reheal() {
    let dir = temp_dir("corrupt");
    let coord = CoordProc::spawn(2, &["--persist-root", dir.to_str().unwrap()]);
    let mut client = coord.connect();
    client.control(".tick 10");

    let stmts = battery();
    let before = run_battery(&mut client, "pre", &stmts);

    coord.kill9_shard(1);
    // Trash every file the dead shard persisted before the supervisor
    // notices (it needs 3 failed pings at 200ms cadence).
    let shard_dir = dir.join("shard1");
    let mut corrupted = 0usize;
    if let Ok(entries) = std::fs::read_dir(&shard_dir) {
        for entry in entries.flatten() {
            if entry.file_type().map(|t| t.is_file()).unwrap_or(false) {
                std::fs::write(entry.path(), b"\xDE\xAD\xBE\xEFgarbage").expect("corrupt file");
                corrupted += 1;
            }
        }
    }
    assert!(
        corrupted > 0,
        "no snapshot files found to corrupt in {shard_dir:?}"
    );

    coord.wait_for_event("wipe shard=1", Duration::from_secs(120));
    coord.wait_for_event("heal shard=1", Duration::from_secs(180));
    coord.wait_healthy(Duration::from_secs(120));

    let after = run_battery(&mut client, "pre", &stmts);
    assert_eq!(
        before, after,
        "fresh-respawned shard diverged from pre-corruption answers"
    );

    drop(client);
    let done = coord.shutdown();
    assert_coord_ledger_balances(&done);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A stalled-but-alive shard (fault-injected slow workers) exhausts
/// the per-shard deadline and retry budget; in `--strict` mode that
/// must surface as typed `UNAVAILABLE`, and the circuit breaker must
/// re-close once the stall clears. Also: an oversized request line is
/// rejected with a typed `PROTO` error and the connection survives.
#[test]
fn strict_stall_yields_typed_unavailable_then_recovers() {
    let coord = CoordProc::spawn(
        2,
        &[
            "--strict",
            "--chaos",
            "--timeout-ms",
            "400",
            "--retries",
            "2",
        ],
    );
    let mut client = coord.connect();

    let healthy = client.query("h0", "MET correlation > 0.5");
    assert!(matches!(healthy, Response::Ok(..)), "baseline: {healthy:?}");

    // Stall shard 0's workers well past the coordinator's deadline.
    // Controls are answered inline, so the supervisor's pings still
    // succeed: this is a stall, not a death — breaker territory.
    let mut shard0 = Client::connect(&coord.shard_addrs[0]);
    shard0.control(".fault slow-worker 3000");

    match client.query("s0", "MET correlation > 0.5") {
        Response::Err(_, code) => assert_eq!(code, "UNAVAILABLE"),
        other => panic!("strict coordinator with a stalled shard answered {other:?}"),
    }

    shard0.control(".fault slow-worker 0");

    // The breaker re-probes after its cooldown; poll until the answer
    // is whole again and identical to the healthy baseline.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        match client.query("r0", "MET correlation > 0.5") {
            Response::Ok(_, body) => {
                match &healthy {
                    Response::Ok(_, expected) => assert_eq!(&body, expected),
                    _ => unreachable!(),
                }
                break;
            }
            Response::Err(_, code) => assert_eq!(code, "UNAVAILABLE", "untyped during recovery"),
            other => panic!("strict mode leaked a partial answer: {other:?}"),
        }
        assert!(
            Instant::now() < deadline,
            "breaker never re-closed after the stall cleared"
        );
        std::thread::sleep(Duration::from_millis(100));
    }

    // Oversized line: typed PROTO rejection, connection still usable.
    let huge = format!("big {}", "x".repeat(80 * 1024));
    client.send(&huge);
    match client.read_response() {
        Response::Err(_, code) => assert_eq!(code, "PROTO"),
        other => panic!("oversized line answered {other:?}"),
    }
    let again = client.query("after-proto", "MET correlation > 0.5");
    assert!(
        matches!(again, Response::Ok(..)),
        "connection unusable after PROTO rejection: {again:?}"
    );

    let mut admin = coord.connect();
    assert_coord_ledger_balances(&coord_stats(&mut admin));
    drop(admin);
    drop(client);
    let done = coord.shutdown();
    assert_coord_ledger_balances(&done);
}

//! Crash matrix: scripted power cuts, lying media and bit rot at every
//! stage of the persistence commit protocol. The correctness claim
//! under test (ARCHITECTURE.md, "Crash-safe persistence") is:
//!
//! > any prefix of the commit protocol leaves a state from which
//! > recovery produces a consistent model — the last one proven
//! > durable — or a clean typed error; never a panic, never silent
//! > corruption.
//!
//! Ten injection points:
//!
//! | # | fault                                   | durable outcome            |
//! |---|-----------------------------------------|----------------------------|
//! | 1 | power cut mid-snapshot write            | previous snapshot + journal|
//! | 2 | crash after staged write, before fsync  | previous snapshot + journal|
//! | 3 | crash after fsync, before rename        | previous snapshot + journal|
//! | 4 | crash after rename, before journal reset| new snapshot, stale journal|
//! | 5 | lying bit-flip inside the snapshot      | typed corruption error     |
//! | 6 | power cut mid-journal record            | valid journal prefix       |
//! | 7 | lying short write of a journal record   | valid journal prefix       |
//! | 8 | lying bit-flip inside a journal record  | valid journal prefix       |
//! | 9 | journal file deleted between runs       | snapshot alone, fresh journal|
//! |10 | snapshot file missing                   | typed I/O error            |
//! |11 | SIGTERM during `affinity snapshot`      | dir absent or fully valid  |

use affinity::core::measures::PairwiseMeasure;
use affinity::scape::ThresholdOp;
use affinity::storage::{CommitFault, FailMode, PersistError};
use affinity::stream::{
    open_model, Model, StreamError, StreamingConfig, StreamingEngine, JOURNAL_FILE, SNAPSHOT_FILE,
};
use std::fs;
use std::path::PathBuf;

const N: usize = 6;
const WINDOW: usize = 16;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "affinity-crash-matrix-{}-{tag}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn tick(t: u64) -> Vec<f64> {
    (0..N)
        .map(|v| {
            let base = ((t as f64) * 0.17 + v as f64).sin();
            base * (1.0 + v as f64 * 0.3) + 20.0 + ((t * 37 + v as u64 * 11) % 17) as f64 * 0.01
        })
        .collect()
}

fn cfg() -> StreamingConfig {
    let mut c = StreamingConfig::new(WINDOW);
    c.refresh_every = 4;
    if let Some(d) = c.delta.as_mut() {
        d.drift_tolerance = 1e-9; // every refresh drifts ⇒ journaled deltas
        d.max_drift_fraction = 1.0;
        d.full_every = 1000; // full rebuilds only when the test asks
    }
    c
}

/// Warm engine, armed persistence, a few journaled delta refreshes on
/// disk. Returns the engine and the tick counter.
fn armed_engine(dir: &PathBuf) -> (StreamingEngine, u64) {
    let mut e = StreamingEngine::new(N, cfg());
    let mut t = 0;
    for _ in 0..WINDOW {
        t += 1;
        e.push(&tick(t)).unwrap();
    }
    e.persist_to(dir).unwrap();
    for _ in 0..8 {
        t += 1;
        e.push(&tick(t)).unwrap();
    }
    assert!(e.delta_refreshes() >= 2, "scenario needs journaled deltas");
    (e, t)
}

fn assert_models_bit_equal(a: &Model, b: &Model, what: &str) {
    assert_eq!(
        a.affine().to_bytes(),
        b.affine().to_bytes(),
        "{what}: affine diverges"
    );
    assert_eq!(
        a.index().to_bytes(),
        b.index().to_bytes(),
        "{what}: index diverges"
    );
    assert_eq!(a.built_at, b.built_at, "{what}: built_at diverges");
}

fn assert_queries_work(m: &Model) {
    // The recovered model must be usable, not just decodable.
    m.index()
        .threshold_pairs(PairwiseMeasure::Correlation, ThresholdOp::Greater, 0.5)
        .unwrap();
}

/// Faults 1–3: the snapshot publish never happened, so recovery lands
/// on the *previous* snapshot plus every journaled delta — exactly the
/// durable state captured before the crash.
fn checkpoint_fault_recovers_previous_state(fault: CommitFault, tag: &str) {
    let dir = tmp_dir(tag);
    let (mut live, _t) = armed_engine(&dir);
    // The durable state the crash must roll back to.
    let (expect, _) = open_model(&dir).unwrap();

    live.inject_commit_fault(fault);
    match live.refresh() {
        Err(StreamError::Persist(PersistError::Injected)) => {}
        other => panic!("{tag}: expected injected fault, got {other:?}"),
    }
    drop(live); // crash

    let (resumed, report) = StreamingEngine::resume(cfg(), &dir).unwrap();
    assert_eq!(report.generation, 1, "{tag}");
    assert!(!report.stale_journal_discarded, "{tag}");
    let model = resumed.model().unwrap();
    assert_eq!(model.affine().to_bytes(), expect.affine.to_bytes(), "{tag}");
    assert_eq!(model.index().to_bytes(), expect.index.to_bytes(), "{tag}");
    assert_queries_work(model);
    // The directory is fully healed: a second recovery is clean.
    let (_again, report2) = StreamingEngine::resume(cfg(), &dir).unwrap();
    assert_eq!(report2.torn_bytes_dropped, 0, "{tag}");
    assert!(!report2.staged_file_removed, "{tag}");
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn fault_1_power_cut_mid_snapshot_write() {
    checkpoint_fault_recovers_previous_state(
        CommitFault::DuringWrite(FailMode::CutAt(64)),
        "cut-mid-write",
    );
}

#[test]
fn fault_2_crash_before_staged_fsync() {
    checkpoint_fault_recovers_previous_state(CommitFault::BeforeSync, "before-sync");
}

#[test]
fn fault_3_crash_before_rename() {
    checkpoint_fault_recovers_previous_state(CommitFault::BeforeRename, "before-rename");
}

#[test]
fn fault_4_crash_after_rename_discards_stale_journal() {
    let dir = tmp_dir("after-rename");
    let (mut live, _t) = armed_engine(&dir);
    live.inject_commit_fault(CommitFault::AfterRename);
    match live.refresh() {
        Err(StreamError::Persist(PersistError::Injected)) => {}
        other => panic!("expected injected fault, got {other:?}"),
    }
    // The rebuild itself succeeded in memory; the new snapshot was
    // published but the journal never rebound.
    let expect_affine = live.model().unwrap().affine().to_bytes();
    let expect_index = live.model().unwrap().index().to_bytes();
    drop(live); // crash

    let (resumed, report) = StreamingEngine::resume(cfg(), &dir).unwrap();
    assert_eq!(report.generation, 2);
    assert!(
        report.stale_journal_discarded,
        "old-id journal must be detected"
    );
    assert_eq!(report.replayed_records, 0);
    let model = resumed.model().unwrap();
    assert_eq!(model.affine().to_bytes(), expect_affine);
    assert_eq!(model.index().to_bytes(), expect_index);
    assert_queries_work(model);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn fault_5_lying_bit_flip_in_snapshot_is_a_typed_error() {
    let dir = tmp_dir("snap-bit-rot");
    let (mut live, _t) = armed_engine(&dir);
    // Flip a bit deep in the payload; the media acknowledges the write.
    live.inject_commit_fault(CommitFault::DuringWrite(FailMode::FlipBitAt {
        offset: 200,
        bit: 3,
    }));
    live.refresh().expect("lying media reports success");
    drop(live); // crash

    // Never silent: both recovery paths refuse the damaged snapshot
    // with a typed error, no panic.
    for result in [
        StreamingEngine::resume(cfg(), &dir).map(|_| ()),
        open_model(&dir).map(|_| ()),
    ] {
        match result {
            Err(StreamError::Persist(
                PersistError::ChecksumMismatch(_) | PersistError::Corrupt(_),
            )) => {}
            other => panic!("expected corruption error, got {other:?}"),
        }
    }
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn fault_6_power_cut_mid_journal_record() {
    let dir = tmp_dir("journal-cut");
    let (mut live, _t) = armed_engine(&dir);
    let good = live.delta_refreshes();
    let (expect, _) = open_model(&dir).unwrap();

    live.inject_journal_fault(FailMode::CutAt(11));
    let drifted: Vec<usize> = (0..N).collect();
    match live.refresh_delta(&drifted) {
        Err(StreamError::Persist(PersistError::Injected)) => {}
        other => panic!("expected injected fault, got {other:?}"),
    }
    drop(live); // crash

    let (resumed, report) = StreamingEngine::resume(cfg(), &dir).unwrap();
    assert_eq!(report.replayed_records as u64, good);
    assert_eq!(report.torn_bytes_dropped, 11);
    assert_eq!(
        resumed.model().unwrap().affine().to_bytes(),
        expect.affine.to_bytes(),
        "recovery lands on the durable prefix"
    );
    assert_queries_work(resumed.model().unwrap());
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn fault_7_lying_short_journal_write() {
    let dir = tmp_dir("journal-short");
    let (mut live, _t) = armed_engine(&dir);
    let good = live.delta_refreshes();

    // The short write is acknowledged, so the engine keeps running and
    // even appends more records — all after the torn one are garbage.
    live.inject_journal_fault(FailMode::ShortAt(13));
    let drifted: Vec<usize> = (0..N).collect();
    live.refresh_delta(&drifted)
        .expect("lying media reports success");
    live.refresh_delta(&drifted)
        .expect("subsequent appends succeed");
    drop(live); // crash

    let (resumed, report) = StreamingEngine::resume(cfg(), &dir).unwrap();
    assert_eq!(
        report.replayed_records as u64, good,
        "replay must stop at the torn record"
    );
    assert!(report.torn_bytes_dropped > 0);
    assert_queries_work(resumed.model().unwrap());
    // Truncation healed the journal: second recovery is clean and equal.
    let (resumed2, report2) = StreamingEngine::resume(cfg(), &dir).unwrap();
    assert_eq!(report2.torn_bytes_dropped, 0);
    assert_models_bit_equal(
        resumed.model().unwrap(),
        resumed2.model().unwrap(),
        "short-write recovery",
    );
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn fault_8_lying_bit_flip_in_journal_record() {
    let dir = tmp_dir("journal-bit-rot");
    let (mut live, _t) = armed_engine(&dir);
    let good = live.delta_refreshes();

    // Flip one bit inside the record payload (offset past the 8-byte
    // len+crc framing); the append is acknowledged.
    live.inject_journal_fault(FailMode::FlipBitAt { offset: 20, bit: 5 });
    let drifted: Vec<usize> = (0..N).collect();
    live.refresh_delta(&drifted)
        .expect("lying media reports success");
    drop(live); // crash

    let (resumed, report) = StreamingEngine::resume(cfg(), &dir).unwrap();
    assert_eq!(
        report.replayed_records as u64, good,
        "CRC must reject the rotten record"
    );
    assert!(report.torn_bytes_dropped > 0);
    assert_queries_work(resumed.model().unwrap());
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn fault_9_journal_deleted_between_runs() {
    let dir = tmp_dir("journal-gone");
    let (live, _t) = armed_engine(&dir);
    drop(live);
    fs::remove_file(dir.join(JOURNAL_FILE)).unwrap();

    let (resumed, report) = StreamingEngine::resume(cfg(), &dir).unwrap();
    assert!(report.journal_reset, "missing journal must be reported");
    assert_eq!(report.replayed_records, 0);
    assert_queries_work(resumed.model().unwrap());
    // Resume recreated the journal bound to the snapshot.
    assert!(dir.join(JOURNAL_FILE).exists());
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn fault_10_missing_snapshot_is_a_typed_error() {
    let dir = tmp_dir("snap-gone");
    let (live, _t) = armed_engine(&dir);
    drop(live);
    fs::remove_file(dir.join(SNAPSHOT_FILE)).unwrap();

    for result in [
        StreamingEngine::resume(cfg(), &dir).map(|_| ()),
        open_model(&dir).map(|_| ()),
    ] {
        match result {
            Err(StreamError::Persist(PersistError::Io(_))) => {}
            other => panic!("expected typed I/O error, got {other:?}"),
        }
    }
    fs::remove_dir_all(&dir).unwrap();
}

/// Fault 11: SIGTERM lands while `affinity snapshot` (the real binary)
/// is building. The CLI traps the signal and only quits at a stage
/// boundary, so whichever way the race goes the directory is never
/// torn: either the commit never started (dir absent) or it ran to
/// completion (dir opens cleanly, zero healing needed).
#[test]
fn fault_11_sigterm_during_cli_snapshot_is_never_torn() {
    use affinity::data::generator::{sensor_dataset, SensorConfig};
    use affinity::storage::MatrixStore;
    use std::process::Command;

    let work = tmp_dir("sigterm-snapshot");
    let store_path = work.join("input.afn");
    let snap_dir = work.join("snap");
    // Big enough that the build comfortably outlives the signal delay.
    let data = sensor_dataset(&SensorConfig::reduced(40, 1500));
    MatrixStore::create(&store_path, &data).unwrap();

    let mut child = Command::new(env!("CARGO_BIN_EXE_affinity"))
        .args([
            "snapshot",
            store_path.to_str().unwrap(),
            snap_dir.to_str().unwrap(),
        ])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn affinity snapshot");
    std::thread::sleep(std::time::Duration::from_millis(300));
    let _ = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("send SIGTERM");
    let status = child.wait().expect("wait for snapshot child");

    // Trapped, never default-killed: exit 0 (commit won the race) or
    // exit 1 ("interrupted by signal"), but never signal-death.
    assert!(
        status.code().is_some(),
        "snapshot died of the raw signal instead of trapping it"
    );
    if snap_dir.exists() {
        // Whatever is on disk must open cleanly with nothing to heal.
        let (model, report) = open_model(&snap_dir).expect("committed snapshot must be valid");
        assert_eq!(report.torn_bytes_dropped, 0);
        assert!(!report.stale_journal_discarded);
        assert!(!report.staged_file_removed);
        assert!(model.affine.series_count() == 40);
    } else {
        assert_eq!(
            status.code(),
            Some(1),
            "no directory means the build was interrupted before commit"
        );
    }
    fs::remove_dir_all(&work).unwrap();
}

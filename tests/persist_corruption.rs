//! Corruption fuzz over the persisted model files: flip a bit in, or
//! truncate at, positions covering *every region* of the snapshot and
//! the journal, then drive both recovery entry points. The contract:
//!
//! * **Snapshot damage** → a typed error (`BadMagic`, checksum
//!   mismatch, `Corrupt`, decode failure) — or, only for flips the
//!   format genuinely does not interpret, a successful open. Never a
//!   panic, never an unbounded allocation.
//! * **Journal damage** → recovery still succeeds on the valid prefix
//!   (possibly zero records, possibly a discarded journal); only I/O
//!   level failures may surface as errors. Never a panic.
//!
//! Positions are strided so every region (magic, header, section
//! table, each section payload, record framing, record payloads, torn
//! tail) is hit while the suite stays fast.

use affinity::stream::{open_model, StreamingConfig, StreamingEngine, JOURNAL_FILE, SNAPSHOT_FILE};
use std::fs;
use std::path::{Path, PathBuf};

const N: usize = 6;
const WINDOW: usize = 16;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "affinity-persist-corruption-{}-{tag}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn tick(t: u64) -> Vec<f64> {
    (0..N)
        .map(|v| ((t as f64) * 0.23 + v as f64).sin() * (1.0 + v as f64 * 0.4) + 30.0)
        .collect()
}

fn cfg() -> StreamingConfig {
    let mut c = StreamingConfig::new(WINDOW);
    c.refresh_every = 4;
    if let Some(d) = c.delta.as_mut() {
        d.drift_tolerance = 1e-9;
        d.max_drift_fraction = 1.0;
        d.full_every = 1000;
    }
    c
}

/// Persist a model with a few journaled refreshes; returns the dir.
fn persisted_dir(tag: &str) -> PathBuf {
    let dir = tmp_dir(tag);
    let mut e = StreamingEngine::new(N, cfg());
    let mut t = 0;
    for _ in 0..WINDOW {
        t += 1;
        e.push(&tick(t)).unwrap();
    }
    e.persist_to(&dir).unwrap();
    for _ in 0..8 {
        t += 1;
        e.push(&tick(t)).unwrap();
    }
    assert!(e.delta_refreshes() >= 2);
    dir
}

/// Dense positions in the first `head` bytes (headers, section table),
/// then strided through the rest so every section payload is covered.
fn positions(len: usize, head: usize, stride: usize) -> Vec<usize> {
    let mut p: Vec<usize> = (0..len.min(head)).collect();
    let mut i = head;
    while i < len {
        p.push(i);
        i += stride;
    }
    if len > 0 {
        p.push(len - 1);
    }
    p.dedup();
    p
}

fn write_variant(dir: &Path, file: &str, bytes: &[u8]) {
    fs::write(dir.join(file), bytes).unwrap();
}

#[test]
fn bit_flipped_snapshot_never_panics_and_never_lies() {
    let src = persisted_dir("snap-flip");
    let pristine_snap = fs::read(src.join(SNAPSHOT_FILE)).unwrap();
    let pristine_affine = open_model(&src).unwrap().0.affine.to_bytes();
    let work = tmp_dir("snap-flip-work");
    fs::copy(src.join(JOURNAL_FILE), work.join(JOURNAL_FILE)).unwrap();

    let mut opened_ok = 0usize;
    for pos in positions(pristine_snap.len(), 192, 97) {
        for bit in [0u8, 7] {
            let mut damaged = pristine_snap.clone();
            damaged[pos] ^= 1 << bit;
            write_variant(&work, SNAPSHOT_FILE, &damaged);
            // Every flip must be *detected*: the snapshot body is fully
            // covered by CRCs, so an Ok open may only happen when the
            // flip was rolled back... which it never is. (Err is the
            // expected outcome — a typed rejection.)
            if let Ok((model, _)) = open_model(&work) {
                opened_ok += 1;
                assert_eq!(
                    model.affine.to_bytes(),
                    pristine_affine,
                    "byte {pos} bit {bit}: silent corruption"
                );
            }
            // Resume on the same damage must agree: error, not panic.
            let _ = StreamingEngine::resume(cfg(), &work);
        }
    }
    assert_eq!(opened_ok, 0, "CRC coverage must catch every snapshot flip");
    fs::remove_dir_all(&src).unwrap();
    fs::remove_dir_all(&work).unwrap();
}

#[test]
fn truncated_snapshot_never_panics() {
    let src = persisted_dir("snap-trunc");
    let pristine_snap = fs::read(src.join(SNAPSHOT_FILE)).unwrap();
    let work = tmp_dir("snap-trunc-work");
    fs::copy(src.join(JOURNAL_FILE), work.join(JOURNAL_FILE)).unwrap();

    for cut in positions(pristine_snap.len(), 128, 131) {
        write_variant(&work, SNAPSHOT_FILE, &pristine_snap[..cut]);
        assert!(
            open_model(&work).is_err(),
            "cut at {cut}: a strict prefix must be rejected"
        );
        assert!(StreamingEngine::resume(cfg(), &work).is_err());
    }
    fs::remove_dir_all(&src).unwrap();
    fs::remove_dir_all(&work).unwrap();
}

#[test]
fn bit_flipped_journal_recovers_a_prefix() {
    let src = persisted_dir("journal-flip");
    let pristine_journal = fs::read(src.join(JOURNAL_FILE)).unwrap();
    let full_records = open_model(&src).unwrap().1.replayed_records;
    assert!(full_records >= 2);
    let work = tmp_dir("journal-flip-work");
    fs::copy(src.join(SNAPSHOT_FILE), work.join(SNAPSHOT_FILE)).unwrap();

    for pos in positions(pristine_journal.len(), 64, 29) {
        for bit in [0u8, 7] {
            let mut damaged = pristine_journal.clone();
            damaged[pos] ^= 1 << bit;
            write_variant(&work, JOURNAL_FILE, &damaged);
            // The snapshot is intact, so recovery must succeed — on a
            // possibly shorter (even empty, or discarded-as-stale)
            // journal prefix — and the recovered model must be usable.
            let (_, report) = open_model(&work).unwrap();
            assert!(
                report.replayed_records <= full_records,
                "byte {pos} bit {bit}: replay grew records"
            );
        }
    }
    fs::remove_dir_all(&src).unwrap();
    fs::remove_dir_all(&work).unwrap();
}

#[test]
fn truncated_journal_recovers_a_prefix() {
    let src = persisted_dir("journal-trunc");
    let pristine_journal = fs::read(src.join(JOURNAL_FILE)).unwrap();
    let full_records = open_model(&src).unwrap().1.replayed_records;
    let work = tmp_dir("journal-trunc-work");
    fs::copy(src.join(SNAPSHOT_FILE), work.join(SNAPSHOT_FILE)).unwrap();

    for cut in positions(pristine_journal.len(), 48, 23) {
        write_variant(&work, JOURNAL_FILE, &pristine_journal[..cut]);
        let (_, report) = open_model(&work).unwrap();
        assert!(report.replayed_records <= full_records, "cut at {cut}");
        // Resume additionally heals the file in place; afterwards a
        // second recovery reports no torn bytes.
        let (_, r1) = StreamingEngine::resume(cfg(), &work).unwrap();
        assert!(r1.replayed_records <= full_records);
        let (_, r2) = StreamingEngine::resume(cfg(), &work).unwrap();
        assert_eq!(r2.torn_bytes_dropped, 0, "cut at {cut}: not healed");
    }
    fs::remove_dir_all(&src).unwrap();
    fs::remove_dir_all(&work).unwrap();
}

#[test]
fn random_garbage_files_are_typed_errors() {
    let work = tmp_dir("garbage");
    // Deterministic pseudo-garbage at several sizes, both files.
    let mut state = 0x5eed_u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as u8
    };
    for size in [0usize, 1, 7, 19, 64, 256, 4096] {
        let garbage: Vec<u8> = (0..size).map(|_| next()).collect();
        write_variant(&work, SNAPSHOT_FILE, &garbage);
        write_variant(&work, JOURNAL_FILE, &garbage);
        assert!(open_model(&work).is_err(), "garbage snapshot of {size} B");
        assert!(StreamingEngine::resume(cfg(), &work).is_err());
    }
    fs::remove_dir_all(&work).unwrap();
}

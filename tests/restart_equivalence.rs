//! End-to-end restart equivalence: build a model, persist it, keep
//! streaming (journaled delta refreshes), kill the process (drop), and
//! resume. The recovered engine must answer MET, MER and QL statements
//! **bit-identically** to an engine that ran the same tick stream
//! uninterrupted — on both paper workloads (sensor and stock).
//!
//! This is the user-facing statement of the persistence contract: a
//! crash between refreshes is invisible in query answers.

use affinity::core::measures::PairwiseMeasure;
use affinity::data::generator::{sensor_dataset, stock_dataset, SensorConfig, StockConfig};
use affinity::data::DataMatrix;
use affinity::ql::Session;
use affinity::scape::ThresholdOp;
use affinity::shard::{shard_file, ShardedStreamingEngine};
use affinity::stream::{open_model, Model, StreamingConfig, StreamingEngine};
use std::fs;
use std::path::{Path, PathBuf};

const WINDOW: usize = 24;
const PERSIST_AT: usize = 40; // ticks before the snapshot
const TOTAL: usize = 64; // ticks in the whole run

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "affinity-restart-equivalence-{}-{tag}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn cfg() -> StreamingConfig {
    let mut c = StreamingConfig::new(WINDOW);
    c.refresh_every = 6;
    if let Some(d) = c.delta.as_mut() {
        d.drift_tolerance = 1e-9; // every refresh drifts ⇒ journaled deltas
        d.max_drift_fraction = 1.0;
        d.full_every = 1000; // keep the run on the journal
    }
    c
}

fn push_ticks(engine: &mut StreamingEngine, data: &DataMatrix, from: usize, to: usize) {
    let n = data.series_count();
    for t in from..to {
        let tick: Vec<f64> = (0..n).map(|v| data.series(v)[t]).collect();
        engine.push(&tick).unwrap();
    }
}

fn assert_met_mer_bit_equal(a: &Model, b: &Model) {
    for pm in PairwiseMeasure::ALL {
        let (ta, tb) = (
            a.index()
                .threshold_pairs(pm, ThresholdOp::Greater, 0.5)
                .unwrap(),
            b.index()
                .threshold_pairs(pm, ThresholdOp::Greater, 0.5)
                .unwrap(),
        );
        assert_eq!(ta, tb, "{pm:?}: MET answers diverge");
        let (ra, rb) = (
            a.index().range_pairs(pm, -2.0, 2.0).unwrap(),
            b.index().range_pairs(pm, -2.0, 2.0).unwrap(),
        );
        assert_eq!(ra, rb, "{pm:?}: MER answers diverge");
        // MEC whole-sweep values, compared bit-for-bit.
        let (va, vb) = (
            a.mec_engine().pairwise_all(pm).unwrap(),
            b.mec_engine().pairwise_all(pm).unwrap(),
        );
        assert_eq!(va.len(), vb.len());
        for (x, y) in va.iter().zip(&vb) {
            assert_eq!(x.to_bits(), y.to_bits(), "{pm:?}: MEC values diverge");
        }
    }
}

const STATEMENTS: &[&str] = &[
    "MET correlation > 0.6",
    "MER covariance BETWEEN 0 AND 10",
    "MEC mean OF S0, S1, S2",
    "MEC correlation OF S0, S1, S2, S3",
];

fn check_restart_equivalence(data: &DataMatrix, tag: &str) {
    let dir_crashed = tmp_dir(&format!("{tag}-crashed"));
    let dir_baseline = tmp_dir(&format!("{tag}-baseline"));

    // Uninterrupted run over the full stream.
    let mut uninterrupted = StreamingEngine::new(data.series_count(), cfg());
    push_ticks(&mut uninterrupted, data, 0, TOTAL);

    // Interrupted run: snapshot mid-stream, keep going, crash.
    let mut crashed = StreamingEngine::new(data.series_count(), cfg());
    push_ticks(&mut crashed, data, 0, PERSIST_AT);
    crashed.persist_to(&dir_crashed).unwrap();
    push_ticks(&mut crashed, data, PERSIST_AT, TOTAL);
    let journaled = crashed.delta_refreshes();
    drop(crashed); // kill -9

    let (resumed, report) = StreamingEngine::resume(cfg(), &dir_crashed).unwrap();
    assert!(
        report.replayed_records > 0,
        "{tag}: run must have journaled"
    );
    assert_eq!(resumed.delta_refreshes(), journaled, "{tag}");

    // Model-level equivalence, then answer-level equivalence.
    let (a, b) = (uninterrupted.model().unwrap(), resumed.model().unwrap());
    assert_eq!(a.affine().to_bytes(), b.affine().to_bytes(), "{tag}");
    assert_eq!(a.index().to_bytes(), b.index().to_bytes(), "{tag}");
    assert_met_mer_bit_equal(a, b);

    // QL equivalence: a session over the crash-recovered model answers
    // every statement with byte-identical output to a session over the
    // uninterrupted engine's model (persisted fresh, then opened).
    let mut uninterrupted = uninterrupted;
    uninterrupted.persist_to(&dir_baseline).unwrap();
    let (baseline_model, _) = open_model(&dir_baseline).unwrap();
    let (crashed_model, _) = open_model(&dir_crashed).unwrap();
    let baseline_session = Session::open_snapshot(&baseline_model, Vec::new()).unwrap();
    let crashed_session = Session::open_snapshot(&crashed_model, Vec::new()).unwrap();
    for stmt in STATEMENTS {
        let expected = format!("{}", baseline_session.execute(stmt).unwrap());
        let recovered = format!("{}", crashed_session.execute(stmt).unwrap());
        assert_eq!(
            expected, recovered,
            "{tag}: `{stmt}` diverges after restart"
        );
    }

    fs::remove_dir_all(&dir_crashed).unwrap();
    fs::remove_dir_all(&dir_baseline).unwrap();
}

/// The sharded engine journals nothing: crash loss is bounded by the
/// ticks since the last checkpoint, and those ticks can simply be
/// replayed. After replay the resumed engine must match the
/// never-crashed one **per shard, byte-for-byte** — and with one
/// shard's snapshot torn on disk, resume must heal exactly that shard
/// and still converge to the same bytes.
fn check_sharded_restart_equivalence(data: &DataMatrix, tag: &str, k: usize) {
    let dir = tmp_dir(&format!("{tag}-shard"));
    let dir_torn = tmp_dir(&format!("{tag}-shard-torn"));
    let n = data.series_count();

    let push_range = |engine: &mut ShardedStreamingEngine, from: usize, to: usize| {
        for t in from..to {
            let tick: Vec<f64> = (0..n).map(|v| data.series(v)[t]).collect();
            engine.push(&tick).unwrap();
        }
    };
    let assert_shards_byte_equal = |a: &ShardedStreamingEngine, b: &ShardedStreamingEngine| {
        let (ma, mb) = (a.model().unwrap(), b.model().unwrap());
        assert_eq!(ma.versions(), mb.versions(), "{tag}: shard versions");
        for (i, (sa, sb)) in ma.shards().iter().zip(mb.shards()).enumerate() {
            assert_eq!(
                sa.affine().to_bytes(),
                sb.affine().to_bytes(),
                "{tag}: shard {i} affine bytes"
            );
            assert_eq!(
                sa.index().to_bytes(),
                sb.index().to_bytes(),
                "{tag}: shard {i} index bytes"
            );
        }
    };

    // Uninterrupted sharded run over the full stream.
    let mut uninterrupted = ShardedStreamingEngine::new(n, k, cfg());
    push_range(&mut uninterrupted, 0, TOTAL);

    // Interrupted run: arm persistence mid-stream, keep going (each
    // refresh checkpoints), then crash.
    let mut crashed = ShardedStreamingEngine::new(n, k, cfg());
    push_range(&mut crashed, 0, PERSIST_AT);
    crashed.persist_to(&dir).unwrap();
    push_range(&mut crashed, PERSIST_AT, TOTAL);
    drop(crashed); // kill -9

    // Keep a pristine copy of the crash-point directory for the
    // torn-shard fault below (a clean resume re-arms checkpointing and
    // would overwrite it).
    for entry in fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        fs::copy(&path, dir_torn.join(path.file_name().unwrap())).unwrap();
    }

    // Clean resume: replay the lost tail, land on identical bytes.
    let (mut resumed, recovery) = ShardedStreamingEngine::resume(cfg(), &dir).unwrap();
    assert!(recovery.healed.is_empty(), "{tag}: clean dir healed");
    let lost_from = resumed.window().ticks() as usize;
    assert!(lost_from <= TOTAL, "{tag}: resumed past the stream");
    push_range(&mut resumed, lost_from, TOTAL);
    assert_shards_byte_equal(&uninterrupted, &resumed);

    // QL answers over the recovered model, byte-for-byte.
    let model_a = uninterrupted.model().unwrap().clone();
    let model_b = resumed.model().unwrap().clone();
    let session_a = Session::from_sharded(&model_a, Vec::new()).unwrap();
    let session_b = Session::from_sharded(&model_b, Vec::new()).unwrap();
    for stmt in STATEMENTS {
        assert_eq!(
            format!("{}", session_a.execute(stmt).unwrap()),
            format!("{}", session_b.execute(stmt).unwrap()),
            "{tag}: `{stmt}` diverges after sharded restart"
        );
    }

    // Crash-matrix fault: one shard's snapshot torn, others clean.
    // Resume must heal exactly the torn shard and, after replaying the
    // same tail, converge to the uninterrupted engine's bytes.
    let torn = k - 1;
    tear(&shard_file(&dir_torn, torn));
    let (mut healed, recovery) = ShardedStreamingEngine::resume(cfg(), &dir_torn).unwrap();
    assert_eq!(
        recovery.healed_shards(),
        vec![torn],
        "{tag}: healed set ({recovery:?})"
    );
    let lost_from = healed.window().ticks() as usize;
    push_range(&mut healed, lost_from, TOTAL);
    assert_shards_byte_equal(&uninterrupted, &healed);

    fs::remove_dir_all(&dir).unwrap();
    fs::remove_dir_all(&dir_torn).unwrap();
}

fn tear(path: &Path) {
    let mut bytes = fs::read(path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xa5;
    fs::write(path, bytes).unwrap();
}

#[test]
fn sensor_workload_restart_is_invisible() {
    let data = sensor_dataset(&SensorConfig::reduced(10, TOTAL));
    check_restart_equivalence(&data, "sensor");
}

#[test]
fn sensor_workload_sharded_restart_is_invisible() {
    let data = sensor_dataset(&SensorConfig::reduced(10, TOTAL));
    check_sharded_restart_equivalence(&data, "sensor", 3);
}

#[test]
fn stock_workload_sharded_restart_is_invisible() {
    let data = stock_dataset(&StockConfig::reduced(8, TOTAL));
    check_sharded_restart_equivalence(&data, "stock", 2);
}

#[test]
fn stock_workload_restart_is_invisible() {
    let data = stock_dataset(&StockConfig::reduced(8, TOTAL));
    check_restart_equivalence(&data, "stock");
}

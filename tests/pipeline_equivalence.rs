//! Property-based cross-crate tests: the algebraic invariants the paper's
//! correctness rests on, checked over randomized inputs.

use affinity::core::lsfd::lsfd;
use affinity::core::measures;
use affinity::prelude::*;
use proptest::prelude::*;

/// Random series of a given length with values in a tame range.
fn series_strategy(m: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-100.0f64..100.0, m)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Thm. 1: LSFD obeys the triangle inequality.
    #[test]
    fn lsfd_triangle_inequality(
        x1 in series_strategy(24), x2 in series_strategy(24),
        y1 in series_strategy(24), y2 in series_strategy(24),
        z1 in series_strategy(24), z2 in series_strategy(24),
    ) {
        let dxy = lsfd(&x1, &x2, &y1, &y2).unwrap();
        let dxz = lsfd(&x1, &x2, &z1, &z2).unwrap();
        let dzy = lsfd(&z1, &z2, &y1, &y2).unwrap();
        // Absolute slack covers the √ε·σ floor of Gram-based singular
        // values.
        let scale = dxy.max(dxz).max(dzy).max(1.0);
        prop_assert!(dxy <= dxz + dzy + 1e-6 * scale,
            "triangle violated: {dxy} > {dxz} + {dzy}");
    }

    /// LSFD symmetry and non-negativity.
    #[test]
    fn lsfd_symmetry(
        x1 in series_strategy(16), x2 in series_strategy(16),
        y1 in series_strategy(16), y2 in series_strategy(16),
    ) {
        let a = lsfd(&x1, &x2, &y1, &y2).unwrap();
        let b = lsfd(&y1, &y2, &x1, &x2).unwrap();
        prop_assert!(a >= 0.0);
        prop_assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0));
    }

    /// Lemma 1: dot products with the common series are preserved by any
    /// least-squares affine fit, for arbitrary targets.
    #[test]
    fn dot_product_preservation(
        common in series_strategy(32),
        center in series_strategy(32),
        target in series_strategy(32),
    ) {
        use affinity::core::affine::{design_matrix, solve_relationship, PivotStats};
        use affinity::linalg::qr::QrFactorization;
        use affinity::linalg::vector;

        let design = design_matrix(&common, &center);
        let Ok(qr) = QrFactorization::new(&design) else { return Ok(()); };
        let Ok((a, b)) = solve_relationship(&qr, &common, &target) else { return Ok(()); };
        let beta = [a[0][1], a[1][1], b[1]];
        let stats = PivotStats::compute(&common, &center);
        let prop = stats.propagate_dot(&beta);
        let exact = vector::dot(&common, &target);
        prop_assert!((prop - exact).abs() <= 1e-6 * exact.abs().max(1.0),
            "dot {prop} vs {exact}");
    }

    /// Affine propagation of covariance is exact when the target IS an
    /// affine image of the pivot columns (Eq. 6).
    #[test]
    fn covariance_propagation_exact_on_affine_images(
        common in series_strategy(24),
        center in series_strategy(24),
        a12 in -3.0f64..3.0, a22 in -3.0f64..3.0, b2 in -10.0f64..10.0,
    ) {
        use affinity::core::affine::{design_matrix, solve_relationship, PivotStats};
        use affinity::linalg::qr::QrFactorization;

        let target: Vec<f64> = common.iter().zip(&center)
            .map(|(c, r)| a12 * c + a22 * r + b2)
            .collect();
        let design = design_matrix(&common, &center);
        let Ok(qr) = QrFactorization::new(&design) else { return Ok(()); };
        let Ok((a, b)) = solve_relationship(&qr, &common, &target) else { return Ok(()); };
        let beta = [a[0][1], a[1][1], b[1]];
        let stats = PivotStats::compute(&common, &center);
        let prop = stats.propagate_covariance(&beta);
        let exact = measures::covariance(&common, &target);
        let scale = exact.abs().max(stats.cov11.abs()).max(1.0);
        prop_assert!((prop - exact).abs() <= 1e-7 * scale, "{prop} vs {exact}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// SYMEX covers all pairs exactly once for arbitrary n, and SCAPE
    /// MET results equal brute-force filtering of W_A values.
    #[test]
    fn symex_coverage_and_scape_equivalence(n in 2usize..26, seed in 0u64..500) {
        let mut cfg = SensorConfig::reduced(n, 32);
        cfg.seed = seed;
        let data = sensor_dataset(&cfg);
        let mut params = SymexParams::default();
        params.afclst.k = params.afclst.k.min(n - 1).max(1);
        let affine = Symex::new(params).run(&data).unwrap();
        prop_assert_eq!(affine.len(), n * (n - 1) / 2);

        let index = ScapeIndex::build(&data, &affine, &Measure::ALL).expect("index");
        let wa = AffineExecutor::new(&data, &affine);
        for tau in [-0.4, 0.2, 0.85] {
            let mut a = index
                .threshold_pairs(PairwiseMeasure::Correlation, ThresholdOp::Greater, tau)
                .unwrap();
            let mut b = wa.met_pairs(PairwiseMeasure::Correlation, ThresholdOp::Greater, tau);
            a.sort();
            b.sort();
            prop_assert_eq!(a, b, "tau {}", tau);
        }
    }
}

/// Exact-affine datasets: when every series is literally an affine image
/// of a latent pair, all pairwise measures reconstruct exactly.
#[test]
fn exact_affine_world_reconstructs_exactly() {
    let m = 64;
    let base1: Vec<f64> = (0..m).map(|i| (i as f64 * 0.21).sin()).collect();
    let base2: Vec<f64> = (0..m).map(|i| (i as f64 * 0.08).cos()).collect();
    let mut cols = Vec::new();
    for j in 0..12 {
        let a = 0.5 + 0.3 * j as f64;
        let b = 1.5 - 0.2 * j as f64;
        let c = j as f64;
        cols.push(
            base1
                .iter()
                .zip(&base2)
                .map(|(x, y)| a * x + b * y + c)
                .collect::<Vec<f64>>(),
        );
    }
    let data = DataMatrix::from_series(cols);
    let affine = Symex::new(SymexParams {
        afclst: affinity::core::afclst::AfclstParams {
            k: 2,
            gamma_max: 20,
            delta_min: 0,
            seed: 5,
        },
        ..Default::default()
    })
    .run(&data)
    .unwrap();
    let engine = MecEngine::new(&data, &affine);
    let exact = measures::pairwise_all(PairwiseMeasure::Covariance, &data);
    let approx = engine
        .pairwise_all(PairwiseMeasure::Covariance)
        .expect("full affine set");
    // Everything lives in a 2-D latent space + offsets: after clustering,
    // every pivot plane contains each series, so propagation is exact.
    let err = percent_rmse(&exact, &approx);
    assert!(err < 1e-5, "%RMSE {err}");
}

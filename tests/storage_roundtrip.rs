//! Property tests for the persistence layers: binary store and CSV.

use affinity::data::csv;
use affinity::prelude::*;
use proptest::prelude::*;

fn matrix_strategy() -> impl Strategy<Value = DataMatrix> {
    (1usize..8, 1usize..40).prop_flat_map(|(n, m)| {
        proptest::collection::vec(proptest::collection::vec(-1e6f64..1e6, m), n..=n)
            .prop_map(DataMatrix::from_series)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn binary_store_roundtrip(dm in matrix_strategy(), tag in 0u64..1_000_000) {
        let path = std::env::temp_dir()
            .join(format!("affinity_prop_{tag}_{}.afn", std::process::id()));
        MatrixStore::create(&path, &dm).unwrap();
        let store = MatrixStore::open(&path).unwrap();
        prop_assert_eq!(store.samples(), dm.samples());
        prop_assert_eq!(store.series_count(), dm.series_count());
        let back = store.read_all().unwrap();
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(back, dm);
    }

    #[test]
    fn csv_roundtrip(dm in matrix_strategy()) {
        let mut buf = Vec::new();
        csv::write_csv(&dm, &mut buf).unwrap();
        let back = csv::read_csv(&buf[..]).unwrap();
        prop_assert_eq!(back.samples(), dm.samples());
        prop_assert_eq!(back.series_count(), dm.series_count());
        for v in 0..dm.series_count() {
            for (a, b) in back.series(v).iter().zip(dm.series(v)) {
                prop_assert_eq!(a, b, "exact f64 text roundtrip");
            }
        }
    }

    #[test]
    fn single_series_random_access(dm in matrix_strategy(), pick in any::<prop::sample::Index>()) {
        let path = std::env::temp_dir()
            .join(format!("affinity_pick_{}.afn", std::process::id()));
        MatrixStore::create(&path, &dm).unwrap();
        let store = MatrixStore::open(&path).unwrap();
        let v = pick.index(dm.series_count());
        let got = store.read_series(v).unwrap();
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(got.as_slice(), dm.series(v));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Flipping any single byte anywhere in the column region — data or
    /// stored CRC — is detected as a checksum mismatch, never silently
    /// returned as data.
    #[test]
    fn corrupted_column_byte_is_detected(
        dm in matrix_strategy(),
        pick in any::<prop::sample::Index>(),
        tag in 0u64..1_000_000,
    ) {
        use affinity::storage::StorageError;
        let path = std::env::temp_dir()
            .join(format!("affinity_crc_{tag}_{}.afn", std::process::id()));
        MatrixStore::create(&path, &dm).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let col_region = dm.series_count() * (dm.samples() * 8 + 4);
        let start = bytes.len() - col_region;
        bytes[start + pick.index(col_region)] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let store = MatrixStore::open(&path).unwrap();
        let res = store.read_all();
        std::fs::remove_file(&path).ok();
        prop_assert!(
            matches!(res, Err(StorageError::ChecksumMismatch(_))),
            "corrupted byte not caught: {res:?}"
        );
    }

    /// Truncating the file anywhere inside the column region is caught
    /// by the whole-file size check at `open` time (the header promises
    /// more bytes than the file holds) — it never panics and never
    /// fabricates values.
    #[test]
    fn truncated_column_region_errors(
        dm in matrix_strategy(),
        pick in any::<prop::sample::Index>(),
        tag in 0u64..1_000_000,
    ) {
        use affinity::storage::StorageError;
        let path = std::env::temp_dir()
            .join(format!("affinity_trunc_{tag}_{}.afn", std::process::id()));
        MatrixStore::create(&path, &dm).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let col_region = dm.series_count() * (dm.samples() * 8 + 4);
        let keep = bytes.len() - col_region + pick.index(col_region);
        std::fs::write(&path, &bytes[..keep]).unwrap();
        let opened = MatrixStore::open(&path);
        std::fs::remove_file(&path).ok();
        prop_assert!(
            matches!(opened, Err(StorageError::Corrupt(_))),
            "open on truncated file: {opened:?}"
        );
    }
}

/// Truncation inside the header/label block fails at `open` time.
#[test]
fn truncated_header_fails_to_open() {
    let dm = sensor_dataset(&SensorConfig::reduced(5, 12));
    let path = std::env::temp_dir().join(format!("affinity_hdr_{}.afn", std::process::id()));
    MatrixStore::create(&path, &dm).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    // Cut in the middle of the label block (header is 36 bytes + labels).
    for keep in [4usize, 12, 30, 40] {
        std::fs::write(&path, &bytes[..keep.min(bytes.len())]).unwrap();
        assert!(
            MatrixStore::open(&path).is_err(),
            "open succeeded on a {keep}-byte prefix"
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn generated_datasets_survive_storage_bit_exact() {
    for (name, dm) in [
        ("sensor", sensor_dataset(&SensorConfig::reduced(20, 50))),
        ("stock", stock_dataset(&StockConfig::reduced(20, 50))),
    ] {
        let path = std::env::temp_dir().join(format!("affinity_gen_{name}.afn"));
        MatrixStore::create(&path, &dm).unwrap();
        let back = MatrixStore::open(&path).unwrap().read_all().unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back, dm, "{name}");
    }
}

//! Shard-vs-global equivalence oracle: a model partitioned into shards
//! (along cluster cuts or by *adversarial* random assignment) must
//! answer every MET/MER/MEC/count/QL query **bit-for-bit** identically
//! to the unsharded model it was partitioned from, for every shard
//! count — and the K=1 degenerate partition must be byte-identical to
//! today's monolithic model.
//!
//! This is the proof obligation that makes sharding a pure scale-out
//! knob: no approximation, no reordering, no float drift anywhere in
//! the merge layer.

use affinity::core::mec::MecEngine;
use affinity::core::symex::AffineSet;
use affinity::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;
use std::sync::OnceLock;

fn bits(x: f64) -> u64 {
    x.to_bits()
}

fn assert_slice_bits_eq(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(bits(*x), bits(*y), "{what}[{i}]: {x} vs {y}");
    }
}

/// Thresholds spanning each measure's typical range.
fn taus(measure: PairwiseMeasure) -> Vec<f64> {
    match measure {
        PairwiseMeasure::Correlation | PairwiseMeasure::Cosine | PairwiseMeasure::Dice => {
            vec![-0.5, 0.0, 0.5, 0.9, 0.99]
        }
        _ => vec![-1.0, 0.0, 0.01, 0.5, 10.0],
    }
}

fn workloads() -> Vec<(&'static str, DataMatrix)> {
    vec![
        ("sensor", sensor_dataset(&SensorConfig::reduced(20, 64))),
        ("stock", stock_dataset(&StockConfig::reduced(24, 80))),
    ]
}

/// Every query surface of `model` against the global `engine`/`index`
/// it was partitioned from — bit-for-bit.
fn assert_model_matches_global(
    tag: &str,
    engine: &MecEngine,
    index: &ScapeIndex,
    model: &affinity::shard::ShardedModel,
) {
    let never = || false;
    // MET / MER over pair measures, with their counts.
    for measure in PairwiseMeasure::ALL {
        for &tau in &taus(measure) {
            for op in [ThresholdOp::Greater, ThresholdOp::Less] {
                let a = index.threshold_pairs(measure, op, tau).unwrap();
                let b = model
                    .threshold_pairs_with(measure, op, tau, &never)
                    .unwrap();
                assert_eq!(a, b, "{tag}: {} {op:?} {tau}", measure.name());
                assert_eq!(
                    index.count_threshold_pairs(measure, op, tau).unwrap(),
                    model.count_threshold_pairs(measure, op, tau).unwrap(),
                    "{tag}: count {} {op:?} {tau}",
                    measure.name()
                );
            }
        }
        let a = index.range_pairs(measure, -0.25, 0.75).unwrap();
        let b = model
            .range_pairs_with(measure, -0.25, 0.75, &never)
            .unwrap();
        assert_eq!(a, b, "{tag}: {} range", measure.name());
        assert_eq!(
            index.count_range_pairs(measure, -0.25, 0.75).unwrap(),
            model.count_range_pairs(measure, -0.25, 0.75).unwrap(),
            "{tag}: count {} range",
            measure.name()
        );
    }
    // MET / MER over location measures, with their counts.
    for measure in LocationMeasure::ALL {
        for &tau in &[-1e18, 0.0, 100.0] {
            let a = index
                .threshold_series(measure, ThresholdOp::Greater, tau)
                .unwrap();
            let b = model
                .threshold_series(measure, ThresholdOp::Greater, tau)
                .unwrap();
            assert_eq!(a, b, "{tag}: {} > {tau}", measure.name());
            assert_eq!(
                index
                    .count_threshold_series(measure, ThresholdOp::Greater, tau)
                    .unwrap(),
                model
                    .count_threshold_series(measure, ThresholdOp::Greater, tau)
                    .unwrap(),
                "{tag}: count {} > {tau}",
                measure.name()
            );
        }
        let a = index.range_series(measure, -1e3, 1e3).unwrap();
        let b = model.range_series(measure, -1e3, 1e3).unwrap();
        assert_eq!(a, b, "{tag}: {} range", measure.name());
        assert_eq!(
            index.count_range_series(measure, -1e3, 1e3).unwrap(),
            model.count_range_series(measure, -1e3, 1e3).unwrap(),
            "{tag}: count {} range",
            measure.name()
        );
    }
    // MEC: every pair value of every measure, and every location value.
    for measure in PairwiseMeasure::ALL {
        let a = engine.pairwise_all(measure).unwrap();
        let b = model.pairwise_all(measure).unwrap();
        assert_slice_bits_eq(&a, &b, &format!("{tag}: {}", measure.name()));
    }
    let n = model.series_count();
    let ids: Vec<SeriesId> = (0..n).collect();
    for measure in LocationMeasure::ALL {
        let a = engine.location(measure, &ids).unwrap();
        let b = model.location(measure, &ids).unwrap();
        assert_slice_bits_eq(&a, &b, &format!("{tag}: {}", measure.name()));
    }
    // Subset MEC matrix (diagonal conventions included).
    let subset: Vec<SeriesId> = (0..n).step_by(3).collect();
    for measure in [PairwiseMeasure::Covariance, PairwiseMeasure::DotProduct] {
        let a = engine.pairwise(measure, &subset).unwrap();
        let b = model.pairwise(measure, &subset).unwrap();
        assert_slice_bits_eq(
            a.as_slice(),
            b.as_slice(),
            &format!("{tag}: subset {}", measure.name()),
        );
    }
    // Canonical errors match the global engine's.
    let bad = n + 3;
    assert_eq!(
        engine
            .location(LocationMeasure::Mean, &[bad])
            .unwrap_err()
            .to_string(),
        model
            .location(LocationMeasure::Mean, &[bad])
            .unwrap_err()
            .to_string(),
        "{tag}: unknown-series error"
    );
}

/// QL outputs of a sharded session against a global one.
fn assert_sessions_agree(tag: &str, global: &Session, sharded: &Session, l0: &str, l1: &str) {
    for stmt in [
        "MET correlation > 0.9".to_string(),
        "MET correlation < 0.2".to_string(),
        "MER covariance BETWEEN -0.5 AND 0.5".to_string(),
        "MET mean > 0".to_string(),
        "MER median BETWEEN -1e6 AND 1e6".to_string(),
        format!("MEC correlation OF {l0}, {l1}"),
        format!("MEC mean OF {l0}"),
        "MET dice > 0.8".to_string(),
        "MER cosine BETWEEN 0.5 AND 1.0".to_string(),
    ] {
        let a = global.execute(&stmt).unwrap();
        let b = sharded.execute(&stmt).unwrap();
        assert_eq!(a, b, "{tag}: `{stmt}`");
    }
}

#[test]
fn sharded_answers_match_global_for_every_shard_count() {
    for (name, data) in workloads() {
        let affine = Symex::new(SymexParams::default()).run(&data).unwrap();
        let engine = MecEngine::new(&data, &affine);
        let index = ScapeIndex::build(&data, &affine, &Measure::ALL).unwrap();
        let global = Session::new(&data, &affine, &Measure::ALL).unwrap();
        let l0 = data.label(0).to_string();
        let l1 = data.label(1).to_string();
        for k in [1usize, 2, 5] {
            let tag = format!("{name}/k={k}");
            let plan = ShardPlan::along_clusters(affine.clusters(), k);
            let model = ShardedModel::from_global(
                &data,
                &affine,
                plan,
                &Measure::ALL,
                Arc::new(ThreadPool::new(2)),
            )
            .unwrap();
            assert_eq!(model.shards().len(), k, "{tag}");
            assert_model_matches_global(&tag, &engine, &index, &model);
            let sharded = Session::from_sharded(&model, data.labels().to_vec()).unwrap();
            assert_sessions_agree(&tag, &global, &sharded, &l0, &l1);
        }
    }
}

/// The K=1 degenerate plan is not merely equivalent — the single
/// shard's affine set and index serialize to the **same bytes** as
/// today's monolithic model.
#[test]
fn single_shard_partition_is_byte_identical_to_global() {
    for (name, data) in workloads() {
        let affine = Symex::new(SymexParams::default()).run(&data).unwrap();
        let index = ScapeIndex::build(&data, &affine, &Measure::ALL).unwrap();
        let model = ShardedModel::from_global(
            &data,
            &affine,
            ShardPlan::single(data.series_count()),
            &Measure::ALL,
            Arc::new(ThreadPool::new(2)),
        )
        .unwrap();
        let shard = &model.shards()[0];
        assert_eq!(
            affine.to_bytes(),
            shard.affine().to_bytes(),
            "{name}: affine bytes"
        );
        assert_eq!(
            index.to_bytes(),
            shard.index().to_bytes(),
            "{name}: index bytes"
        );
        assert_eq!(shard.owned().len(), data.series_count(), "{name}");
    }
}

/// Shared fixture for the adversarial-plan property: building the
/// global model once keeps the per-case cost to a partition + compare.
fn fixture() -> &'static (DataMatrix, AffineSet, MecEngine<'static>, ScapeIndex) {
    static FIXTURE: OnceLock<(DataMatrix, AffineSet, MecEngine<'static>, ScapeIndex)> =
        OnceLock::new();
    FIXTURE.get_or_init(|| {
        let data = stock_dataset(&StockConfig::reduced(18, 60));
        let data = Box::leak(Box::new(data));
        let affine = Symex::new(SymexParams::default()).run(data).unwrap();
        let affine_ref: &'static AffineSet = Box::leak(Box::new(affine.clone()));
        let engine = MecEngine::new(data, affine_ref);
        let index = ScapeIndex::build(data, affine_ref, &Measure::ALL).unwrap();
        (data.clone(), affine, engine, index)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Adversarial cut placements: a *random* series → shard map (which
    /// may scatter clusters across shards and leave shards empty) still
    /// answers bit-identically — exactness must come from the merge
    /// layer, not from friendly cluster-aligned cuts.
    #[test]
    fn adversarial_plans_answer_bit_identically(
        assignments in proptest::collection::vec(0u32..4u32, 18),
        k_extra in 0usize..2,
    ) {
        let (data, affine, engine, index) = fixture();
        let shards = 4 + k_extra; // trailing shards may own nothing
        let plan = ShardPlan::from_assignments(assignments.clone(), shards).unwrap();
        let model = ShardedModel::from_global(
            data,
            affine,
            plan,
            &Measure::ALL,
            Arc::new(ThreadPool::new(2)),
        )
        .unwrap();
        let tag = format!("plan {assignments:?}/{shards}");
        assert_model_matches_global(&tag, engine, index, &model);
        let global = Session::new(data, affine, &Measure::ALL).unwrap();
        let sharded = Session::from_sharded(&model, data.labels().to_vec()).unwrap();
        assert_sessions_agree(
            &tag,
            &global,
            &sharded,
            data.label(0),
            data.label(1),
        );
    }
}

//! Cross-method consistency: the four query strategies must tell the same
//! story on the same data.

use affinity::core::measures;
use affinity::prelude::*;
use affinity::query::workload::{self, WorkloadConfig};

#[test]
fn online_workload_checksums_agree() {
    let data = stock_dataset(&StockConfig::reduced(30, 100));
    let affine = Symex::new(SymexParams::default()).run(&data).unwrap();
    let wn = NaiveExecutor::new(&data);
    let wa = AffineExecutor::new(&data, &affine);
    let queries = workload::generate(
        &WorkloadConfig {
            queries: 120,
            ids_per_query: 8,
            ..Default::default()
        },
        data.series_count(),
    );
    let a = workload::run_naive(&wn, &queries);
    let b = workload::run_affine(&wa, &queries);
    let rel = (a - b).abs() / a.abs().max(1.0);
    assert!(rel < 0.05, "relative divergence {rel}");
}

#[test]
fn met_result_sets_nest_with_tau() {
    // Monotonicity: raising τ can only shrink a greater-than result set,
    // for every method.
    let data = sensor_dataset(&SensorConfig::reduced(24, 64));
    let affine = Symex::new(SymexParams::default()).run(&data).unwrap();
    let index = ScapeIndex::build(&data, &affine, &Measure::ALL).expect("index");
    let wn = NaiveExecutor::new(&data);
    let wa = AffineExecutor::new(&data, &affine);
    let wf = DftExecutor::new(&data);
    let taus = [0.0, 0.3, 0.6, 0.9];
    let mut prev_sizes = [usize::MAX; 4];
    for tau in taus {
        let sizes = [
            wn.met_pairs(PairwiseMeasure::Correlation, ThresholdOp::Greater, tau)
                .len(),
            wa.met_pairs(PairwiseMeasure::Correlation, ThresholdOp::Greater, tau)
                .len(),
            wf.met_pairs(ThresholdOp::Greater, tau).len(),
            index
                .threshold_pairs(PairwiseMeasure::Correlation, ThresholdOp::Greater, tau)
                .unwrap()
                .len(),
        ];
        for (i, (&s, &p)) in sizes.iter().zip(prev_sizes.iter()).enumerate() {
            assert!(s <= p, "method {i} grew from {p} to {s} at tau {tau}");
        }
        prev_sizes = sizes;
    }
}

#[test]
fn scape_and_wa_are_identical_wn_is_close() {
    let data = stock_dataset(&StockConfig::reduced(26, 120));
    let affine = Symex::new(SymexParams::default()).run(&data).unwrap();
    let index = ScapeIndex::build(&data, &affine, &Measure::ALL).expect("index");
    let wn = NaiveExecutor::new(&data);
    let wa = AffineExecutor::new(&data, &affine);

    let tau = 0.7;
    let mut s: Vec<_> = index
        .threshold_pairs(PairwiseMeasure::Correlation, ThresholdOp::Greater, tau)
        .unwrap();
    let mut a = wa.met_pairs(PairwiseMeasure::Correlation, ThresholdOp::Greater, tau);
    s.sort();
    a.sort();
    assert_eq!(s, a, "SCAPE must equal brute-forced W_A exactly");

    // W_N differs only by approximation error: Jaccard similarity high.
    let n: std::collections::BTreeSet<_> = wn
        .met_pairs(PairwiseMeasure::Correlation, ThresholdOp::Greater, tau)
        .into_iter()
        .collect();
    let s: std::collections::BTreeSet<_> = s.into_iter().collect();
    let inter = n.intersection(&s).count();
    let union = n.union(&s).count().max(1);
    assert!(
        inter as f64 / union as f64 > 0.7,
        "Jaccard {}",
        inter as f64 / union as f64
    );
}

#[test]
fn wf_only_handles_correlation_and_degrades_gracefully() {
    // The paper stresses W_F's limitation: correlation only. Our API
    // enforces it statically (no covariance method exists), so here we
    // check the quality claim: W_F error is visibly worse than W_A on
    // noisy data but both remain sane.
    let data = sensor_dataset(&SensorConfig::reduced(20, 128));
    let affine = Symex::new(SymexParams::default()).run(&data).unwrap();
    let engine = MecEngine::new(&data, &affine);
    let wf = DftExecutor::new(&data);

    let exact = measures::pairwise_all(PairwiseMeasure::Correlation, &data);
    let wa: Vec<f64> = engine
        .pairwise_all(PairwiseMeasure::Correlation)
        .expect("full affine set");
    let wf_vals: Vec<f64> = data
        .sequence_pairs()
        .iter()
        .map(|&p| wf.correlation(p))
        .collect();
    let err_wa = percent_rmse(&exact, &wa);
    let err_wf = percent_rmse(&exact, &wf_vals);
    assert!(err_wa < 25.0, "W_A %RMSE {err_wa}");
    assert!(err_wf < 60.0, "W_F %RMSE {err_wf}");
    for v in &wf_vals {
        assert!(
            (-1.0..=1.0).contains(v),
            "W_F correlation out of range: {v}"
        );
    }
}

#[test]
fn degenerate_data_is_survivable_everywhere() {
    // Constant series + duplicated series: every stage must stay finite
    // and total.
    let m = 40;
    let mut cols: Vec<Vec<f64>> = vec![
        vec![5.0; m],                                     // constant
        (0..m).map(|i| (i as f64 * 0.3).sin()).collect(), // normal
    ];
    cols.push(cols[1].clone()); // exact duplicate
    cols.push((0..m).map(|i| i as f64).collect());
    let data = DataMatrix::from_series(cols);
    let affine = Symex::new(SymexParams {
        afclst: affinity::core::afclst::AfclstParams {
            k: 2,
            gamma_max: 8,
            delta_min: 0,
            seed: 3,
        },
        ..Default::default()
    })
    .run(&data)
    .unwrap();
    let engine = MecEngine::new(&data, &affine);
    for measure in PairwiseMeasure::ALL {
        for v in engine.pairwise_all(measure).expect("full affine set") {
            assert!(v.is_finite(), "{} produced {v}", measure.name());
        }
    }
    // Correlation with the constant series is 0 by convention, and the
    // duplicate pair correlates to ~1.
    let rho_dup = engine
        .pair_value(PairwiseMeasure::Correlation, SequencePair::new(1, 2))
        .unwrap();
    assert!((rho_dup - 1.0).abs() < 1e-6, "duplicate rho {rho_dup}");
    let rho_const = engine
        .pair_value(PairwiseMeasure::Correlation, SequencePair::new(0, 1))
        .unwrap();
    assert_eq!(rho_const, 0.0);
    let index = ScapeIndex::build(&data, &affine, &Measure::ALL).expect("index");
    let res = index
        .threshold_pairs(PairwiseMeasure::Correlation, ThresholdOp::Greater, 0.99)
        .unwrap();
    assert!(res.contains(&SequencePair::new(1, 2)));
}

//! Out-of-core equivalence suite: every model artifact built by
//! *streaming* columns through a `SeriesSource` (an on-disk
//! `MatrixStore`, and a cache-constrained `CachedStore` forced to evict
//! constantly) must be **bit-for-bit identical** to the resident build
//! — clusters, affine relationships, MEC answers, SCAPE query results,
//! QL session outputs, and the streaming engine's warm-started model.
//!
//! The cache budget is deliberately tiny (default 3 columns, override
//! with `AFFINITY_CACHE_COLS`) so the LRU thrashes: equivalence must
//! hold under maximal eviction churn, not just when everything fits.

use affinity::core::afclst::{afclst, AfclstParams};
use affinity::core::symex::AffineSet;
use affinity::prelude::*;

fn cache_cols() -> usize {
    std::env::var("AFFINITY_CACHE_COLS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
}

fn store_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("affinity-ooc-equivalence");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{name}-{}.afn", std::process::id()))
}

fn workloads() -> Vec<(&'static str, DataMatrix)> {
    vec![
        ("sensor", sensor_dataset(&SensorConfig::reduced(22, 72))),
        ("stock", stock_dataset(&StockConfig::reduced(26, 90))),
    ]
}

fn bits(x: f64) -> u64 {
    x.to_bits()
}

fn assert_slice_bits_eq(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(bits(*x), bits(*y), "{what}[{i}]: {x} vs {y}");
    }
}

fn assert_affine_bits_eq(a: &AffineSet, b: &AffineSet, what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: relationship count");
    assert_eq!(a.pivots(), b.pivots(), "{what}: pivots");
    assert_eq!(
        a.clusters().assignments(),
        b.clusters().assignments(),
        "{what}: assignments"
    );
    for l in 0..a.clusters().k() {
        assert_slice_bits_eq(
            a.clusters().center(l),
            b.clusters().center(l),
            &format!("{what}: center {l}"),
        );
    }
    for (ra, rb) in a.relationships().iter().zip(b.relationships()) {
        assert_eq!(ra.pair, rb.pair, "{what}");
        assert_eq!(ra.pivot, rb.pivot, "{what}");
        assert_eq!(ra.common, rb.common, "{what}");
        for r in 0..2 {
            for c in 0..2 {
                assert_eq!(
                    bits(ra.a[r][c]),
                    bits(rb.a[r][c]),
                    "{what}: A of {:?}",
                    ra.pair
                );
            }
            assert_eq!(bits(ra.b[r]), bits(rb.b[r]), "{what}: b of {:?}", ra.pair);
        }
    }
    for (sa, sb) in a
        .series_relationships()
        .iter()
        .zip(b.series_relationships())
    {
        assert_eq!(sa.series, sb.series, "{what}");
        assert_eq!(sa.cluster, sb.cluster, "{what}");
        assert_eq!(bits(sa.c), bits(sb.c), "{what}: c of series {}", sa.series);
        assert_eq!(bits(sa.d), bits(sb.d), "{what}: d of series {}", sa.series);
    }
}

/// Thresholds spanning each measure's typical range.
fn taus(measure: PairwiseMeasure) -> Vec<f64> {
    match measure {
        PairwiseMeasure::Correlation | PairwiseMeasure::Cosine | PairwiseMeasure::Dice => {
            vec![-0.5, 0.0, 0.5, 0.9, 0.99]
        }
        _ => vec![-1.0, 0.0, 0.01, 0.5, 10.0],
    }
}

#[test]
fn afclst_is_bit_identical_across_sources() {
    for (name, data) in workloads() {
        let path = store_path(&format!("afclst-{name}"));
        MatrixStore::create(&path, &data).unwrap();
        let params = AfclstParams::default();
        let resident = afclst(&data, &params).unwrap();

        let store = MatrixStore::open(&path).unwrap();
        let streamed = afclst(&store, &params).unwrap();
        let cached = CachedStore::new(MatrixStore::open(&path).unwrap(), cache_cols());
        let constrained = afclst(&cached, &params).unwrap();
        std::fs::remove_file(&path).ok();

        for (tag, model) in [("store", &streamed), ("cached", &constrained)] {
            assert_eq!(
                resident.assignments(),
                model.assignments(),
                "{name}/{tag}: assignments"
            );
            assert_eq!(resident.iterations(), model.iterations(), "{name}/{tag}");
            assert_eq!(resident.converged(), model.converged(), "{name}/{tag}");
            for l in 0..resident.k() {
                assert_slice_bits_eq(
                    resident.center(l),
                    model.center(l),
                    &format!("{name}/{tag}: center {l}"),
                );
            }
        }
        let stats = cached.stats();
        assert!(
            stats.evictions > 0,
            "{name}: a {}-column cache over {} series must evict ({stats:?})",
            cache_cols(),
            data.series_count()
        );
    }
}

#[test]
fn symex_build_is_bit_identical_across_sources() {
    for (name, data) in workloads() {
        let path = store_path(&format!("symex-{name}"));
        MatrixStore::create(&path, &data).unwrap();
        let symex = Symex::new(SymexParams::default());
        let resident = symex.run(&data).unwrap();

        let store = MatrixStore::open(&path).unwrap();
        let streamed = symex.run(&store).unwrap();
        assert_affine_bits_eq(&resident, &streamed, &format!("{name}/store"));

        let cached = CachedStore::new(MatrixStore::open(&path).unwrap(), cache_cols());
        let constrained = symex.run(&cached).unwrap();
        assert_affine_bits_eq(&resident, &constrained, &format!("{name}/cached"));
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn mec_engine_answers_are_bit_identical_across_sources() {
    for (name, data) in workloads() {
        let path = store_path(&format!("mec-{name}"));
        MatrixStore::create(&path, &data).unwrap();
        let affine = Symex::new(SymexParams::default()).run(&data).unwrap();
        let resident = MecEngine::new(&data, &affine);
        let cached = CachedStore::new(MatrixStore::open(&path).unwrap(), cache_cols());
        let streamed = MecEngine::from_source(&cached, &affine).unwrap();
        std::fs::remove_file(&path).ok();

        for measure in PairwiseMeasure::EXTENDED {
            let a = resident.pairwise_all(measure).unwrap();
            let b = streamed.pairwise_all(measure).unwrap();
            assert_slice_bits_eq(&a, &b, &format!("{name}: {}", measure.name()));
        }
        for measure in LocationMeasure::ALL {
            let a = resident.location_all(measure);
            let b = streamed.location_all(measure);
            assert_slice_bits_eq(&a, &b, &format!("{name}: {}", measure.name()));
        }
        // Ad-hoc subset queries too (scalar and batched paths).
        let ids: Vec<SeriesId> = (0..data.series_count()).step_by(2).collect();
        let a = resident
            .pairwise(PairwiseMeasure::Correlation, &ids)
            .unwrap();
        let b = streamed
            .pairwise(PairwiseMeasure::Correlation, &ids)
            .unwrap();
        assert_slice_bits_eq(a.as_slice(), b.as_slice(), &format!("{name}: subset"));
    }
}

#[test]
fn scape_index_answers_are_identical_across_sources() {
    for (name, data) in workloads() {
        let path = store_path(&format!("scape-{name}"));
        MatrixStore::create(&path, &data).unwrap();
        let affine = Symex::new(SymexParams::default()).run(&data).unwrap();
        let resident = ScapeIndex::build(&data, &affine, &Measure::ALL).unwrap();
        let cached = CachedStore::new(MatrixStore::open(&path).unwrap(), cache_cols());
        let streamed =
            ScapeIndex::build_from_source(&cached, &affine, &Measure::ALL, &ThreadPool::new(2))
                .unwrap();
        std::fs::remove_file(&path).ok();

        assert_eq!(resident.stats(), streamed.stats(), "{name}");
        for measure in PairwiseMeasure::ALL {
            for &tau in &taus(measure) {
                let a = resident
                    .threshold_pairs(measure, ThresholdOp::Greater, tau)
                    .unwrap();
                let b = streamed
                    .threshold_pairs(measure, ThresholdOp::Greater, tau)
                    .unwrap();
                assert_eq!(a, b, "{name}: {} > {tau}", measure.name());
                assert_eq!(
                    resident.count_threshold_pairs(measure, ThresholdOp::Greater, tau),
                    streamed.count_threshold_pairs(measure, ThresholdOp::Greater, tau),
                    "{name}: count {} > {tau}",
                    measure.name()
                );
            }
            let a = resident.range_pairs(measure, -0.25, 0.75).unwrap();
            let b = streamed.range_pairs(measure, -0.25, 0.75).unwrap();
            assert_eq!(a, b, "{name}: {} range", measure.name());
        }
        for measure in LocationMeasure::ALL {
            let a = resident
                .threshold_series(measure, ThresholdOp::Greater, 0.0)
                .unwrap();
            let b = streamed
                .threshold_series(measure, ThresholdOp::Greater, 0.0)
                .unwrap();
            assert_eq!(a, b, "{name}: {}", measure.name());
        }
    }
}

#[test]
fn ql_session_outputs_are_identical_across_sources() {
    for (name, data) in workloads() {
        let path = store_path(&format!("ql-{name}"));
        MatrixStore::create(&path, &data).unwrap();
        let affine = Symex::new(SymexParams::default()).run(&data).unwrap();
        let resident = Session::new(&data, &affine, &Measure::EXTENDED).unwrap();
        let cached = CachedStore::new(MatrixStore::open(&path).unwrap(), cache_cols());
        let labels = cached.store().labels().to_vec();
        let streamed = Session::from_source(&cached, labels, &affine, &Measure::EXTENDED).unwrap();
        std::fs::remove_file(&path).ok();

        let l0 = data.label(0).to_string();
        let l1 = data.label(1).to_string();
        for stmt in [
            "MET correlation > 0.9".to_string(),
            "MER covariance BETWEEN -0.5 AND 0.5".to_string(),
            "MET mean > 0".to_string(),
            format!("MEC correlation OF {l0}, {l1}"),
            format!("MEC mean OF {l0}"),
            "EXPLAIN MET dot > 10".to_string(),
        ] {
            let a = resident.execute(&stmt).unwrap();
            let b = streamed.execute(&stmt).unwrap();
            assert_eq!(a, b, "{name}: `{stmt}`");
        }
    }
}

#[test]
fn streaming_engine_warm_start_matches_resident_build() {
    for (name, data) in workloads() {
        let path = store_path(&format!("stream-{name}"));
        MatrixStore::create(&path, &data).unwrap();
        let window = data.samples() / 2;
        let cfg = StreamingConfig::new(window);

        // Warm-start out of core: trailing `window` samples, one column
        // at a time through a constrained cache.
        let cached = CachedStore::new(MatrixStore::open(&path).unwrap(), cache_cols());
        let engine = StreamingEngine::from_source(cfg.clone(), &cached).unwrap();
        std::fs::remove_file(&path).ok();
        let model = engine.model().expect("warm start builds a model");

        // Resident reference: the same trailing window, built directly.
        let trailing = DataMatrix::from_series(
            (0..data.series_count())
                .map(|v| data.series(v)[data.samples() - window..].to_vec())
                .collect(),
        );
        let mut params = cfg.symex.clone();
        params.afclst.k = params
            .afclst
            .k
            .min(trailing.series_count().saturating_sub(1))
            .max(1);
        let expected = Symex::new(params).run(&trailing).unwrap();
        assert_affine_bits_eq(model.affine(), &expected, name);

        // Rolling statistics must be exact for the warm window.
        for v in 0..data.series_count() {
            let s = engine.window().series(v);
            let exact = affinity::linalg::vector::variance(s);
            assert!(
                (engine.rolling().variance(v) - exact).abs() < 1e-9,
                "{name}: rolling variance of series {v}"
            );
        }
    }
}

/// Every model artifact, built through a cache-starved `CachedStore`
/// whose background prefetcher runs at depth 0 (disabled), 2, and 8:
/// asynchronous readahead must be invisible in the output — the same
/// checksummed bytes arrive whichever thread fetched them — while the
/// consumers' announced access patterns race the LRU's evictions.
#[test]
fn prefetched_builds_are_bit_identical_at_every_depth() {
    for (name, data) in workloads() {
        let path = store_path(&format!("prefetch-{name}"));
        MatrixStore::create(&path, &data).unwrap();
        let symex = Symex::new(SymexParams::default());
        let resident_affine = symex.run(&data).unwrap();
        let resident_engine = MecEngine::new(&data, &resident_affine);
        let resident_index = ScapeIndex::build(&data, &resident_affine, &Measure::ALL).unwrap();
        let resident_session = Session::new(&data, &resident_affine, &Measure::EXTENDED).unwrap();

        for depth in [0usize, 2, 8] {
            let tag = format!("{name}/depth-{depth}");
            let cached =
                CachedStore::with_prefetch(MatrixStore::open(&path).unwrap(), cache_cols(), depth);

            // SYMEX (incl. AFCLST inside).
            let affine = symex.run(&cached).unwrap();
            assert_affine_bits_eq(&resident_affine, &affine, &tag);

            // MEC engine answers, every measure.
            let engine = MecEngine::from_source(&cached, &affine).unwrap();
            for measure in PairwiseMeasure::EXTENDED {
                let a = resident_engine.pairwise_all(measure).unwrap();
                let b = engine.pairwise_all(measure).unwrap();
                assert_slice_bits_eq(&a, &b, &format!("{tag}: {}", measure.name()));
            }
            for measure in LocationMeasure::ALL {
                let a = resident_engine.location_all(measure);
                let b = engine.location_all(measure);
                assert_slice_bits_eq(&a, &b, &format!("{tag}: {}", measure.name()));
            }

            // SCAPE index.
            let index =
                ScapeIndex::build_from_source(&cached, &affine, &Measure::ALL, &ThreadPool::new(2))
                    .unwrap();
            assert_eq!(resident_index.stats(), index.stats(), "{tag}");
            for measure in PairwiseMeasure::ALL {
                for &tau in &taus(measure) {
                    assert_eq!(
                        resident_index
                            .threshold_pairs(measure, ThresholdOp::Greater, tau)
                            .unwrap(),
                        index
                            .threshold_pairs(measure, ThresholdOp::Greater, tau)
                            .unwrap(),
                        "{tag}: {} > {tau}",
                        measure.name()
                    );
                }
            }

            // QL session outputs.
            let labels = cached.store().labels().to_vec();
            let session =
                Session::from_source(&cached, labels, &affine, &Measure::EXTENDED).unwrap();
            for stmt in [
                "MET correlation > 0.9",
                "MER covariance BETWEEN -0.5 AND 0.5",
                "MEC mean OF 0, 1",
            ] {
                assert_eq!(
                    resident_session.execute(stmt).unwrap(),
                    session.execute(stmt).unwrap(),
                    "{tag}: `{stmt}`"
                );
            }

            // Streaming warm start off the prefetching cache.
            let window = data.samples() / 2;
            let engine =
                StreamingEngine::from_source(StreamingConfig::new(window), &cached).unwrap();
            let model = engine.model().expect("warm start builds a model");
            let trailing = DataMatrix::from_series(
                (0..data.series_count())
                    .map(|v| data.series(v)[data.samples() - window..].to_vec())
                    .collect(),
            );
            let mut params = StreamingConfig::new(window).symex.clone();
            params.afclst.k = params
                .afclst
                .k
                .min(trailing.series_count().saturating_sub(1))
                .max(1);
            let expected = Symex::new(params).run(&trailing).unwrap();
            assert_affine_bits_eq(model.affine(), &expected, &tag);

            if depth > 0 {
                cached.quiesce();
                let stats = cached.stats();
                assert!(
                    stats.prefetch.issued > 0,
                    "{tag}: the announced passes must have driven the prefetcher ({stats:?})"
                );
                assert_eq!(
                    stats.prefetch.issued,
                    stats.prefetch.hits
                        + stats.prefetch.wasted
                        + cached.prefetched_unconsumed() as u64,
                    "{tag}: prefetch stats identity ({stats:?})"
                );
            }
        }
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn streamed_build_from_store_without_cache_matches_cli_path() {
    // The `affinity query --ooc` path: Symex + Session straight from a
    // CachedStore with a byte budget.
    let data = stock_dataset(&StockConfig::reduced(16, 64));
    let path = store_path("cli");
    MatrixStore::create(&path, &data).unwrap();
    let store = MatrixStore::open(&path).unwrap();
    let labels = store.labels().to_vec();
    let source = CachedStore::with_budget_bytes(store, 4 * 64 * 8);
    assert_eq!(source.capacity(), 4);
    let affine = Symex::new(SymexParams::default()).run(&source).unwrap();
    let session = Session::from_source(&source, labels, &affine, &Measure::EXTENDED).unwrap();
    let resident_affine = Symex::new(SymexParams::default()).run(&data).unwrap();
    let resident = Session::new(&data, &resident_affine, &Measure::EXTENDED).unwrap();
    for stmt in ["MET correlation > 0.8", "MEC variance OF 0, 1, 2"] {
        // Parse errors must agree too (variance is not a QL measure).
        let a = resident.execute(stmt);
        let b = session.execute(stmt);
        match (a, b) {
            (Ok(x), Ok(y)) => assert_eq!(x, y, "`{stmt}`"),
            (Err(_), Err(_)) => {}
            (x, y) => panic!("`{stmt}` diverged: {x:?} vs {y:?}"),
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn sharded_build_is_bit_identical_across_sources() {
    // A sharded model built by streaming columns through a
    // cache-starved `CachedStore` must match both the resident sharded
    // build (per shard, byte-for-byte) and the resident *global* model
    // (every answer, bit-for-bit) — sharding composes with the
    // out-of-core path without widening the equivalence contract.
    for (name, data) in workloads() {
        let path = store_path(&format!("shard-{name}"));
        MatrixStore::create(&path, &data).unwrap();
        let resident_affine = Symex::new(SymexParams::default()).run(&data).unwrap();
        let resident =
            ShardedModel::build(&data, &SymexParams::default(), 3, &Measure::ALL).unwrap();

        let cached = CachedStore::new(MatrixStore::open(&path).unwrap(), cache_cols());
        let constrained =
            ShardedModel::build(&cached, &SymexParams::default(), 3, &Measure::ALL).unwrap();
        let stats = cached.stats();
        assert!(
            stats.evictions > 0,
            "{name}: a {}-column cache over {} series must evict ({stats:?})",
            cache_cols(),
            data.series_count()
        );
        std::fs::remove_file(&path).ok();

        assert_eq!(
            resident.plan().assignments(),
            constrained.plan().assignments(),
            "{name}: shard plans diverge across sources"
        );
        for (i, (a, b)) in resident
            .shards()
            .iter()
            .zip(constrained.shards())
            .enumerate()
        {
            assert_eq!(
                a.affine().to_bytes(),
                b.affine().to_bytes(),
                "{name}: shard {i} affine bytes"
            );
            assert_eq!(
                a.index().to_bytes(),
                b.index().to_bytes(),
                "{name}: shard {i} index bytes"
            );
        }

        // Answer-level equivalence against the resident global build.
        let engine = MecEngine::new(&data, &resident_affine);
        for measure in PairwiseMeasure::ALL {
            assert_slice_bits_eq(
                &engine.pairwise_all(measure).unwrap(),
                &constrained.pairwise_all(measure).unwrap(),
                &format!("{name}: ooc-sharded {}", measure.name()),
            );
        }
        let index = ScapeIndex::build(&data, &resident_affine, &Measure::ALL).unwrap();
        let never = || false;
        for &tau in &[0.0, 0.5, 0.9] {
            assert_eq!(
                index
                    .threshold_pairs(PairwiseMeasure::Correlation, ThresholdOp::Greater, tau)
                    .unwrap(),
                constrained
                    .threshold_pairs_with(
                        PairwiseMeasure::Correlation,
                        ThresholdOp::Greater,
                        tau,
                        &never
                    )
                    .unwrap(),
                "{name}: ooc-sharded MET @ {tau}"
            );
        }
    }
}

//! Chaos suite for `affinity serve`: the real binary, real TCP, real
//! signals. Every scenario asserts the service's core contract — every
//! admitted request gets a correct answer or a *typed* rejection, the
//! admission ledger balances exactly, and a `kill -9` + `--resume`
//! restart answers bit-identically to the uninterrupted run.
//!
//! The scenarios:
//! - open-loop overload with refresh churn: no hangs, one response per
//!   request, `received == admitted + rejected`,
//!   `admitted == ok + err + deadline + shed`;
//! - `kill -9` mid-serve, then `--resume`: the restarted server's
//!   answers are byte-identical to the pre-kill answers (the journal
//!   makes every published refresh durable);
//! - SIGTERM under load: graceful drain, exit 0, balanced final ledger;
//! - injected faults (slow workers, poisoned epochs, forced refreshes):
//!   typed `DEADLINE`/`INTERNAL` responses, recovery via the next
//!   epoch, never a crash.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_affinity");

/// A running `affinity serve` child plus its parsed listen address.
struct ServerProc {
    child: Child,
    addr: String,
    stdout: BufReader<std::process::ChildStdout>,
}

impl ServerProc {
    /// Spawn `affinity serve --port 0 <extra>` and wait for the
    /// `SERVE addr=...` startup line.
    fn spawn(extra: &[&str]) -> ServerProc {
        let mut child = Command::new(BIN)
            .arg("serve")
            .args(["--port", "0"])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn affinity serve");
        let mut stdout = BufReader::new(child.stdout.take().expect("child stdout"));
        let mut line = String::new();
        let deadline = Instant::now() + Duration::from_secs(120);
        let addr = loop {
            line.clear();
            let n = stdout.read_line(&mut line).expect("read startup line");
            assert!(n > 0, "server exited before printing SERVE addr line");
            if let Some(rest) = line.strip_prefix("SERVE addr=") {
                break rest
                    .split_whitespace()
                    .next()
                    .expect("addr field")
                    .to_string();
            }
            assert!(Instant::now() < deadline, "no SERVE addr line in time");
        };
        ServerProc {
            child,
            addr,
            stdout,
        }
    }

    fn connect(&self) -> Client {
        let stream = TcpStream::connect(&self.addr).expect("connect to server");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Client { stream, reader }
    }

    /// Wait for exit; return (success, final `SERVE done` ledger if
    /// printed).
    fn wait(mut self) -> (bool, Option<HashMap<String, u64>>) {
        let status = self.child.wait().expect("wait for server");
        let mut ledger = None;
        let mut line = String::new();
        while {
            line.clear();
            self.stdout.read_line(&mut line).unwrap_or(0) > 0
        } {
            if let Some(rest) = line.strip_prefix("SERVE done ") {
                ledger = Some(parse_ledger(rest));
            }
        }
        (status.success(), ledger)
    }

    fn kill9(&mut self) {
        self.child.kill().expect("kill -9 server");
        self.child.wait().expect("reap killed server");
    }

    fn pid(&self) -> u32 {
        self.child.id()
    }
}

/// One TCP client speaking the line protocol.
struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

/// One parsed response.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Response {
    /// `OK <id>` + body lines (bit-exact, newline-joined).
    Ok(String, String),
    /// `ERR <id> <CODE> <msg>`.
    Err(String, String),
    /// `+...` / `-...` control reply.
    Control(String),
}

impl Client {
    fn send(&mut self, line: &str) {
        self.stream
            .write_all(format!("{line}\n").as_bytes())
            .expect("send request");
    }

    fn read_response(&mut self) -> Response {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("read response");
        assert!(n > 0, "connection closed mid-response");
        let line = line.trim_end().to_string();
        if line.starts_with('+') || line.starts_with('-') {
            return Response::Control(line);
        }
        let mut parts = line.splitn(3, ' ');
        match (parts.next(), parts.next(), parts.next()) {
            (Some("OK"), Some(id), Some(count)) => {
                let count: usize = count.parse().expect("OK body line count");
                let mut body = String::new();
                for _ in 0..count {
                    let mut b = String::new();
                    assert!(
                        self.reader.read_line(&mut b).expect("read body line") > 0,
                        "connection closed mid-body"
                    );
                    body.push_str(&b);
                }
                Response::Ok(id.to_string(), body)
            }
            (Some("ERR"), Some(id), Some(rest)) => {
                let code = rest.split(' ').next().unwrap_or("").to_string();
                Response::Err(id.to_string(), code)
            }
            other => panic!("malformed response line {line:?} ({other:?})"),
        }
    }

    /// Send one statement, read its (single) response.
    fn query(&mut self, id: &str, stmt: &str) -> Response {
        self.send(&format!("{id} {stmt}"));
        self.read_response()
    }

    /// Send a `.command`, expect a `+`-prefixed reply.
    fn control(&mut self, cmd: &str) -> String {
        self.send(cmd);
        match self.read_response() {
            Response::Control(s) => {
                assert!(s.starts_with('+'), "control {cmd:?} failed: {s}");
                s
            }
            other => panic!("control {cmd:?} got non-control response {other:?}"),
        }
    }
}

/// Parse `k=v k=v ...` ledger/stat lines.
fn parse_ledger(s: &str) -> HashMap<String, u64> {
    s.split_whitespace()
        .filter_map(|kv| kv.split_once('='))
        .filter_map(|(k, v)| v.parse().ok().map(|v| (k.to_string(), v)))
        .collect()
}

/// The two ledger invariants every quiescent server must satisfy.
fn assert_ledger_balances(ledger: &HashMap<String, u64>) {
    let g = |k: &str| {
        ledger
            .get(k)
            .copied()
            .unwrap_or_else(|| panic!("ledger missing {k}: {ledger:?}"))
    };
    assert_eq!(
        g("received"),
        g("admitted") + g("rejected"),
        "admission split does not cover arrivals: {ledger:?}"
    );
    assert_eq!(
        g("admitted"),
        g("ok") + g("err") + g("deadline") + g("shed"),
        "admitted requests not fully accounted: {ledger:?}"
    );
    assert_eq!(g("depth"), 0, "queue not drained: {ledger:?}");
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("affinity-chaos-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

const QUERY_SET: &[&str] = &[
    "MET correlation > 0.5",
    "MER covariance BETWEEN -1000 AND 1000",
    "MEC mean OF S0, S1, S2",
    "MET mean > 0",
    "MER correlation BETWEEN 0.2 AND 0.9",
];

/// Open-loop overload with shed-oldest admission and refresh churn:
/// four clients fire pipelined bursts far beyond the queue capacity
/// while the churn thread keeps publishing new epochs. Every request
/// must get exactly one well-formed response, and the final ledger must
/// balance to the request.
#[test]
fn overload_with_churn_balances_the_ledger() {
    let server = ServerProc::spawn(&[
        "--series",
        "8",
        "--samples",
        "256",
        "--window",
        "32",
        "--workers",
        "2",
        "--queue",
        "4",
        "--deadline-ms",
        "30000",
        "--shed-oldest",
        "--churn-ms",
        "10",
    ]);

    const CLIENTS: usize = 4;
    const PER_CLIENT: usize = 40;
    let mut handles = Vec::new();
    for c in 0..CLIENTS {
        let mut client = server.connect();
        handles.push(std::thread::spawn(move || {
            // Fire the whole burst before reading anything: an
            // open-loop arrival pattern the 4-deep queue cannot absorb.
            for i in 0..PER_CLIENT {
                let stmt = if i % 7 == 3 {
                    "MET bogus !!" // parse errors ride along
                } else {
                    QUERY_SET[i % QUERY_SET.len()]
                };
                client.send(&format!("c{c}r{i} {stmt}"));
            }
            let mut per_id: HashMap<String, usize> = HashMap::new();
            for _ in 0..PER_CLIENT {
                let (id, code) = match client.read_response() {
                    Response::Ok(id, _) => (id, "OK".to_string()),
                    Response::Err(id, code) => (id, code),
                    Response::Control(c) => panic!("unexpected control reply {c}"),
                };
                assert!(id.starts_with(&format!("c{c}r")), "cross-talk id {id}");
                assert!(
                    matches!(code.as_str(), "OK" | "PARSE" | "OVERLOADED" | "DEADLINE"),
                    "untyped response code {code} for {id}"
                );
                *per_id.entry(id).or_default() += 1;
            }
            assert_eq!(per_id.len(), PER_CLIENT, "missing or duplicate responses");
            assert!(per_id.values().all(|&n| n == 1));
        }));
    }
    for h in handles {
        h.join().expect("client thread");
    }

    let mut admin = server.connect();
    let stats = admin.control(".stats");
    let ledger = parse_ledger(stats.strip_prefix("+stats ").unwrap());
    assert_eq!(
        ledger["received"],
        (CLIENTS * PER_CLIENT) as u64,
        "every request must be counted"
    );
    assert_ledger_balances(&ledger);
    // Churn publishes asynchronously (a full SYMEX refresh can outlast
    // the whole storm on a slow build); wait for it rather than racing.
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let stats = admin.control(".stats");
        let ledger = parse_ledger(stats.strip_prefix("+stats ").unwrap());
        if ledger["epochs"] >= 2 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "churn never published a second epoch: {ledger:?}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    admin.control(".shutdown");
    let (ok, done) = server.wait();
    assert!(ok, "server exited non-zero");
    assert_ledger_balances(&done.expect("final SERVE done ledger"));
}

/// `kill -9` mid-serve, restart with `--resume`: the journal makes
/// every published refresh durable, so the restarted server must give
/// byte-identical answers to the ones captured just before the kill.
#[test]
fn kill9_then_resume_answers_bit_identically() {
    let dir = temp_dir("kill9");
    let dirs = dir.to_str().unwrap();
    let flags = [
        "--series",
        "8",
        "--samples",
        "128",
        "--window",
        "32",
        "--workers",
        "2",
    ];

    let mut server = ServerProc::spawn(&[&flags[..], &["--persist", dirs]].concat());
    let mut client = server.connect();
    // Drive deterministic ticks through two refresh cycles so the
    // journal holds real deltas beyond the initial snapshot.
    client.control(".tick 40");
    let before: Vec<Response> = QUERY_SET
        .iter()
        .enumerate()
        .map(|(i, q)| client.query(&format!("pre{i}"), q))
        .collect();
    for r in &before {
        assert!(
            matches!(r, Response::Ok(..)),
            "pre-kill query failed: {r:?}"
        );
    }
    server.kill9();

    let server = ServerProc::spawn(&[&flags[..], &["--resume", dirs]].concat());
    let mut client = server.connect();
    let after: Vec<Response> = QUERY_SET
        .iter()
        .enumerate()
        .map(|(i, q)| client.query(&format!("pre{i}"), q))
        .collect();
    assert_eq!(
        before, after,
        "resumed server diverged from the uninterrupted answers"
    );
    client.control(".shutdown");
    let (ok, done) = server.wait();
    assert!(ok);
    assert_ledger_balances(&done.expect("final ledger"));
    let _ = std::fs::remove_dir_all(&dir);
}

/// SIGTERM while a burst is queued: the server must drain every
/// admitted request, print a balanced final ledger, and exit 0.
#[test]
fn sigterm_drains_queued_work_and_exits_zero() {
    let server = ServerProc::spawn(&[
        "--series",
        "8",
        "--samples",
        "128",
        "--window",
        "32",
        "--workers",
        "2",
        "--queue",
        "64",
    ]);
    let mut client = server.connect();
    const BURST: usize = 24;
    for i in 0..BURST {
        client.send(&format!("g{i} {}", QUERY_SET[i % QUERY_SET.len()]));
    }
    // SIGTERM races the burst: whatever was admitted must still be
    // answered before exit.
    let term = Command::new("kill")
        .args(["-TERM", &server.pid().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(term.success());

    let mut got = 0usize;
    loop {
        let mut line = String::new();
        match client.reader.read_line(&mut line) {
            Ok(0) | Err(_) => break, // server drained and closed
            Ok(_) => {
                let line = line.trim_end();
                if let Some(rest) = line.strip_prefix("OK ") {
                    let mut it = rest.split(' ');
                    let _id = it.next();
                    let n: usize = it.next().unwrap().parse().unwrap();
                    for _ in 0..n {
                        let mut b = String::new();
                        if client.reader.read_line(&mut b).unwrap_or(0) == 0 {
                            panic!("connection closed mid-body during drain");
                        }
                    }
                }
                got += 1;
            }
        }
    }
    assert!(got <= BURST);

    let (ok, done) = server.wait();
    assert!(ok, "SIGTERM exit was non-zero");
    let ledger = done.expect("final ledger");
    assert_ledger_balances(&ledger);
    // Everything the server admitted was answered — the drain worked.
    assert_eq!(
        ledger["admitted"],
        ledger["ok"] + ledger["err"] + ledger["deadline"] + ledger["shed"]
    );
}

/// Injected faults: slow workers push queued requests past a short
/// deadline (typed `DEADLINE`), a poisoned epoch reports `INTERNAL`
/// until the next refresh publishes a clean successor, and the server
/// survives all of it.
#[test]
fn injected_faults_yield_typed_errors_and_recovery() {
    let server = ServerProc::spawn(&[
        "--series",
        "8",
        "--samples",
        "128",
        "--window",
        "32",
        "--workers",
        "1",
        "--deadline-ms",
        "150",
        "--chaos",
    ]);
    let mut client = server.connect();

    // Healthy baseline.
    let r = client.query("h0", QUERY_SET[0]);
    assert!(matches!(r, Response::Ok(..)), "baseline failed: {r:?}");

    // Slow worker beyond the deadline: admitted, then typed DEADLINE.
    client.control(".fault slow-worker 400");
    match client.query("s0", QUERY_SET[0]) {
        Response::Err(id, code) => {
            assert_eq!(id, "s0");
            assert_eq!(code, "DEADLINE");
        }
        other => panic!("expected DEADLINE, got {other:?}"),
    }
    client.control(".fault slow-worker 0");

    // Poisoned epoch: typed INTERNAL, then recovery via forced refresh.
    client.control(".fault poison-epoch");
    match client.query("p0", QUERY_SET[0]) {
        Response::Err(id, code) => {
            assert_eq!(id, "p0");
            assert_eq!(code, "INTERNAL");
        }
        other => panic!("expected INTERNAL from poisoned epoch, got {other:?}"),
    }
    client.control(".fault refresh");
    let r = client.query("p1", QUERY_SET[0]);
    assert!(
        matches!(r, Response::Ok(..)),
        "fresh epoch after poison still failing: {r:?}"
    );

    client.control(".shutdown");
    let (ok, done) = server.wait();
    assert!(ok);
    let ledger = done.expect("final ledger");
    assert_ledger_balances(&ledger);
    assert!(ledger["deadline"] >= 1 && ledger["err"] >= 1);
}

//! End-to-end integration: generate → persist → reload → cluster →
//! relationships → MEC engine → SCAPE queries, asserting the paper's
//! qualitative claims along the way.

use affinity::core::measures;
use affinity::prelude::*;

#[test]
fn full_pipeline_sensor() {
    // Generate and persist.
    let data = sensor_dataset(&SensorConfig::reduced(48, 96));
    let path = std::env::temp_dir().join("affinity_e2e_sensor.afn");
    MatrixStore::create(&path, &data).unwrap();
    let data = MatrixStore::open(&path).unwrap().read_all().unwrap();
    std::fs::remove_file(&path).ok();

    // Relationships.
    let affine = Symex::new(SymexParams::default()).run(&data).unwrap();
    assert_eq!(affine.len(), data.pair_count());
    assert!(affine.pivots().len() <= data.series_count() * affine.clusters().k());

    // MEC correctness: exact measures are exact, approximate ones close.
    let engine = MecEngine::new(&data, &affine);
    let exact_mean = measures::location_all(LocationMeasure::Mean, &data);
    let wa_mean = engine.location_all(LocationMeasure::Mean);
    assert!(percent_rmse(&exact_mean, &wa_mean) < 1e-8);

    let exact_dot = measures::pairwise_all(PairwiseMeasure::DotProduct, &data);
    let wa_dot = engine
        .pairwise_all(PairwiseMeasure::DotProduct)
        .expect("full affine set");
    assert!(percent_rmse(&exact_dot, &wa_dot) < 1e-6);

    let exact_cov = measures::pairwise_all(PairwiseMeasure::Covariance, &data);
    let wa_cov = engine
        .pairwise_all(PairwiseMeasure::Covariance)
        .expect("full affine set");
    assert!(percent_rmse(&exact_cov, &wa_cov) < 5.0);

    // SCAPE equals WA-filtering for every measure and several taus.
    let index = ScapeIndex::build(&data, &affine, &Measure::ALL).expect("index");
    let wa = AffineExecutor::new(&data, &affine);
    for tau in [0.0, 0.5, 0.9] {
        let mut a = index
            .threshold_pairs(PairwiseMeasure::Correlation, ThresholdOp::Greater, tau)
            .unwrap();
        let mut b = wa.met_pairs(PairwiseMeasure::Correlation, ThresholdOp::Greater, tau);
        a.sort();
        b.sort();
        assert_eq!(a, b, "tau {tau}");
    }
}

#[test]
fn full_pipeline_stock() {
    let data = stock_dataset(&StockConfig::reduced(40, 120));
    let affine = Symex::new(SymexParams::default()).run(&data).unwrap();
    let engine = MecEngine::new(&data, &affine);

    // Factor-model stocks are heavily cross-correlated; the framework
    // must see that through affine relationships.
    let rho = engine
        .pairwise_all(PairwiseMeasure::Correlation)
        .expect("full affine set");
    let strong = rho.iter().filter(|r| r.abs() > 0.5).count();
    assert!(
        strong > rho.len() / 10,
        "expected many correlated pairs, got {strong}/{}",
        rho.len()
    );

    // And SCAPE must find the same positive tail as brute force over W_A
    // values.
    let index = ScapeIndex::build(&data, &affine, &Measure::ALL).expect("index");
    let wa = AffineExecutor::new(&data, &affine);
    let mut a = index
        .range_pairs(PairwiseMeasure::Correlation, 0.5, 0.99)
        .unwrap();
    let mut b = wa.mer_pairs(PairwiseMeasure::Correlation, 0.5, 0.99);
    a.sort();
    b.sort();
    assert_eq!(a, b);
}

#[test]
fn table3_shapes_at_full_scale_config() {
    // The default configs must reproduce Table 3 exactly (shape only; we
    // do not generate the full data here to keep the test fast).
    let s = SensorConfig::default();
    assert_eq!((s.series, s.samples), (670, 720));
    assert_eq!(670 * 669 / 2, 224_115); // "max. affine relationships"
    let k = StockConfig::default();
    assert_eq!((k.series, k.samples), (996, 1950));
    assert_eq!(996 * 995 / 2, 495_510);
}

#[test]
fn mode_speedup_is_dramatic() {
    // The paper's headline mode result: W_N computes an O(m²) KDE per
    // series, W_A touches only k cluster centres. Check work, not wall
    // clock (robust in CI): count series-level KDE invocations implied.
    let data = sensor_dataset(&SensorConfig::reduced(60, 200));
    let affine = Symex::new(SymexParams::default()).run(&data).unwrap();
    let engine = MecEngine::new(&data, &affine);

    let t0 = std::time::Instant::now();
    let exact = measures::location_all(LocationMeasure::Mode, &data);
    let naive_time = t0.elapsed();

    let t0 = std::time::Instant::now();
    let approx = engine.location_all(LocationMeasure::Mode);
    let affine_time = t0.elapsed();

    assert!(
        affine_time < naive_time,
        "affine mode ({affine_time:?}) should beat naive ({naive_time:?})"
    );
    // Accuracy stays reasonable (paper Fig. 9c: up to ~8% RMSE).
    let err = percent_rmse(&exact, &approx);
    assert!(err < 20.0, "mode %RMSE {err}");
}

//! Workspace-local shim for the subset of the `criterion` API this
//! repo's microbenchmarks use: `Criterion`, `Bencher::iter` /
//! `iter_batched`, `BatchSize`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! The build environment has no crates.io access, so instead of the full
//! statistical harness this shim does honest but simple wall-clock
//! timing: a warm-up phase, then `sample_size` samples whose per-
//! iteration mean/min are printed. Good enough to spot order-of-
//! magnitude regressions; not a substitute for upstream criterion's
//! outlier analysis.

#![deny(missing_docs)]

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How `iter_batched` amortizes setup cost; only a hint in this shim.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many iterations per setup batch upstream.
    SmallInput,
    /// Large inputs: few iterations per batch upstream.
    LargeInput,
    /// Fresh setup for every iteration.
    PerIteration,
}

/// Passed to the closure given to [`Criterion::bench_function`]; runs
/// and times the measured routine.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    samples: Vec<Duration>, // per-sample mean cost of one iteration
    iters_done: u64,
}

impl Bencher {
    /// Time `routine`, called repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm up and estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            std_black_box(routine());
            iters += 1;
        }
        let per_iter = warm_start
            .elapsed()
            .checked_div(iters.max(1) as u32)
            .unwrap_or_default();

        // Split the measurement budget into `sample_size` samples.
        let per_sample = self.measurement / self.sample_size as u32;
        let iters_per_sample =
            (per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 24) as u64;
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                std_black_box(routine());
            }
            self.samples.push(t.elapsed() / iters_per_sample as u32);
            self.iters_done += iters_per_sample;
        }
    }

    /// Time `routine` on inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up {
            let input = setup();
            std_black_box(routine(input));
        }

        for _ in 0..self.sample_size {
            let input = setup();
            let t = Instant::now();
            std_black_box(routine(input));
            self.samples.push(t.elapsed());
            self.iters_done += 1;
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Benchmark driver, mirroring `criterion::Criterion`'s builder API.
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
            sample_size: 20,
        }
    }
}

impl Criterion {
    /// Number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = n;
        self
    }

    /// Warm-up duration before measurement starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample_size: self.sample_size,
            samples: Vec::new(),
            iters_done: 0,
        };
        f(&mut b);
        if b.samples.is_empty() {
            println!("{name:<40} (no samples)");
            return self;
        }
        b.samples.sort();
        let min = b.samples[0];
        let median = b.samples[b.samples.len() / 2];
        let total: Duration = b.samples.iter().sum();
        let mean = total / b.samples.len() as u32;
        println!(
            "{name:<40} time: [min {} / median {} / mean {}]  ({} iters)",
            fmt_duration(min),
            fmt_duration(median),
            fmt_duration(mean),
            b.iters_done,
        );
        self
    }

    /// Upstream prints a summary here; the shim prints per-bench already.
    pub fn final_summary(&mut self) {}
}

/// Group benchmark functions, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
            criterion.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Produce `fn main` running the given groups, mirroring
/// `criterion::criterion_main!`. Cargo's extra CLI args (`--bench`,
/// filters) are accepted and ignored.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(4))
    }

    #[test]
    fn iter_runs_and_reports() {
        quick().bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn iter_batched_consumes_inputs() {
        quick().bench_function("batched", |b| {
            b.iter_batched(|| vec![1u32, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12.000 µs");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.000 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.000 s");
    }
}

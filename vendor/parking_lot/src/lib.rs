//! Workspace-local shim for the subset of `parking_lot` this repo uses:
//! a `Mutex` (and `RwLock`) whose `lock()` returns a guard directly
//! instead of a poison `Result`. Backed by `std::sync`; a poisoned lock
//! is recovered rather than propagated, matching parking_lot's
//! no-poisoning semantics.

#![deny(missing_docs)]

use std::sync;

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// Mutual exclusion primitive; `lock()` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap `value` in a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex and return the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader-writer lock; `read()`/`write()` never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap `value` in a new rwlock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock and return the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_mutation() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(*m.lock(), vec![1, 2, 3]);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5u32);
        assert_eq!(*l.read(), 5);
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
    }
}

//! Workspace-local shim for the subset of the `rand` 0.8 API this repo
//! uses. The build environment has no crates.io access, so the few
//! entry points the sources rely on — `StdRng::seed_from_u64`, the
//! `Rng`/`SeedableRng` traits and `gen_range` over primitive ranges —
//! are implemented here on top of a xoshiro256++ generator.
//!
//! The generator is deterministic for a given seed on every platform,
//! which is exactly what the seeded dataset generators and the proptest
//! shim need for reproducible CI runs.

#![deny(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// Low-level source of randomness: a stream of `u64` words.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing convenience methods over an [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive primitive range).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Uniform `bool` with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        uniform_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Ranges that can produce a uniform sample; mirrors
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn uniform_f64(word: u64) -> f64 {
    // 53 random mantissa bits -> [0, 1).
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = uniform_f64(rng.next_u64()) as $t;
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let u = uniform_f64(rng.next_u64()) as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator, seeded via splitmix64.
    ///
    /// Not the same stream as the real `rand::rngs::StdRng` (ChaCha12),
    /// but the repo only relies on *a* fixed deterministic stream per
    /// seed, not on the exact upstream stream.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.gen_range(0.0f64..1.0).to_bits(),
                b.gen_range(0.0f64..1.0).to_bits()
            );
        }
    }

    #[test]
    fn float_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-2.5f64..3.5);
            assert!((-2.5..3.5).contains(&v));
        }
    }

    #[test]
    fn int_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            seen[v - 3] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of a small range hit");
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(va, vb);
    }
}

//! Workspace-local shim for the subset of `proptest` this repo uses.
//!
//! The build environment has no crates.io access, so the property-test
//! suites run on this small deterministic re-implementation: strategies
//! over primitive ranges, tuples, `Just`, `prop_map`, unions
//! (`prop_oneof!`), `collection::vec`, and the `proptest!`/`prop_assert*`
//! macros.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case reports its seed and case number;
//!   cases are deterministic, so a failure replays identically.
//! * **Fixed seeding.** Every test's RNG stream is derived from the test
//!   name via FNV-1a plus the case index — no environment, time or OS
//!   entropy — so CI runs are bit-for-bit reproducible (and no
//!   `proptest-regressions` files are needed).

#![deny(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use arbitrary::sample;

/// Everything a property-test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests. Mirrors `proptest::proptest!`.
///
/// Supported form: an optional `#![proptest_config(expr)]` header
/// followed by `#[test]` functions whose arguments are
/// `pattern in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($bind:pat_param in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut runner =
                    $crate::test_runner::TestRunner::new(config, stringify!($name));
                runner.run(|prop_rng| {
                    $(
                        let $bind =
                            $crate::strategy::Strategy::generate(&($strat), prop_rng);
                    )+
                    let mut prop_case = move || ->
                        ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::core::result::Result::Ok(())
                    };
                    prop_case()
                });
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($bind:pat_param in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::Config::default())]
            $(
                $(#[$meta])*
                fn $name($($bind in $strat),+) $body
            )*
        }
    };
}

/// Assert a condition inside a `proptest!` body; on failure the current
/// case returns a [`test_runner::TestCaseError`] instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (prop_lhs, prop_rhs) = (&$a, &$b);
        $crate::prop_assert!(
            prop_lhs == prop_rhs,
            "assertion failed: `{:?} == {:?}`",
            prop_lhs,
            prop_rhs
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (prop_lhs, prop_rhs) = (&$a, &$b);
        if !(prop_lhs == prop_rhs) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!(
                    "assertion failed: `{:?} == {:?}`: {}",
                    prop_lhs,
                    prop_rhs,
                    format!($($fmt)+)
                )),
            );
        }
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (prop_lhs, prop_rhs) = (&$a, &$b);
        $crate::prop_assert!(
            prop_lhs != prop_rhs,
            "assertion failed: `{:?} != {:?}`",
            prop_lhs,
            prop_rhs
        );
    }};
}

/// Choose uniformly between several strategies producing the same value
/// type. Mirrors `proptest::prop_oneof!` (without weights).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let options: ::std::vec::Vec<
            ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,
        > = vec![$(::std::boxed::Box::new($strat)),+];
        $crate::strategy::Union::new(options)
    }};
}

//! Value-generation strategies: the core [`Strategy`] trait plus the
//! combinators the repo's test suites use.

use crate::test_runner::TestRng;
use core::ops::{Range, RangeInclusive};
use rand::Rng;

/// A recipe for generating values of `Self::Value` from an RNG.
///
/// Unlike upstream proptest there is no value tree / shrinking; a
/// strategy is just a deterministic function of the RNG stream.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Build a second strategy from each generated value and draw from it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { source: self, f }
    }

    /// Box the strategy, erasing its concrete type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// Uniform choice between several boxed strategies (see `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build a union; panics on an empty option list.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! impl_numeric_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_numeric_range_strategy!(f32, f64, usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;
    use rand::SeedableRng;

    #[test]
    fn range_and_map_compose() {
        let mut rng = TestRng::seed_from_u64(3);
        let s = (0.0f64..1.0).prop_map(|v| v * 10.0);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((0.0..10.0).contains(&v));
        }
    }

    #[test]
    fn union_hits_every_arm() {
        let mut rng = TestRng::seed_from_u64(9);
        let u = Union::new(vec![Just(1u32).boxed(), Just(2u32).boxed()]);
        let mut seen = [false; 2];
        for _ in 0..50 {
            seen[(u.generate(&mut rng) - 1) as usize] = true;
        }
        assert!(seen[0] && seen[1]);
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut rng = TestRng::seed_from_u64(11);
        let (a, b) = (0.0f64..1.0, 5usize..6).generate(&mut rng);
        assert!((0.0..1.0).contains(&a));
        assert_eq!(b, 5);
    }
}

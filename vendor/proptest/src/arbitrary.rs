//! `any::<T>()` over a minimal [`Arbitrary`] trait.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Types with a canonical strategy, mirroring `proptest::arbitrary`.
pub trait Arbitrary: Sized {
    /// The canonical strategy for this type.
    type Strategy: Strategy<Value = Self>;

    /// Build the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

macro_rules! impl_arbitrary_uniform {
    ($($t:ty => $r:expr),* $(,)?) => {$(
        impl Arbitrary for $t {
            type Strategy = UniformStrategy<$t>;
            fn arbitrary() -> Self::Strategy {
                UniformStrategy(std::marker::PhantomData)
            }
        }
        impl Strategy for UniformStrategy<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let f: fn(&mut TestRng) -> $t = $r;
                f(rng)
            }
        }
    )*};
}

/// Full-domain uniform strategy backing [`Arbitrary`] for primitives.
#[derive(Clone, Copy, Debug)]
pub struct UniformStrategy<T>(std::marker::PhantomData<T>);

impl_arbitrary_uniform! {
    bool => |rng| rng.gen_range(0u8..2) == 1,
    usize => |rng| rng.gen_range(0usize..=usize::MAX),
    u64 => |rng| rng.gen_range(0u64..=u64::MAX),
    u32 => |rng| rng.gen_range(0u32..=u32::MAX),
    i64 => |rng| rng.gen_range(i64::MIN..=i64::MAX),
    i32 => |rng| rng.gen_range(i32::MIN..=i32::MAX),
}

/// `proptest::sample`: value types for picking indices/subsets.
pub mod sample {
    use super::{Arbitrary, UniformStrategy};
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// An index into a collection whose length is only known at use
    /// site; mirrors `proptest::sample::Index`.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct Index(usize);

    impl Index {
        /// Map this abstract index into `0..len`. Panics if `len == 0`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            self.0 % len
        }
    }

    impl Arbitrary for Index {
        type Strategy = UniformStrategy<Index>;
        fn arbitrary() -> Self::Strategy {
            UniformStrategy(std::marker::PhantomData)
        }
    }

    impl Strategy for UniformStrategy<Index> {
        type Value = Index;
        fn generate(&self, rng: &mut TestRng) -> Index {
            Index(rng.gen_range(0usize..=usize::MAX))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::sample::Index;
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn index_maps_into_bounds() {
        let mut rng = TestRng::seed_from_u64(2);
        for len in [1usize, 2, 7, 1000] {
            for _ in 0..64 {
                let idx = any::<Index>().generate(&mut rng);
                assert!(idx.index(len) < len);
            }
        }
    }

    #[test]
    fn primitives_generate() {
        let mut rng = TestRng::seed_from_u64(4);
        let _ = any::<bool>().generate(&mut rng);
        let _ = any::<u64>().generate(&mut rng);
        let v = any::<i32>().generate(&mut rng);
        let _ = v.checked_abs();
    }
}

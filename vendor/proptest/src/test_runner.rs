//! The deterministic case runner behind the `proptest!` macro.

use std::fmt;

/// RNG driving value generation; deterministic per (test name, case).
pub type TestRng = rand::rngs::StdRng;

/// Runner configuration. Mirrors `proptest::test_runner::Config`.
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of cases to run per test.
    pub cases: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 64 }
    }
}

impl Config {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

/// A failed (or rejected) test case.
#[derive(Debug)]
pub enum TestCaseError {
    /// The property did not hold.
    Fail(String),
    /// The input was rejected (counts against no budget in this shim).
    Reject(String),
}

impl TestCaseError {
    /// Fail the current case with a message.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// Reject the current case's input.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "{r}"),
            TestCaseError::Reject(r) => write!(f, "input rejected: {r}"),
        }
    }
}

/// Runs a closure over `config.cases` deterministic RNG streams.
pub struct TestRunner {
    config: Config,
    seed: u64,
    name: &'static str,
}

/// FNV-1a so the per-test base seed depends only on the test's name.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl TestRunner {
    /// Build a runner for the named test.
    pub fn new(config: Config, name: &'static str) -> Self {
        TestRunner {
            config,
            seed: fnv1a(name),
            name,
        }
    }

    /// Run `case` once per configured case; panics on the first failure,
    /// reporting the case number and seed so it can be replayed.
    pub fn run<F>(&mut self, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        use rand::SeedableRng;
        for i in 0..self.config.cases {
            let case_seed = self.seed.wrapping_add(i as u64);
            let mut rng = TestRng::seed_from_u64(case_seed);
            match case(&mut rng) {
                Ok(()) => {}
                Err(TestCaseError::Reject(_)) => {}
                Err(TestCaseError::Fail(reason)) => panic!(
                    "proptest: test `{}` failed at case {i}/{} (seed {case_seed:#x}): {reason}",
                    self.name, self.config.cases,
                ),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_all_cases() {
        let mut n = 0;
        TestRunner::new(Config::with_cases(17), "runs_all_cases").run(|_| {
            n += 1;
            Ok(())
        });
        assert_eq!(n, 17);
    }

    #[test]
    #[should_panic(expected = "failed at case 3")]
    fn reports_failing_case_number() {
        let mut n = 0;
        TestRunner::new(Config::with_cases(10), "reports_failing_case_number").run(|_| {
            if n == 3 {
                return Err(TestCaseError::fail("boom"));
            }
            n += 1;
            Ok(())
        });
    }

    #[test]
    fn rejects_do_not_fail() {
        TestRunner::new(Config::default(), "rejects_do_not_fail")
            .run(|_| Err(TestCaseError::reject("always")));
    }

    #[test]
    fn streams_are_deterministic() {
        use rand::{Rng, SeedableRng};
        let a: Vec<u64> = {
            let mut rng = TestRng::seed_from_u64(fnv1a("x"));
            (0..4).map(|_| rng.gen_range(0u64..1000)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = TestRng::seed_from_u64(fnv1a("x"));
            (0..4).map(|_| rng.gen_range(0u64..1000)).collect()
        };
        assert_eq!(a, b);
    }
}

//! Collection strategies: `vec` with flexible size specifications.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use core::ops::{Range, RangeInclusive};
use rand::Rng;

/// Inclusive-exclusive length bounds for a generated collection.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// Strategy producing `Vec`s of values from an element strategy.
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = if self.size.lo + 1 == self.size.hi {
            self.size.lo
        } else {
            rng.gen_range(self.size.lo..self.size.hi)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `Vec` strategy over `element` with `size` elements (a fixed `usize`,
/// `Range<usize>` or `RangeInclusive<usize>`).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn fixed_and_ranged_sizes() {
        let mut rng = TestRng::seed_from_u64(1);
        assert_eq!(vec(0.0f64..1.0, 7).generate(&mut rng).len(), 7);
        for _ in 0..50 {
            let v = vec(0.0f64..1.0, 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
        for _ in 0..50 {
            let v = vec(0.0f64..1.0, 3..=3).generate(&mut rng);
            assert_eq!(v.len(), 3);
        }
    }
}

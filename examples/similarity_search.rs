//! Similarity search with the extended D-measures.
//!
//! Paper Sec. 2.1 notes that the AFFINITY approach covers "a large number
//! of other derived measures that are derived by normalizing the dot
//! product; examples of such measures are Jaccard coefficient, Dice
//! coefficient, cosine similarity, harmonic mean, etc." — this example
//! runs cosine-similarity and Dice-coefficient queries end to end through
//! the same affine relationships and the same SCAPE index that serve the
//! paper's six core measures.
//!
//! Run with: `cargo run --release --example similarity_search`

use affinity::core::measures;
use affinity::prelude::*;
use std::time::Instant;

fn main() {
    let data = stock_dataset(&StockConfig::reduced(120, 390));
    println!(
        "universe: {} tickers x {} minutes, {} pairs\n",
        data.series_count(),
        data.samples(),
        data.pair_count()
    );

    // One set of relationships serves every measure.
    let affine = Symex::new(SymexParams::default())
        .run(&data)
        .expect("symex");
    let engine = MecEngine::new(&data, &affine);
    let index = ScapeIndex::build(&data, &affine, &Measure::EXTENDED).expect("index");

    // Accuracy: the dot product propagates exactly (Lemma 1) and the
    // normalizers are exact and separable, so cosine and Dice reconstruct
    // at machine precision.
    for measure in [PairwiseMeasure::Cosine, PairwiseMeasure::Dice] {
        let exact = measures::pairwise_all(measure, &data);
        let approx = engine.pairwise_all(measure).expect("full affine set");
        println!(
            "{:<8} %RMSE vs from-scratch: {:.2e}",
            measure.name(),
            percent_rmse(&exact, &approx)
        );
    }

    // Find the most cosine-similar pairs with an indexed threshold query.
    let tau = 0.9999;
    let t0 = Instant::now();
    let similar = index
        .threshold_pairs(PairwiseMeasure::Cosine, ThresholdOp::Greater, tau)
        .unwrap();
    println!(
        "\ncosine > {tau}: {} pairs in {:.3?} (indexed)",
        similar.len(),
        t0.elapsed()
    );
    let mut ranked: Vec<(SequencePair, f64)> = similar
        .iter()
        .map(|&p| (p, engine.pair_value(PairwiseMeasure::Cosine, p).unwrap()))
        .collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    for (p, c) in ranked.iter().take(5) {
        println!(
            "  {:>6} ~ {:<6} cosine = {:.6}",
            data.label(p.u),
            data.label(p.v),
            c
        );
    }

    // Dice-coefficient band query: pairs of comparable "mass" overlap.
    let t0 = Instant::now();
    let band = index
        .range_pairs(PairwiseMeasure::Dice, 0.95, 0.9999)
        .unwrap();
    println!(
        "\ndice in (0.95, 0.9999): {} pairs in {:.3?} (indexed)",
        band.len(),
        t0.elapsed()
    );

    // Cross-check one pair against the raw definition.
    if let Some(&(p, _)) = ranked.first() {
        let su = data.series(p.u);
        let sv = data.series(p.v);
        let raw = measures::cosine(su, sv);
        let idx = engine.pair_value(PairwiseMeasure::Cosine, p).unwrap();
        println!(
            "\nspot check ({}, {}): raw {raw:.9} vs affine {idx:.9}",
            data.label(p.u),
            data.label(p.v)
        );
    }
}

//! The paper's motivating scenario (Problem 1): intraday correlation
//! screening over a stock universe.
//!
//! "Given the intra-day stock quotes of n stocks obtained at a sampling
//! interval Δt, return the correlation coefficients of the n(n−1)/2 pairs
//! of stocks on a given day." — plus the trader's follow-up: *which pairs
//! correlate above τ?*
//!
//! Compares the naive per-pair scan (`W_N`) against affine relationships
//! (`W_A`) and prints the strongest co-moving pairs. Also dumps the first
//! three tickers as CSV, the shape of the paper's Fig. 1.
//!
//! Run with: `cargo run --release --example stock_correlation`

use affinity::core::measures;
use affinity::prelude::*;
use std::time::Instant;

fn main() {
    // One trading week of 1-minute quotes for 120 synthetic tickers
    // (scaled down from the paper's 996×1950 so the example runs in
    // seconds; pass --full for paper scale).
    let full = std::env::args().any(|a| a == "--full");
    let cfg = if full {
        StockConfig::default()
    } else {
        StockConfig::reduced(120, 390)
    };
    let data = stock_dataset(&cfg);
    println!(
        "universe: {} tickers x {} minutes, {} pairs\n",
        data.series_count(),
        data.samples(),
        data.pair_count()
    );

    // Fig. 1 flavour: dump three tickers for plotting.
    let csv_path = std::env::temp_dir().join("affinity_fig1.csv");
    {
        let three = data.prefix(3);
        affinity::data::csv::save_csv(&three, &csv_path).expect("csv dump");
        println!("first three tickers dumped to {}", csv_path.display());
    }

    // W_N: every pair from the raw series.
    let t0 = Instant::now();
    let exact = measures::pairwise_all(PairwiseMeasure::Correlation, &data);
    let t_naive = t0.elapsed();

    // W_A: one-time SYMEX+ pass, then reconstruct every pair.
    let t0 = Instant::now();
    let affine = Symex::new(SymexParams::default())
        .run(&data)
        .expect("symex");
    let t_setup = t0.elapsed();
    let engine = MecEngine::new(&data, &affine);
    let t0 = Instant::now();
    let approx = engine
        .pairwise_all(PairwiseMeasure::Correlation)
        .expect("full affine set");
    let t_affine = t0.elapsed();

    println!("W_N  (from scratch):        {:>9.3?}", t_naive);
    println!("W_A  (affine, setup):       {:>9.3?}", t_setup);
    println!("W_A  (affine, all pairs):   {:>9.3?}", t_affine);
    println!("accuracy: %RMSE = {:.3}\n", percent_rmse(&exact, &approx));

    // The trader's threshold query, answered through affine values.
    let tau = 0.95;
    let pairs = data.sequence_pairs();
    let mut hot: Vec<(SequencePair, f64)> = pairs
        .iter()
        .zip(approx.iter())
        .filter(|(_, &r)| r > tau)
        .map(|(&p, &r)| (p, r))
        .collect();
    hot.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("pairs with correlation > {tau}: {}", hot.len());
    for (p, r) in hot.iter().take(10) {
        println!(
            "  {:>6} ~ {:<6} rho = {:.4}",
            data.label(p.u),
            data.label(p.v),
            r
        );
    }
}

//! Real-time monitoring over a live tick stream — the paper's
//! "real-time settings" motivation (Sec. 1) made concrete.
//!
//! A simulated market feed pushes one price per ticker per tick into a
//! sliding window. Rolling statistics stay exact on every tick; the
//! affine-relationship model and SCAPE index refresh periodically, and a
//! threshold query ("which pairs correlate above τ right now?") runs
//! against the freshest snapshot after each refresh.
//!
//! Run with: `cargo run --release --example streaming_monitor`

use affinity::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn main() {
    let tickers = 40;
    let window = 240; // 4 hours of 1-minute bars
    let mut cfg = StreamingConfig::new(window);
    cfg.refresh_every = 120; // refresh twice per window
    let mut engine = StreamingEngine::new(tickers, cfg);

    // Simulated feed: market factor + per-ticker beta + noise.
    let mut rng = StdRng::seed_from_u64(7);
    let betas: Vec<f64> = (0..tickers).map(|_| rng.gen_range(0.4..1.6)).collect();
    let mut log_market: f64 = 0.0;
    let mut log_prices: Vec<f64> = (0..tickers)
        .map(|_| rng.gen_range(10.0f64..300.0).ln())
        .collect();

    println!("streaming {tickers} tickers, window {window}, refresh every 120 ticks\n");
    let t0 = Instant::now();
    let total_ticks = 800;
    for t in 1..=total_ticks {
        let market_ret = 0.001 * rng.gen_range(-1.0..1.0f64);
        log_market += market_ret;
        let tick: Vec<f64> = (0..tickers)
            .map(|v| {
                log_prices[v] += betas[v] * market_ret + 0.0004 * rng.gen_range(-1.0..1.0f64);
                log_prices[v].exp()
            })
            .collect();
        let refreshed = engine.push(&tick).expect("push");
        if refreshed {
            let model = engine.model().expect("model");
            let hot = model
                .index()
                .threshold_pairs(PairwiseMeasure::Correlation, ThresholdOp::Greater, 0.9)
                .unwrap();
            println!(
                "tick {t:>4}: model refreshed (#{}) — {} pairs with rho > 0.9",
                engine.refreshes(),
                hot.len()
            );
        }
    }
    let _ = log_market;
    println!(
        "\nprocessed {total_ticks} ticks in {:.2?} ({:.1} ticks/ms incl. refreshes)",
        t0.elapsed(),
        total_ticks as f64 / t0.elapsed().as_secs_f64() / 1e3
    );

    // Rolling stats are exact at the final tick without any model work.
    let model = engine.model().unwrap();
    let mec = model.mec_engine();
    println!(
        "\nlive rolling stats vs snapshot engine (ticker 0): variance {:.6e} (rolling) vs {:.6e} (snapshot at refresh)",
        engine.rolling().variance(0),
        mec.variance(0),
    );
    println!(
        "model age: {} ticks since last refresh ({} full rebuilds, {} delta refreshes)",
        engine.model_age().unwrap(),
        engine.full_rebuilds(),
        engine.delta_refreshes(),
    );
}

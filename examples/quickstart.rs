//! Quickstart: the full AFFINITY pipeline in ~60 lines.
//!
//! Generates a small sensor-like dataset, computes affine relationships
//! (AFCLST + SYMEX+), answers measure-computation queries through them,
//! and runs indexed threshold queries via SCAPE.
//!
//! Run with: `cargo run --release --example quickstart`

use affinity::prelude::*;

fn main() {
    // 1. Data: 64 series × 128 samples, with latent cluster structure.
    let data = sensor_dataset(&SensorConfig::reduced(64, 128));
    println!(
        "dataset: {} series x {} samples ({} sequence pairs)",
        data.series_count(),
        data.samples(),
        data.pair_count()
    );

    // 2. Cluster and compute affine relationships.
    let affine = Symex::new(SymexParams::default())
        .run(&data)
        .expect("SYMEX run");
    println!(
        "affine relationships: {} (pivot pairs: {}, clusters: {})",
        affine.len(),
        affine.pivots().len(),
        affine.clusters().k()
    );

    // 3. MEC queries: reconstruct measures without touching raw series.
    let engine = MecEngine::new(&data, &affine);
    let ids = [0, 5, 10, 15];
    let means = engine.location(LocationMeasure::Mean, &ids).unwrap();
    println!("means of {ids:?} (via affine relationships): {means:.3?}");

    let rho = engine.pairwise(PairwiseMeasure::Correlation, &ids).unwrap();
    println!(
        "correlation of ({}, {}): {:.4}",
        ids[0],
        ids[1],
        rho.get(0, 1)
    );

    // Error vs exact computation across ALL pairs (Eq. 16 of the paper).
    let exact = affinity::core::measures::pairwise_all(PairwiseMeasure::Covariance, &data);
    let approx = engine
        .pairwise_all(PairwiseMeasure::Covariance)
        .expect("full affine set");
    println!(
        "covariance %RMSE over {} pairs: {:.2e}",
        exact.len(),
        percent_rmse(&exact, &approx)
    );

    // 4. SCAPE: indexed threshold and range queries over any measure.
    let index = ScapeIndex::build(&data, &affine, &Measure::ALL).expect("index");
    let hot = index
        .threshold_pairs(PairwiseMeasure::Correlation, ThresholdOp::Greater, 0.9)
        .unwrap();
    println!("pairs with correlation > 0.9: {}", hot.len());
    if let Some(p) = hot.first() {
        println!(
            "  e.g. ({}, {}) = {:.4}",
            data.label(p.u),
            data.label(p.v),
            engine.pair_value(PairwiseMeasure::Correlation, *p).unwrap()
        );
    }
    let banded = index
        .range_series(LocationMeasure::Median, 15.0, 25.0)
        .unwrap();
    println!("series with median in (15, 25): {}", banded.len());
}

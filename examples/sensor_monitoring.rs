//! Environmental-sensor monitoring: persistent storage plus SCAPE-indexed
//! alerting — the paper's sensor-network use case (Fig. 2 architecture).
//!
//! A campus deployment stores daily series in the columnar matrix store,
//! reloads them, builds the SCAPE index once, and then answers a stream
//! of operational queries without re-scanning raw data:
//!
//! * which sensor pairs co-vary strongly (covariance MET query)?
//! * which sensors have unusually high or low medians (L-measure MET)?
//! * which pairs sit inside a target correlation band (MER query)?
//!
//! Run with: `cargo run --release --example sensor_monitoring`

use affinity::prelude::*;
use std::time::Instant;

fn main() {
    // 134 sensors × 1 day at 2-minute sampling (reduced from the paper's
    // 670 series for example runtime).
    let data = sensor_dataset(&SensorConfig::reduced(134, 720));
    println!(
        "deployment: {} series x {} samples",
        data.series_count(),
        data.samples()
    );

    // Persist and reload through the columnar store (checksummed).
    let path = std::env::temp_dir().join("affinity_sensors.afn");
    MatrixStore::create(&path, &data).expect("store create");
    let store = MatrixStore::open(&path).expect("store open");
    let data = store.read_all().expect("store read");
    println!(
        "persisted + reloaded via {} ({} labels)\n",
        path.display(),
        store.labels().len()
    );

    // One-time preparation: relationships + index.
    let t0 = Instant::now();
    let affine = Symex::new(SymexParams::default())
        .run(&data)
        .expect("symex");
    let index = ScapeIndex::build(&data, &affine, &Measure::ALL).expect("index");
    println!(
        "prep: {} relationships, {} pivot nodes, built in {:.3?}",
        affine.len(),
        index.stats().pair_pivot_nodes,
        t0.elapsed()
    );
    let engine = MecEngine::new(&data, &affine);

    // Alert 1: strongly co-varying sensor pairs.
    let t0 = Instant::now();
    let covs = engine
        .pairwise_all(PairwiseMeasure::Covariance)
        .expect("full affine set");
    let mut sorted = covs.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let tau = sorted[sorted.len() * 95 / 100]; // 95th percentile
    let co_moving = index
        .threshold_pairs(PairwiseMeasure::Covariance, ThresholdOp::Greater, tau)
        .unwrap();
    println!(
        "\ncovariance > {tau:.3} (95th pct): {} pairs, answered in {:.3?}",
        co_moving.len(),
        t0.elapsed()
    );

    // Alert 2: sensors with out-of-band medians.
    let medians = engine.location_all(LocationMeasure::Median);
    let mean_med = medians.iter().sum::<f64>() / medians.len() as f64;
    let high = index
        .threshold_series(
            LocationMeasure::Median,
            ThresholdOp::Greater,
            mean_med + 5.0,
        )
        .unwrap();
    let low = index
        .threshold_series(LocationMeasure::Median, ThresholdOp::Less, mean_med - 5.0)
        .unwrap();
    println!(
        "median alerts: {} high, {} low (band centre {mean_med:.2})",
        high.len(),
        low.len()
    );
    for v in high.iter().take(5) {
        println!("  high: {} (median {:.2})", data.label(*v), medians[*v]);
    }

    // Alert 3: pairs inside a target correlation band.
    let t0 = Instant::now();
    let band = index
        .range_pairs(PairwiseMeasure::Correlation, 0.7, 0.9)
        .unwrap();
    println!(
        "correlation in (0.7, 0.9): {} pairs, answered in {:.3?}",
        band.len(),
        t0.elapsed()
    );

    std::fs::remove_file(&path).ok();
}

//! Head-to-head MET/MER screening: the four methods of the paper's
//! evaluation answering the same threshold queries.
//!
//! * `W_N`    — compute each measure from raw series, then filter;
//! * `W_A`    — compute through affine relationships, then filter;
//! * `W_F`    — DFT sketch approximation (correlation only);
//! * `SCAPE`  — indexed search with modified thresholds.
//!
//! A miniature of the paper's Fig. 15/16, printed as a table.
//!
//! Run with: `cargo run --release --example threshold_screening`

use affinity::prelude::*;
use std::time::Instant;

fn main() {
    let data = sensor_dataset(&SensorConfig::reduced(100, 240));
    println!(
        "dataset: {} series, {} pairs\n",
        data.series_count(),
        data.pair_count()
    );

    // Setup costs, reported separately (the paper's W_A numbers include
    // SYMEX+ time; SCAPE additionally pays index construction).
    let t0 = Instant::now();
    let affine = Symex::new(SymexParams::default())
        .run(&data)
        .expect("symex");
    let t_symex = t0.elapsed();
    let t0 = Instant::now();
    let index = ScapeIndex::build(&data, &affine, &Measure::ALL).expect("index");
    let t_index = t0.elapsed();
    let t0 = Instant::now();
    let wf = DftExecutor::new(&data);
    let t_wf = t0.elapsed();
    println!("setup: SYMEX+ {t_symex:.3?}, SCAPE build {t_index:.3?}, W_F sketches {t_wf:.3?}\n");

    let wn = NaiveExecutor::new(&data);
    let wa = AffineExecutor::new(&data, &affine);

    println!(
        "{:<34} {:>12} {:>12} {:>12} {:>12} {:>9}",
        "query", "W_N", "W_A", "W_F", "SCAPE", "|result|"
    );

    // MET: correlation > τ, for several τ.
    for tau in [0.5, 0.8, 0.95] {
        let t0 = Instant::now();
        let r_n = wn.met_pairs(PairwiseMeasure::Correlation, ThresholdOp::Greater, tau);
        let d_n = t0.elapsed();
        let t0 = Instant::now();
        let _r_a = wa.met_pairs(PairwiseMeasure::Correlation, ThresholdOp::Greater, tau);
        let d_a = t0.elapsed();
        let t0 = Instant::now();
        let _r_f = wf.met_pairs(ThresholdOp::Greater, tau);
        let d_f = t0.elapsed();
        let t0 = Instant::now();
        let r_s = index
            .threshold_pairs(PairwiseMeasure::Correlation, ThresholdOp::Greater, tau)
            .unwrap();
        let d_s = t0.elapsed();
        println!(
            "{:<34} {:>12.3?} {:>12.3?} {:>12.3?} {:>12.3?} {:>9}",
            format!("MET correlation > {tau}"),
            d_n,
            d_a,
            d_f,
            d_s,
            r_s.len()
        );
        assert!(r_s.len() <= r_n.len() + data.pair_count() / 10);
    }

    // MET: covariance > τ (no W_F — it only handles correlation).
    let t0 = Instant::now();
    let _ = wn.met_pairs(PairwiseMeasure::Covariance, ThresholdOp::Greater, 0.1);
    let d_n = t0.elapsed();
    let t0 = Instant::now();
    let _ = wa.met_pairs(PairwiseMeasure::Covariance, ThresholdOp::Greater, 0.1);
    let d_a = t0.elapsed();
    let t0 = Instant::now();
    let r_s = index
        .threshold_pairs(PairwiseMeasure::Covariance, ThresholdOp::Greater, 0.1)
        .unwrap();
    let d_s = t0.elapsed();
    println!(
        "{:<34} {:>12.3?} {:>12.3?} {:>12} {:>12.3?} {:>9}",
        "MET covariance > 0.1",
        d_n,
        d_a,
        "-",
        d_s,
        r_s.len()
    );

    // MER: correlation in (0.6, 0.9).
    let t0 = Instant::now();
    let _ = wn.mer_pairs(PairwiseMeasure::Correlation, 0.6, 0.9);
    let d_n = t0.elapsed();
    let t0 = Instant::now();
    let _ = wa.mer_pairs(PairwiseMeasure::Correlation, 0.6, 0.9);
    let d_a = t0.elapsed();
    let t0 = Instant::now();
    let _ = wf.mer_pairs(0.6, 0.9);
    let d_f = t0.elapsed();
    let t0 = Instant::now();
    let r_s = index
        .range_pairs(PairwiseMeasure::Correlation, 0.6, 0.9)
        .unwrap();
    let d_s = t0.elapsed();
    println!(
        "{:<34} {:>12.3?} {:>12.3?} {:>12.3?} {:>12.3?} {:>9}",
        "MER correlation in (0.6, 0.9)",
        d_n,
        d_a,
        d_f,
        d_s,
        r_s.len()
    );

    // MET on a location measure: median (W_F not applicable).
    let medians: Vec<f64> = (0..data.series_count())
        .map(|v| affinity::core::measures::median(data.series(v)))
        .collect();
    let mid = medians.iter().sum::<f64>() / medians.len() as f64;
    let t0 = Instant::now();
    let _ = wn.met_series(LocationMeasure::Median, ThresholdOp::Greater, mid);
    let d_n = t0.elapsed();
    let t0 = Instant::now();
    let _ = wa.met_series(LocationMeasure::Median, ThresholdOp::Greater, mid);
    let d_a = t0.elapsed();
    let t0 = Instant::now();
    let r_s = index
        .threshold_series(LocationMeasure::Median, ThresholdOp::Greater, mid)
        .unwrap();
    let d_s = t0.elapsed();
    println!(
        "{:<34} {:>12.3?} {:>12.3?} {:>12} {:>12.3?} {:>9}",
        format!("MET median > {mid:.2}"),
        d_n,
        d_a,
        "-",
        d_s,
        r_s.len()
    );
}
